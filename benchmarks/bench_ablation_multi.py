"""Ablation (Section 4.7): conditional parallelisation.

For a heterogeneous mix of problem shapes, applying the per-problem
minimal schedule (the compile-time schedule set plus runtime
conditions) is compared against forcing any single fixed schedule on
every problem. The paper's motivating example: ``f(x, y) = ..
f(x-1, y-1)`` — ``S = x`` is right when ``nx < ny``, ``S = y``
otherwise.
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.gpu.spec import GTX480
from repro.gpu.timing import kernel_cost
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.multi import derive_schedule_set
from repro.schedule.schedule import Schedule

from conftest import write_table

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

SOURCE = (
    "int f(seq[en] a, index[a] x, seq[en] b, index[b] y) = "
    "if x == 0 then 0 else if y == 0 then 0 else f(x - 1, y - 1) + 1"
)

#: A bimodal workload: short-vs-long and long-vs-short problems.
SHAPES = [(64, 2048)] * 40 + [(2048, 64)] * 40


def _total_seconds(func, schedule_for):
    total = 0.0
    kernels = {}
    for nx, ny in SHAPES:
        domain = Domain.of(x=nx + 1, y=ny + 1)
        schedule = schedule_for(domain)
        if schedule.coefficients not in kernels:
            kernels[schedule.coefficients] = build_kernel(func, schedule)
        kernel = kernels[schedule.coefficients]
        total += kernel_cost(kernel, domain, GTX480).seconds
    return total / GTX480.sm_count


def test_multi_schedule_ablation_report(benchmark):
    func = check_function(parse_function(SOURCE), EN)
    schedule_set = derive_schedule_set(func)
    assert len(schedule_set) == 2

    def compute():
        rows = []
        conditional = _total_seconds(
            func, lambda d: schedule_set.select(d.extent_map())
        )
        rows.append(("conditional (Section 4.7)", conditional, 1.0))
        for fixed in schedule_set:
            seconds = _total_seconds(func, lambda d: fixed)
            rows.append(
                (f"fixed {fixed}", seconds, seconds / conditional)
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ablation_multi",
        "Ablation - conditional parallelisation (Section 4.7):\n"
        "bimodal workload of 80 problems (64x2048 and 2048x64)",
        ("strategy", "seconds", "vs conditional"),
        rows,
    )

    conditional = rows[0][1]
    for _, seconds, _ in rows[1:]:
        # Any fixed schedule pays on half the workload.
        assert seconds > conditional * 1.5
