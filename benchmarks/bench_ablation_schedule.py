"""Ablation (Sections 2.3 / 4.6): does partition-minimality matter?

The search goal minimises the number of partitions. This bench prices
the edit-distance kernel under the minimal diagonal ``S = i + j`` and
under progressively worse (but still valid) schedules ``S = 2i + j``,
``S = 3i + j``, ``S = 3i + 2j`` — quantifying the paper's claim that
"there are very few occasions where a schedule with more partitions
will be more efficient".
"""

from __future__ import annotations

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.analysis.domain import Domain
from repro.apps.smith_waterman import smith_waterman_function
from repro.gpu.spec import GTX480
from repro.gpu.timing import kernel_cost
from repro.ir.kernel import build_kernel
from repro.schedule.schedule import Schedule

from conftest import write_table

CANDIDATES = ((1, 1), (2, 1), (1, 2), (3, 1), (3, 2))
SIZE = 1024


def test_schedule_ablation_report(benchmark):
    func = smith_waterman_function()
    criteria = schedule_criteria(func)
    domain = Domain.of(i=SIZE + 1, j=SIZE + 1)

    def compute():
        rows = []
        for coeffs in CANDIDATES:
            schedule = Schedule(("i", "j"), coeffs)
            assert schedule.is_valid(criteria)
            kernel = build_kernel(func, schedule)
            cost = kernel_cost(kernel, domain, GTX480)
            rows.append(
                (
                    str(schedule),
                    cost.partitions,
                    cost.seconds,
                    cost.seconds / rows[0][2] if rows else 1.0,
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ablation_schedule",
        "Ablation - schedule minimality (Section 4.6): "
        f"Smith-Waterman, {SIZE}x{SIZE}\n"
        "(all schedules are valid; the solver picks the first row)",
        ("schedule", "partitions", "seconds", "vs minimal"),
        rows,
    )

    minimal = rows[0]
    for row in rows[1:]:
        assert row[1] > minimal[1]       # more partitions...
        assert row[2] > minimal[2]       # ...and slower.
    # Partition count is a good proxy: the cost ordering follows it.
    by_partitions = sorted(rows, key=lambda r: r[1])
    by_seconds = sorted(rows, key=lambda r: r[2])
    assert [r[0] for r in by_partitions] == [r[0] for r in by_seconds]
