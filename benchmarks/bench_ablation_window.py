"""Ablation (Section 4.8): the sliding-window optimisation.

With uniform descents the kernel keeps only ``window + 1`` partitions
resident; when they fit in shared memory the table's global-memory
latency disappears ("almost eliminating the significant latency to
global memory"). This bench prices the same Smith-Waterman kernel with
the optimisation on and off across problem sizes, and shows the
crossover where the window no longer fits.
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.apps.smith_waterman import smith_waterman_function
from repro.gpu.spec import GTX480
from repro.gpu.timing import kernel_cost, window_fits_shared
from repro.ir.kernel import build_kernel
from repro.schedule.schedule import Schedule

from conftest import write_table

SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


def test_window_ablation_report(benchmark):
    kernel = build_kernel(smith_waterman_function(),
                          Schedule.of(i=1, j=1))
    assert kernel.window == 2  # d(i-1, j-1) is two diagonals back

    def compute():
        rows = []
        for size in SIZES:
            domain = Domain.of(i=size + 1, j=size + 1)
            with_window = kernel_cost(
                kernel, domain, GTX480, use_window=True
            )
            without = kernel_cost(
                kernel, domain, GTX480, use_window=False
            )
            rows.append(
                (
                    size,
                    with_window.seconds,
                    without.seconds,
                    without.seconds / with_window.seconds,
                    "shared" if with_window.window_in_shared
                    else "global",
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ablation_window",
        "Ablation - sliding window (Section 4.8): Smith-Waterman "
        "kernel,\nwindow on vs off (seconds; NxN problems)",
        ("N", "window on", "window off", "speedup", "table lives in"),
        rows,
    )

    # While the window fits, it wins clearly; once the diagonal
    # outgrows shared memory the two coincide.
    fits = [r for r in rows if r[4] == "shared"]
    spills = [r for r in rows if r[4] == "global"]
    assert fits and spills, "sweep should straddle the crossover"
    for row in fits:
        assert row[3] > 1.5, row
    for row in spills:
        assert row[3] == pytest.approx(1.0)

    # The crossover sits where 3 diagonal rows x 8B outgrow 48 KiB.
    limit = GTX480.shared_memory_bytes / (3 * 8)
    boundary = max(r[0] for r in fits)
    assert boundary <= limit <= spills[0][0] * 2
