"""Backend ablation: scalar vs vectorised vs lane-batched execution.

Measures real wall-clock (pytest-benchmark) of the generated-code
backends filling the same Smith-Waterman tables. The vector backend
evaluates whole partitions as NumPy array operations — legitimate
because a partition's cells are mutually independent (the schedule's
defining property). The lane-batched path goes one step further: a
``map`` over same-kernel problems packs every problem table into one
array with a leading problem axis and runs a single vectorised sweep.
Not a paper figure; quantifies simulator quality.

Besides the human-readable table, the report test writes
``BENCH_backend.json`` at the repository root (machine-readable
scalar / vector / batched timings, consumed by CI and the docs).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.smith_waterman import SmithWaterman
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein

from conftest import write_table

SIZES = (64, 128, 256)

#: Problems per lane-batched map group in the report test.
MAP_PROBLEMS = 16

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.parametrize("backend", ["scalar", "vector"])
@pytest.mark.parametrize("size", SIZES)
def test_backend_throughput(benchmark, backend, size):
    sw = SmithWaterman(engine=Engine(backend=backend))
    query = random_protein(size, seed=21)
    target = random_protein(size, seed=22)
    sw.align(query, target)  # warm the kernel cache

    def run():
        return sw.align(query, target).value

    score = benchmark(run)
    assert score >= 0


def test_backend_agreement_report(benchmark):
    def compute():
        rows = []
        records = []
        for size in SIZES:
            query = random_protein(size, seed=31)
            target = random_protein(size, seed=32)
            timings = {}
            tables = {}
            for backend in ("scalar", "vector"):
                sw = SmithWaterman(engine=Engine(backend=backend))
                sw.align(query, target)  # warm
                started = time.perf_counter()
                result = sw.align(query, target)
                timings[backend] = time.perf_counter() - started
                tables[backend] = result.table
            assert (tables["scalar"] == tables["vector"]).all()

            # Lane-batched map over MAP_PROBLEMS targets, against the
            # per-problem loop (batching off) on the same engine.
            targets = [
                random_protein(size, seed=100 + k)
                for k in range(MAP_PROBLEMS)
            ]
            scalar_scores = [
                int(
                    SmithWaterman(engine=Engine(backend="scalar"))
                    .align(query, t)
                    .value
                )
                for t in targets
            ]
            # Lane batching is a vector-backend feature; pin it so the
            # comparison is batching on/off, not native vs vector.
            batched_sw = SmithWaterman(
                engine=Engine(backend="vector", batching=True)
            )
            looped_sw = SmithWaterman(
                engine=Engine(backend="vector", batching=False)
            )
            batched_sw.search(query, targets[:2])  # warm
            looped_sw.search(query, targets[:2])
            started = time.perf_counter()
            mapped = batched_sw.search(query, targets)
            batched_s = time.perf_counter() - started
            started = time.perf_counter()
            looped = looped_sw.search(query, targets)
            looped_s = time.perf_counter() - started
            assert mapped.lane_batched_problems == MAP_PROBLEMS
            assert [int(v) for v in mapped.values] == scalar_scores
            assert list(looped.values) == list(mapped.values)
            batched_ms = batched_s * 1e3 / MAP_PROBLEMS

            rows.append(
                (
                    size,
                    timings["scalar"] * 1e3,
                    timings["vector"] * 1e3,
                    batched_ms,
                    timings["scalar"] / timings["vector"],
                    looped_s / batched_s,
                )
            )
            records.append(
                {
                    "size": size,
                    "scalar_ms": timings["scalar"] * 1e3,
                    "vector_ms": timings["vector"] * 1e3,
                    "batched_ms_per_problem": batched_ms,
                    "batched_map_s": batched_s,
                    "looped_map_s": looped_s,
                    "vector_speedup": (
                        timings["scalar"] / timings["vector"]
                    ),
                    "batched_speedup_vs_loop": looped_s / batched_s,
                }
            )
        return rows, records

    rows, records = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "backend_ablation",
        "Backend ablation: scalar vs vector vs lane-batched map\n"
        "(Smith-Waterman NxN, host milliseconds; results identical)",
        (
            "N",
            "scalar (ms)",
            "vector (ms)",
            "batched (ms/prob)",
            "vec speedup",
            "batch speedup",
        ),
        rows,
    )
    payload = {
        "benchmark": "backend_ablation",
        "workload": "smith_waterman",
        "map_problems": MAP_PROBLEMS,
        "sizes": list(SIZES),
        "rows": records,
    }
    (REPO_ROOT / "BENCH_backend.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # The vector backend should win clearly by N=256, and the
    # lane-batched map should beat the per-problem loop everywhere.
    assert rows[-1][4] > 2.0
    assert all(row[5] > 1.5 for row in rows)
