"""Backend ablation: scalar vs vectorised functional simulation.

Measures real wall-clock (pytest-benchmark) of the two generated-code
backends filling the same Smith-Waterman tables. The vector backend
evaluates whole partitions as NumPy array operations — legitimate
because a partition's cells are mutually independent (the schedule's
defining property). Not a paper figure; quantifies simulator quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.smith_waterman import SmithWaterman
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein

from conftest import write_table

SIZES = (64, 128, 256)


@pytest.mark.parametrize("backend", ["scalar", "vector"])
@pytest.mark.parametrize("size", SIZES)
def test_backend_throughput(benchmark, backend, size):
    sw = SmithWaterman(engine=Engine(backend=backend))
    query = random_protein(size, seed=21)
    target = random_protein(size, seed=22)
    sw.align(query, target)  # warm the kernel cache

    def run():
        return sw.align(query, target).value

    score = benchmark(run)
    assert score >= 0


def test_backend_agreement_report(benchmark):
    import time

    def compute():
        rows = []
        for size in SIZES:
            query = random_protein(size, seed=31)
            target = random_protein(size, seed=32)
            timings = {}
            tables = {}
            for backend in ("scalar", "vector"):
                sw = SmithWaterman(engine=Engine(backend=backend))
                sw.align(query, target)  # warm
                started = time.perf_counter()
                result = sw.align(query, target)
                timings[backend] = time.perf_counter() - started
                tables[backend] = result.table
            assert (tables["scalar"] == tables["vector"]).all()
            rows.append(
                (
                    size,
                    timings["scalar"] * 1e3,
                    timings["vector"] * 1e3,
                    timings["scalar"] / timings["vector"],
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "backend_ablation",
        "Backend ablation: scalar vs vectorised functional kernels\n"
        "(Smith-Waterman NxN, host milliseconds; tables identical)",
        ("N", "scalar (ms)", "vector (ms)", "speedup"),
        rows,
    )
    # The vector backend should win clearly by N=256.
    assert rows[-1][3] > 2.0
