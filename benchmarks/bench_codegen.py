"""Figure 9 / Section 4.3: polyhedral code generation.

Checks the CLooG-reference output and times the generator across
dimensionalities and schedules (the paper reports ~1 s total codegen
overhead dominated by calling CLooG from Java; our in-process
generator runs in microseconds).
"""

from __future__ import annotations

import pytest

from repro.analysis.affine import Affine
from repro.analysis.domain import Domain
from repro.polyhedral.codegen import generate_for_domain, generate_loops
from repro.polyhedral.loopast import emit_c_inlined

from conftest import write_table

FIG9 = """\
for (p=0;p<=m+n;p++) {
  for (i=max(0,p-m);i<=min(n,p);i++) {
    S1(i,p-i);
  }
}"""


def test_figure9_text(benchmark):
    """The paper's Figure 9, regenerated token for token."""

    def generate():
        nest = generate_loops(
            ["i", "j"],
            [Affine.variable("n"), Affine.variable("m")],
            [1, 1],
        )
        return emit_c_inlined(nest.roots)

    text = benchmark(generate)
    assert text == FIG9
    write_table(
        "fig9_cloog",
        "Figure 9 - CLooG output for edit distance, S = x + y:\n\n"
        + text,
        ("-",),
        [("-",)],
    )


@pytest.mark.parametrize(
    "dims,coeffs",
    [
        (2, (1, 1)),
        (2, (2, 1)),
        (3, (1, 1, 1)),
        (3, (2, 0, 1)),
        (4, (1, 1, 1, 1)),
    ],
    ids=lambda v: str(v),
)
def test_generation_speed(benchmark, dims, coeffs):
    domain = Domain(
        tuple(f"x{k}" for k in range(dims)), (16,) * dims
    )

    def generate():
        return generate_for_domain(domain, list(coeffs))

    nest = benchmark(generate)
    assert nest.space_vars == domain.dims
