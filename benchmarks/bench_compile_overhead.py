"""Section 6: code-generation overhead and the per-function cache.

The paper: "The code generation overhead is typically around 1 second,
primarily due to inefficiencies in the way in which we call CLooG from
Java ... we cache the compiled code for each function." This bench
measures our end-to-end compile path (schedule search + polyhedral
generation + lowering + Python compilation) and demonstrates the
cache: repeat runs of the same function pay nothing.
"""

from __future__ import annotations

import pytest

from repro.apps.hmm_algorithms import forward_function
from repro.apps.smith_waterman import smith_waterman_function
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein
from repro.schedule.schedule import Schedule

from conftest import write_table


def test_compile_cold(benchmark):
    func = smith_waterman_function()
    schedule = Schedule.of(i=1, j=1)

    def compile_cold():
        return Engine().compile(func, schedule)

    compiled = benchmark(compile_cold)
    assert compiled.kernel.schedule == schedule


def test_compile_cached(benchmark):
    func = smith_waterman_function()
    schedule = Schedule.of(i=1, j=1)
    engine = Engine()
    engine.compile(func, schedule)  # warm the cache

    def compile_warm():
        return engine.compile(func, schedule)

    compiled = benchmark(compile_warm)
    assert engine.cache_hits > 0
    assert compiled.compile_seconds < 1.0


def test_cache_amortisation_report(benchmark):
    """Across a 50-problem map, exactly one compilation happens."""
    from repro.apps.smith_waterman import SmithWaterman
    from repro.runtime.sequences import random_database

    def run():
        sw = SmithWaterman()
        query = random_protein(24, seed=5)
        database = random_database(50, 40, seed=6)
        result = sw.search(query, database)
        return sw.engine, result

    engine, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert engine.cache_misses == 1
    assert result.report.problems == 50

    compiled = next(iter(engine._cache.values()))
    write_table(
        "compile_overhead",
        "Section 6 - compilation overhead and caching "
        "(50-problem map)",
        ("metric", "value"),
        [
            ("compilations", engine.cache_misses),
            ("cache hits", engine.cache_hits),
            ("one compile (s)", compiled.compile_seconds),
            ("paper's CLooG-from-Java overhead (s)", "~1"),
        ],
    )
