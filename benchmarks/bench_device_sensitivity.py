"""Device sensitivity: how the headline results move across hardware.

Not a paper figure. The cost model is parameterised by the device
spec; this bench re-prices the Figure 13 workload (gene-finder forward
vs. HMMoC) on three device classes around the paper's GTX 480, to show
the speedup claim is a property of the *strategy*, not of one card's
constants:

* a GTX-280-class part (fewer, narrower multiprocessors, slower
  memory system);
* the paper's GTX 480;
* a K20-class part (more SMs, more shared memory).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.domain import Domain
from repro.apps.baselines.hmm_tools import HmmocBaseline
from repro.apps.gene_finder import build_gene_finder_hmm
from repro.apps.hmm_algorithms import forward_function
from repro.gpu.spec import DeviceSpec, GTX480
from repro.gpu.timing import kernel_cost, problems_per_sm
from repro.ir.kernel import build_kernel
from repro.schedule.schedule import Schedule

from conftest import write_table

DEVICES = {
    "GTX 280-class": dataclasses.replace(
        GTX480,
        name="GTX 280-class (simulated)",
        sm_count=30,
        cores_per_sm=8,
        blocks_per_sm=2,
        clock_hz=1.30e9,
        shared_memory_bytes=16 * 1024,
        global_read_cycles=40.0,
        sync_cycles=64.0,
    ),
    "GTX 480": GTX480,
    "K20-class": dataclasses.replace(
        GTX480,
        name="K20-class (simulated)",
        sm_count=13,
        cores_per_sm=192,
        warp_size=32,
        blocks_per_sm=8,
        clock_hz=0.71e9,
        shared_memory_bytes=48 * 1024,
        global_read_cycles=16.0,
        sync_cycles=32.0,
    ),
}

SEQ_COUNT = 20_000
SEQ_LENGTH = 500


def _gpu_seconds(kernel, hmm, spec):
    domain = Domain.of(s=hmm.n_states, i=SEQ_LENGTH + 1)
    per_problem = kernel_cost(
        kernel, domain, spec, mean_degree=hmm.mean_in_degree()
    ).seconds
    packing = problems_per_sm(kernel, domain, spec)
    slots = spec.sm_count * packing
    batches = -(-SEQ_COUNT // slots)
    return (
        per_problem * batches
        + spec.launch_overhead_s
        + spec.transfer_seconds(SEQ_COUNT * SEQ_LENGTH)
    )


def test_device_sensitivity_report(benchmark):
    hmm = build_gene_finder_hmm()
    kernel = build_kernel(
        forward_function(), Schedule.of(s=0, i=1), "logspace"
    )
    cpu = HmmocBaseline(kernel).seconds(
        hmm, [SEQ_LENGTH] * SEQ_COUNT
    )

    def compute():
        rows = []
        for name, spec in DEVICES.items():
            gpu = _gpu_seconds(kernel, hmm, spec)
            rows.append((name, spec.sm_count, gpu, cpu / gpu))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "device_sensitivity",
        "Device sensitivity: the Figure 13 workload "
        f"({SEQ_COUNT} x {SEQ_LENGTH}nt reads) vs HMMoC "
        f"({cpu:.2f}s on one CPU core)",
        ("device", "SMs", "ours (s)", "speedup"),
        rows,
    )
    speedups = [row[3] for row in rows]
    # Every device class keeps a decisive win over the CPU, and the
    # three land within a small factor of each other: the strategy
    # (not one card's constants) carries the result.
    assert min(speedups) > 10
    assert max(speedups) / min(speedups) < 3
