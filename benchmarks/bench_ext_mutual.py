"""Extension benchmark: mutual-recursion scheduling (Section 9).

Times the joint schedule search across group shapes and verifies the
derived schedules against brute-force call-graph enumeration; also
reports the interleaved schedules of the RNA structure grammar (the
application Section 9 names).
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.schedule.mutual_rec import (
    brute_force_mutual_valid,
    find_mutual_schedules,
)

from conftest import write_table

GROUPS = {
    "ping-pong": (
        "int f(int n) = if n == 0 then 0 else g(n - 1) + 1\n"
        "int g(int n) = if n == 0 then 0 else f(n - 1) + 2",
        ("f", "g"),
        {"f": Domain.of(n=50), "g": Domain.of(n=50)},
    ),
    "same-step": (
        "int f(int n) = if n == 0 then 0 else g(n) + 1\n"
        "int g(int n) = if n == 0 then 0 else f(n - 1) + 2",
        ("f", "g"),
        {"f": Domain.of(n=50), "g": Domain.of(n=50)},
    ),
    "three-way": (
        "int a(int n) = if n == 0 then 0 else b(n - 1)\n"
        "int b(int n) = if n == 0 then 1 else c(n - 1)\n"
        "int c(int n) = if n == 0 then 2 else a(n - 1)",
        ("a", "b", "c"),
        {n: Domain.of(n=30) for n in ("a", "b", "c")},
    ),
    "rna-grammar": (None, ("struct", "paired"), None),
    "gotoh-affine-gap": (None, ("m", "x", "y"), None),
}


def _resolve(name):
    src, names, domains = GROUPS[name]
    if name == "rna-grammar":
        from repro.apps.rna_grammar import grammar_program

        checked = grammar_program()
        funcs = {n: checked.function(n) for n in names}
        domains = {n: Domain.of(i=25, j=25) for n in names}
        return funcs, domains
    if name == "gotoh-affine-gap":
        from repro.apps.gotoh import GotohAligner

        funcs = GotohAligner().funcs
        domains = {n: Domain.of(i=40, j=40) for n in names}
        return funcs, domains
    checked = check_program(parse_program(src))
    return {n: checked.function(n) for n in names}, domains


@pytest.mark.parametrize("case", list(GROUPS), ids=list(GROUPS))
def test_joint_search_speed(benchmark, case):
    funcs, domains = _resolve(case)
    bound = 1 if case == "gotoh-affine-gap" else 2

    def solve():
        return find_mutual_schedules(funcs, domains, coeff_bound=bound,
                                     offset_bound=bound)

    mutual = benchmark(solve)
    small = {
        name: Domain(d.dims, tuple(min(6, e) for e in d.extents))
        for name, d in domains.items()
    }
    assert brute_force_mutual_valid(mutual, funcs, small)


def test_mutual_report(benchmark):
    def compute():
        rows = []
        for case in GROUPS:
            funcs, domains = _resolve(case)
            bound = 1 if case == "gotoh-affine-gap" else 2
            mutual = find_mutual_schedules(
                funcs, domains, coeff_bound=bound, offset_bound=bound
            )
            rows.append(
                (case, str(mutual), mutual.total_partitions(domains))
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ext_mutual_recursion",
        "Extension - mutual recursion (Section 9): jointly derived "
        "schedules",
        ("group", "schedules", "global partitions"),
        rows,
    )
