"""Extension benchmark: RNA folding (Nussinov) at scale.

Not a paper figure — the paper names RNA secondary structure as future
work (Section 9) and sanctions looping extensions (Section 5); this
bench quantifies what the synthesised wavefront achieves on it, and
why the win is smaller than for the windowed workloads (ranged
descents admit no sliding window, so the kernel stays global-memory
bound).
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.apps.rna_folding import RNA, RnaFolding, nussinov_function
from repro.gpu.spec import GTX480, XEON_E5520
from repro.gpu.timing import cpu_cost_seconds, kernel_cost
from repro.ir.kernel import build_kernel
from repro.runtime.values import Sequence
from repro.schedule.schedule import Schedule

from conftest import write_table

LENGTHS = (100, 200, 400, 800, 1600)


def test_rna_report(benchmark):
    kernel = build_kernel(nussinov_function(), Schedule.of(i=-1, j=1))
    assert kernel.window is None  # no window for ranged descents

    def compute():
        rows = []
        for n in LENGTHS:
            domain = Domain.of(i=n + 1, j=n + 1)
            degree = max(1.0, n / 3)  # mean bifurcation length
            gpu = kernel_cost(
                kernel, domain, GTX480, mean_degree=degree
            ).seconds
            cpu = cpu_cost_seconds(
                kernel, domain, XEON_E5520, mean_degree=degree
            )
            rows.append((n, cpu, gpu, cpu / gpu))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "ext_rna_folding",
        "Extension - Nussinov RNA folding: one sequence of length N\n"
        "(no sliding window possible: ranged descents, Section 4.8)",
        ("N", "CPU (s)", "ours (s)", "speedup"),
        rows,
    )
    for row in rows:
        assert row[3] > 1.5  # the wavefront still wins...
        assert row[3] < 20   # ...but far less than windowed kernels.
    # O(n^3) growth on both sides.
    assert rows[-1][1] > rows[-2][1] * 6


def test_functional_fold_benchmark(benchmark):
    folder = RnaFolding()
    import random

    rng = random.Random(3)
    seq = Sequence("".join(rng.choices("acgu", k=40)), RNA)

    def run():
        return folder.fold(seq).score

    score = benchmark(run)
    assert score > 0
