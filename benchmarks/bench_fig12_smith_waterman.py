"""Figure 12: Smith-Waterman database search vs. query size.

Paper setup: query sequences of 200-800 residues against a Swiss-Prot
class protein database; tools are Fasta's ``ssearch`` (CPU, no SSE2),
CUDASW++ 2.0 intra-task, CUDASW++ 2.0 hybrid, and ours. Reported
shape: ours is "very similar to the intra-task CUDASW++", both
"comfortably beat Fasta", and "the best overall performance is
achieved by using the hybrid" (Section 6.1).

Our substitute database: 20,000 synthetic protein sequences with a
Swiss-Prot-like mean length of 360 (DESIGN.md §2) — scaled down from
the real ~400k entries, which rescales every curve identically.
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.apps.baselines.cudasw import (
    CudaSWHybrid,
    CudaSWInter,
    CudaSWIntra,
)
from repro.apps.baselines.ssearch import SSearchBaseline
from repro.apps.smith_waterman import SmithWaterman, smith_waterman_function
from repro.gpu.device import greedy_makespan
from repro.gpu.spec import GTX480
from repro.gpu.timing import inter_task_seconds, kernel_cost
from repro.ir.kernel import build_kernel
from repro.runtime.sequences import random_database, random_protein
from repro.schedule.schedule import Schedule

from conftest import write_table

QUERY_SIZES = (200, 300, 400, 500, 600, 700, 800)
DB_COUNT = 20_000
DB_MEAN_LENGTH = 360
DB_SEED = 1202


def _db_lengths():
    import random

    rng = random.Random(DB_SEED)
    return [
        max(8, int(rng.gauss(DB_MEAN_LENGTH, 0.35 * DB_MEAN_LENGTH)))
        for _ in range(DB_COUNT)
    ]


def _our_seconds(kernel, query_len, db_lengths):
    cache = {}

    def cost(n):
        if n not in cache:
            cache[n] = kernel_cost(
                kernel, Domain(("i", "j"), (query_len + 1, n + 1)),
                GTX480,
            ).seconds
        return cache[n]

    durations = [cost(n) for n in db_lengths]
    makespan, _ = greedy_makespan(durations, GTX480.sm_count)
    return makespan + GTX480.launch_overhead_s


def test_figure12_report(benchmark):
    """Regenerate Figure 12's series and check its shape."""
    func = smith_waterman_function()
    kernel = build_kernel(func, Schedule.of(i=1, j=1))
    db_lengths = _db_lengths()

    ssearch = SSearchBaseline()
    intra = CudaSWIntra(kernel)
    hybrid = CudaSWHybrid(intra, CudaSWInter())

    def compute():
        rows = []
        series = {"ssearch": [], "ours": [], "intra": [],
                  "hybrid": [], "ours_inter": []}
        for query in QUERY_SIZES:
            t_ssearch = ssearch.seconds(query, db_lengths)
            t_ours = _our_seconds(kernel, query, db_lengths)
            t_intra = intra.seconds(query, db_lengths)
            t_hybrid = hybrid.seconds(query, db_lengths)
            # Section 6.1's sequence-per-thread generation, priced on
            # our generic kernel (no hand-virtualised SIMD).
            domains = [
                Domain(("i", "j"), (query + 1, n + 1))
                for n in db_lengths
            ]
            t_ours_inter = inter_task_seconds(kernel, domains, GTX480)
            series["ssearch"].append(t_ssearch)
            series["ours"].append(t_ours)
            series["intra"].append(t_intra)
            series["hybrid"].append(t_hybrid)
            series["ours_inter"].append(t_ours_inter)
            rows.append(
                (query, t_ssearch, t_ours, t_ours_inter,
                 t_intra, t_hybrid)
            )
        return rows, series

    rows, series = benchmark.pedantic(compute, rounds=1, iterations=1)

    write_table(
        "fig12_smith_waterman",
        "Figure 12 - Smith-Waterman: execution time (s) vs query size\n"
        f"(database: {DB_COUNT} seqs, mean {DB_MEAN_LENGTH}aa; "
        "GTX-480-class simulated device)",
        ("query", "ssearch", "ours intra", "ours inter",
         "CUDASW++ intra", "CUDASW++ hybrid"),
        rows,
    )
    # Our generated inter-task kernel is not competitive with the
    # hand-virtualised CUDASW++ inner loop (Section 6.1 expected
    # parity with the hybrid; we measure and report the gap).
    for k in range(len(QUERY_SIZES)):
        assert series["ours_inter"][k] > series["hybrid"][k]

    for k in range(len(QUERY_SIZES)):
        # Ours comfortably beats Fasta...
        assert series["ssearch"][k] > 5 * series["ours"][k]
        # ... and is very similar to intra-task CUDASW++ ...
        ratio = series["ours"][k] / series["intra"][k]
        assert 0.5 < ratio < 2.0, ratio
        # ... while the hybrid wins overall.
        assert series["hybrid"][k] <= series["ours"][k] * 1.05
        assert series["hybrid"][k] <= series["intra"][k] * 1.05
    # All curves grow with query size (roughly linearly).
    for name, curve in series.items():
        assert curve[-1] > curve[0] * 2.5, name


@pytest.mark.parametrize("query_len", [64, 128])
def test_functional_search_benchmark(benchmark, query_len):
    """pytest-benchmark: the real compiled kernel on a small search."""
    sw = SmithWaterman()
    query = random_protein(query_len, seed=12)
    database = random_database(12, 80, seed=13)

    def run():
        return sw.search(query, database).values

    values = benchmark(run)
    assert len(values) == 12
