"""Figure 13: gene-finding performance vs. database size.

Paper setup: the gene-finder HMM scoring DNA sequence sets of growing
size; our synthesised GPU code against HMMoC's single-threaded CPU
code. Reported shape: "a significant performance increase ... at
larger database sizes, when we are using the GPU to its full extent,
the performance increase is about x60" (Section 6.2). At small sizes
the GPU's fixed setup overheads eat into the win — the curves
converge towards the origin.
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.apps.baselines.hmm_tools import HmmocBaseline
from repro.apps.gene_finder import GeneFinder, build_gene_finder_hmm
from repro.apps.hmm_algorithms import forward_function
from repro.gpu.spec import GTX480
from repro.gpu.timing import kernel_cost, problems_per_sm
from repro.ir.kernel import build_kernel
from repro.runtime.sequences import random_dna
from repro.schedule.schedule import Schedule

from conftest import write_table

SEQUENCE_COUNTS = (500, 1_000, 2_000, 5_000, 10_000, 20_000, 40_000)
SEQ_LENGTH = 500


def _our_seconds(kernel, hmm, count):
    domain = Domain.of(s=hmm.n_states, i=SEQ_LENGTH + 1)
    per_problem = kernel_cost(
        kernel,
        domain,
        GTX480,
        mean_degree=hmm.mean_in_degree(),
    ).seconds
    packing = problems_per_sm(kernel, domain, GTX480)
    slots = GTX480.sm_count * packing
    batches = -(-count // slots)  # ceil: packed SMs run in parallel
    return (
        per_problem * batches
        + GTX480.launch_overhead_s
        + GTX480.transfer_seconds(count * SEQ_LENGTH)
    )


def test_figure13_report(benchmark):
    hmm = build_gene_finder_hmm()
    kernel = build_kernel(
        forward_function(), Schedule.of(s=0, i=1), "logspace"
    )
    hmmoc = HmmocBaseline(kernel)

    def compute():
        rows = []
        speedups = []
        for count in SEQUENCE_COUNTS:
            cpu = hmmoc.seconds(hmm, [SEQ_LENGTH] * count)
            gpu = _our_seconds(kernel, hmm, count)
            speedups.append(cpu / gpu)
            rows.append((count, cpu, gpu, cpu / gpu))
        return rows, speedups

    rows, speedups = benchmark.pedantic(compute, rounds=1, iterations=1)

    write_table(
        "fig13_gene_finding",
        "Figure 13 - Gene finding: execution time (s) vs number of "
        f"sequences\n({SEQ_LENGTH}nt DNA reads; HMMoC on one CPU core "
        "vs ours on the simulated GTX 480)",
        ("sequences", "HMMoC (s)", "ours (s)", "speedup"),
        rows,
    )

    # The paper's shape: speedup grows with database size and reaches
    # the x60 class once the GPU is saturated.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 30
    assert speedups[-1] < 200
    # Both curves are (asymptotically) linear in the database size.
    assert rows[-1][1] == pytest.approx(
        rows[-2][1] * 2, rel=0.05
    )


def test_functional_scan_benchmark(benchmark):
    """pytest-benchmark: a real (functional) scan of short reads."""
    finder = GeneFinder()
    reads = [random_dna(160, seed=k) for k in range(8)]

    def run():
        return finder.scan(reads).likelihoods

    likelihoods = benchmark(run)
    assert len(likelihoods) == 8
