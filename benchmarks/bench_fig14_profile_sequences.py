"""Figure 14: profile-HMM forward search on the TK model (10
positions), execution time vs. number of sequences.

Paper tools: HMMoC (generic CPU), ours (GPU), GPU-HMMeR (GPU port of
HMMeR 2), HMMeR 3.0 with ``--max`` (filters off). Reported shape
(Section 6.3): "an expected large increase in performance over HMMoC
for the GPU techniques. Our runtime performance is on par with
GHMMeR ... all three are beaten by the most recently released version
of HMMeR, 3.0". Our fixed runtime overhead is "smoothed out on larger
sequence sets".
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.apps.baselines.hmm_tools import (
    GpuHmmerBaseline,
    Hmmer3Baseline,
    HmmocBaseline,
)
from repro.apps.hmm_algorithms import forward_function
from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.gpu.spec import GTX480
from repro.gpu.timing import kernel_cost, problems_per_sm
from repro.ir.kernel import build_kernel
from repro.runtime.sequences import random_protein
from repro.schedule.schedule import Schedule

from conftest import write_table

SEQUENCE_COUNTS = (2_000, 5_000, 10_000, 20_000, 40_000, 80_000)
SEQ_LENGTH = 400

#: Fixed runtime-environment overhead of our tool (scanning/parsing
#: input files — Section 6: "times for our software are inclusive of
#: scanning and parsing the input files").
RUNTIME_OVERHEAD_S = 0.012


def our_seconds(kernel, hmm, count, length=SEQ_LENGTH):
    domain = Domain.of(s=hmm.n_states, i=length + 1)
    per_problem = kernel_cost(
        kernel, domain, GTX480, mean_degree=hmm.mean_in_degree()
    ).seconds
    packing = problems_per_sm(kernel, domain, GTX480)
    slots = GTX480.sm_count * packing
    batches = -(-count // slots)
    return (
        per_problem * batches
        + RUNTIME_OVERHEAD_S
        + GTX480.transfer_seconds(count * length)
    )


def test_figure14_report(benchmark):
    hmm = tk_model()
    kernel = build_kernel(
        forward_function(), Schedule.of(s=0, i=1), "logspace"
    )
    hmmoc = HmmocBaseline(kernel)
    gpu_hmmer = GpuHmmerBaseline(kernel)
    hmmer3 = Hmmer3Baseline(kernel)

    def compute():
        rows = []
        series = {"hmmoc": [], "ours": [], "ghmmer": [], "h3": []}
        for count in SEQUENCE_COUNTS:
            lengths = [SEQ_LENGTH] * count
            t_hmmoc = hmmoc.seconds(hmm, lengths)
            t_ours = our_seconds(kernel, hmm, count)
            t_ghmmer = gpu_hmmer.seconds(hmm, lengths)
            t_h3 = hmmer3.seconds(hmm, lengths)
            series["hmmoc"].append(t_hmmoc)
            series["ours"].append(t_ours)
            series["ghmmer"].append(t_ghmmer)
            series["h3"].append(t_h3)
            rows.append((count, t_hmmoc, t_ours, t_ghmmer, t_h3))
        return rows, series

    rows, series = benchmark.pedantic(compute, rounds=1, iterations=1)

    write_table(
        "fig14_profile_sequences",
        "Figure 14 - Profile HMM forward (TK model, 10 positions):\n"
        f"execution time (s) vs number of {SEQ_LENGTH}aa sequences",
        ("sequences", "HMMoC", "ours", "GPU-HMMeR", "HMMeR 3 --max"),
        rows,
    )

    last = len(SEQUENCE_COUNTS) - 1
    # Large GPU win over HMMoC at scale.
    assert series["hmmoc"][last] > 20 * series["ours"][last]
    # On par with GPU-HMMeR (within ~3x either way), and closer at
    # scale than at the smallest size (overheads smooth out).
    for k in range(len(SEQUENCE_COUNTS)):
        ratio = series["ours"][k] / series["ghmmer"][k]
        assert 1 / 3 < ratio < 3, (k, ratio)
    gap_small = abs(series["ours"][0] / series["ghmmer"][0] - 1)
    gap_large = abs(series["ours"][last] / series["ghmmer"][last] - 1)
    assert gap_large <= gap_small + 1e-9
    # HMMeR 3 beats all three at scale.
    assert series["h3"][last] < series["ours"][last]
    assert series["h3"][last] < series["ghmmer"][last]
    assert series["h3"][last] < series["hmmoc"][last]


def test_functional_profile_benchmark(benchmark):
    """pytest-benchmark: real forward kernels on a small batch."""
    search = ProfileSearch(tk_model())
    database = [random_protein(60, seed=k) for k in range(6)]

    def run():
        return search.search(database).likelihoods

    likelihoods = benchmark(run)
    assert len(likelihoods) == 6
