"""Figure 15: profile-HMM forward search vs. model size.

Paper setup: "Performance on a dataset of 13,355 sequences, on models
of a varying size" (the Pfam-style workload of Section 6.3). Same tool
set and expected ordering as Figure 14; every tool's cost grows
linearly with the number of model positions (states), so the *slopes*
order the tools.
"""

from __future__ import annotations

import pytest

from repro.apps.baselines.hmm_tools import (
    GpuHmmerBaseline,
    Hmmer3Baseline,
    HmmocBaseline,
)
from repro.apps.hmm_algorithms import forward_function
from repro.apps.profile_hmm import ProfileSearch, random_profile
from repro.ir.kernel import build_kernel
from repro.runtime.sequences import random_protein
from repro.schedule.schedule import Schedule

from bench_fig14_profile_sequences import our_seconds
from conftest import write_table

MODEL_POSITIONS = (5, 10, 20, 40, 80, 160)
SEQUENCE_COUNT = 13_355  # the paper's dataset size
SEQ_LENGTH = 400


def test_figure15_report(benchmark):
    kernel = build_kernel(
        forward_function(), Schedule.of(s=0, i=1), "logspace"
    )
    hmmoc = HmmocBaseline(kernel)
    gpu_hmmer = GpuHmmerBaseline(kernel)
    hmmer3 = Hmmer3Baseline(kernel)
    lengths = [SEQ_LENGTH] * SEQUENCE_COUNT

    def compute():
        rows = []
        series = {"hmmoc": [], "ours": [], "ghmmer": [], "h3": []}
        for positions in MODEL_POSITIONS:
            hmm = random_profile(positions, seed=positions)
            t_hmmoc = hmmoc.seconds(hmm, lengths)
            t_ours = our_seconds(kernel, hmm, SEQUENCE_COUNT)
            t_ghmmer = gpu_hmmer.seconds(hmm, lengths)
            t_h3 = hmmer3.seconds(hmm, lengths)
            series["hmmoc"].append(t_hmmoc)
            series["ours"].append(t_ours)
            series["ghmmer"].append(t_ghmmer)
            series["h3"].append(t_h3)
            rows.append((positions, t_hmmoc, t_ours, t_ghmmer, t_h3))
        return rows, series

    rows, series = benchmark.pedantic(compute, rounds=1, iterations=1)

    write_table(
        "fig15_profile_model_size",
        "Figure 15 - Profile HMM forward: execution time (s) vs model "
        f"size\n(dataset of {SEQUENCE_COUNT} sequences x {SEQ_LENGTH}aa)",
        ("positions", "HMMoC", "ours", "GPU-HMMeR", "HMMeR 3 --max"),
        rows,
    )

    for name, curve in series.items():
        # Monotone growth with model size...
        assert curve == sorted(curve), name
        # ... and roughly linear (doubling positions ~ doubles time).
        assert curve[-1] == pytest.approx(curve[-2] * 2, rel=0.35), name

    for k in range(len(MODEL_POSITIONS)):
        assert series["hmmoc"][k] > 10 * series["ours"][k]
        assert 1 / 3 < series["ours"][k] / series["ghmmer"][k] < 3
        assert series["h3"][k] < series["ours"][k]


def test_functional_model_sizes_benchmark(benchmark):
    """pytest-benchmark: real kernels across two model sizes."""
    database = [random_protein(40, seed=k) for k in range(4)]

    def run():
        results = []
        for positions in (5, 15):
            search = ProfileSearch(random_profile(positions,
                                                  seed=positions))
            results.append(search.search(database).likelihoods)
        return results

    results = benchmark(run)
    assert len(results) == 2
