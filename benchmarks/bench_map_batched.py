"""Lane-batched map execution on the Figure 14 profile workload.

The paper's Figure 14 searches a profile HMM (the TK model, 10
positions) against a sequence database — one forward problem per
database sequence, all sharing one kernel and one HMM. That is the
ideal case for the engine's lane-batched map path: the problems pack
into a single array with a leading problem axis and execute as one
vectorised sweep instead of a Python loop of per-problem sweeps.

This benchmark measures the real wall-clock win over the per-problem
loop (``Engine(batching=False)``) on a 64-sequence database and
asserts it stays at least 5x. Results are written to
``BENCH_map_batched.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein

from conftest import write_table

REPO_ROOT = Path(__file__).resolve().parent.parent

PROBLEMS = 64
SEQ_LENGTH = 120


def test_map_batched_profile_speedup(benchmark):
    profile = tk_model()
    database = [
        random_protein(SEQ_LENGTH, seed=k) for k in range(PROBLEMS)
    ]
    # Lane batching is a vector-backend feature; pin the backend so
    # the comparison is batching on/off, not native vs vector.
    batched = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="vector", batching=True
        ),
    )
    looped = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="vector", batching=False
        ),
    )
    batched.search(database[:2])  # warm the kernel caches
    looped.search(database[:2])

    def compute():
        started = time.perf_counter()
        batched_result = batched.search(database)
        batched_s = time.perf_counter() - started
        started = time.perf_counter()
        looped_result = looped.search(database)
        looped_s = time.perf_counter() - started
        return batched_result, batched_s, looped_result, looped_s

    batched_result, batched_s, looped_result, looped_s = (
        benchmark.pedantic(compute, rounds=1, iterations=1)
    )

    # One lane batch covering the whole database, identical scores.
    mapped = batched_result.map_result
    assert mapped.lane_batches == 1
    assert mapped.lane_batched_problems == PROBLEMS
    assert len(mapped.batched_costs) == 1
    assert np.allclose(
        batched_result.likelihoods,
        looped_result.likelihoods,
        rtol=1e-9,
        atol=1e-12,
    )

    speedup = looped_s / batched_s
    write_table(
        "map_batched_fig14",
        "Lane-batched map vs per-problem loop\n"
        f"(Figure 14 profile forward, {PROBLEMS} x "
        f"{SEQ_LENGTH}aa sequences, host seconds)",
        ("problems", "loop (s)", "batched (s)", "speedup"),
        [(PROBLEMS, looped_s, batched_s, speedup)],
    )
    payload = {
        "benchmark": "map_batched_fig14_profile",
        "model": "TK profile HMM (10 positions)",
        "problems": PROBLEMS,
        "sequence_length": SEQ_LENGTH,
        "prob_mode": "logspace",
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "lane_batches": mapped.lane_batches,
        "lane_batched_problems": mapped.lane_batched_problems,
        "batched_launch_seconds": [
            cost.seconds for cost in mapped.batched_costs
        ],
        "agreement": "likelihoods match the per-problem loop "
        "(rtol=1e-9)",
    }
    (REPO_ROOT / "BENCH_map_batched.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # The acceptance bar: batching the map must be worth at least 5x.
    assert speedup >= 5.0, speedup
