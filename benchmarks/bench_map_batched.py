"""Lane-batched map execution on the Figure 14 profile workload.

The paper's Figure 14 searches a profile HMM (the TK model, 10
positions) against a sequence database — one forward problem per
database sequence, all sharing one kernel and one HMM. That is the
ideal case for the engine's lane-batched map path: the problems pack
into a single array with a leading problem axis and execute as one
launch instead of a Python loop of per-problem sweeps.

Two batched rungs are measured against the per-problem loop
(``Engine(batching=False)``):

* **vector-batched** — the NumPy batched twin (one masked sweep);
* **native-batched** — the batched C entry point, at 1, 2 and all
  cores (``REPRO_NATIVE_THREADS`` drives the OpenMP problem loop).

The acceptance bars: vector batching stays >= 5x the vector loop,
native batching stays >= 5x vector batching, the ``auto`` ladder
actually picks the native-batched rung for this workload, and every
rung agrees (native bitwise with the per-problem native loop; vector
within the documented logaddexp tolerance). Results are written to
``BENCH_map_batched.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.runtime import native as native_rt
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein

from conftest import write_table

REPO_ROOT = Path(__file__).resolve().parent.parent

PROBLEMS = 64
SEQ_LENGTH = 240


def _timed_search(search, database, repeats=3):
    """Best-of-``repeats`` wall time (and the last result).

    The batched legs finish in tens of milliseconds; a single shot is
    at the mercy of the scheduler, so each leg reports its best of a
    few repeats — the standard floor estimator for short benchmarks.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = search(database)
        best = min(best, time.perf_counter() - started)
    return result, best


def _native_engine():
    return Engine(
        prob_mode="logspace", backend="native", batching=True
    )


def test_map_batched_profile_speedup(benchmark):
    if not native_rt.available().ok:
        pytest.skip("no C compiler: native rungs unmeasurable")
    profile = tk_model()
    database = [
        random_protein(SEQ_LENGTH, seed=k) for k in range(PROBLEMS)
    ]
    cores = max(1, os.cpu_count() or 1)
    thread_legs = sorted({1, 2, cores})

    batched = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="vector", batching=True
        ),
    )
    looped = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="vector", batching=False
        ),
    )
    native_loop = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="native", batching=False
        ),
    )
    batched.search(database[:2])  # warm the kernel caches
    looped.search(database[:2])
    native_loop.search(database[:2])

    def compute():
        batched_result, batched_s = _timed_search(
            batched.search, database
        )
        looped_result, looped_s = _timed_search(
            looped.search, database, repeats=1
        )
        native_loop_result, native_loop_s = _timed_search(
            native_loop.search, database
        )
        # Thread legs get fresh engines: the OpenMP cap is applied
        # when each engine's library handle loads.
        native_legs = {}
        for threads in thread_legs:
            os.environ["REPRO_NATIVE_THREADS"] = str(threads)
            try:
                search = ProfileSearch(profile, engine=_native_engine())
                search.search(database[:2])  # warm: compile + load
                native_legs[threads] = _timed_search(
                    search.search, database
                )
            finally:
                os.environ.pop("REPRO_NATIVE_THREADS", None)
        return (
            batched_result, batched_s, looped_result, looped_s,
            native_loop_result, native_loop_s, native_legs,
        )

    (
        batched_result, batched_s, looped_result, looped_s,
        native_loop_result, native_loop_s, native_legs,
    ) = benchmark.pedantic(compute, rounds=1, iterations=1)

    # One lane batch covering the whole database, identical scores.
    mapped = batched_result.map_result
    assert mapped.lane_batches == 1
    assert mapped.lane_batched_problems == PROBLEMS
    assert len(mapped.batched_costs) == 1
    assert mapped.batched_backends == ["vector-batched"]
    assert np.allclose(
        batched_result.likelihoods,
        looped_result.likelihoods,
        rtol=1e-9,
        atol=1e-12,
    )

    # The native rung: one native-batched launch per thread leg,
    # bitwise-identical to the per-problem native loop at any count.
    for threads, (result, _seconds) in native_legs.items():
        assert result.map_result.batched_backends == [
            "native-batched"
        ], (threads, result.map_result.batched_backends)
        assert result.likelihoods == native_loop_result.likelihoods, (
            f"native-batched at {threads} threads diverged from the "
            f"per-problem native loop"
        )
    assert np.allclose(
        native_legs[thread_legs[-1]][0].likelihoods,
        batched_result.likelihoods,
        rtol=1e-9,
        atol=1e-12,
    )

    # The auto ladder must pick the native-batched rung unprompted.
    auto = ProfileSearch(
        profile, engine=Engine(prob_mode="logspace")
    )
    auto_result = auto.search(database[:8])
    assert auto_result.map_result.batched_backends == [
        "native-batched"
    ], auto_result.map_result.batched_backends

    native_best_s = min(s for _r, s in native_legs.values())
    speedup = looped_s / batched_s
    native_speedup = batched_s / native_best_s
    rows = [
        (PROBLEMS, "vector loop", 1, looped_s, 1.0),
        (
            PROBLEMS, "vector batched", 1, batched_s,
            looped_s / batched_s,
        ),
        (
            PROBLEMS, "native loop", 1, native_loop_s,
            looped_s / native_loop_s,
        ),
    ] + [
        (
            PROBLEMS, "native batched", threads, seconds,
            looped_s / seconds,
        )
        for threads, (_result, seconds) in sorted(native_legs.items())
    ]
    write_table(
        "map_batched_fig14",
        "Lane-batched map rungs vs per-problem loop\n"
        f"(Figure 14 profile forward, {PROBLEMS} x "
        f"{SEQ_LENGTH}aa sequences, host seconds)",
        ("problems", "rung", "threads", "seconds", "vs vector loop"),
        rows,
    )
    payload = {
        "benchmark": "map_batched_fig14_profile",
        "model": "TK profile HMM (10 positions)",
        "problems": PROBLEMS,
        "sequence_length": SEQ_LENGTH,
        "prob_mode": "logspace",
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "native_loop_s": native_loop_s,
        "native_batched_s": {
            str(threads): seconds
            for threads, (_r, seconds) in sorted(native_legs.items())
        },
        "native_batched_best_s": native_best_s,
        "native_vs_vector_batched": native_speedup,
        "auto_backend": "native-batched",
        "lane_batches": mapped.lane_batches,
        "lane_batched_problems": mapped.lane_batched_problems,
        "batched_launch_seconds": [
            cost.seconds for cost in mapped.batched_costs
        ],
        "agreement": "native-batched bitwise == per-problem native "
        "loop at every thread count; vector rungs match within "
        "rtol=1e-9",
    }
    (REPO_ROOT / "BENCH_map_batched.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # The acceptance bars: batching worth >= 5x over the loop, and
    # the native rung worth >= 5x over the vector rung.
    assert speedup >= 5.0, speedup
    assert native_speedup >= 5.0, native_speedup
