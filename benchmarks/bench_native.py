"""Native-backend ablation: the compiled rung of the ladder.

Times real wall-clock (host milliseconds) of the same Smith-Waterman
tables filled by every rung — the scalar interpreter, the vectorised
NumPy backend, the native C backend (cc + ctypes, whole run in one
shared-library call) — plus ``backend="auto"``, which should resolve
to native wherever a compiler exists. A profile-HMM forward search
(the Figure 14 workload, log space) covers the reduction-heavy case.

Besides the human-readable table, the report test writes
``BENCH_native.json`` at the repository root. Two properties gate a
merge:

* native is at least 5x faster than vector on the largest
  Smith-Waterman size (the point of compiling at all);
* auto is never slower than the best of scalar/vector at any size
  (the ladder never picks a worse rung than the old default).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.apps.smith_waterman import SmithWaterman
from repro.runtime import native
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein

from conftest import write_table

pytestmark = pytest.mark.skipif(
    not native.available().ok,
    reason="no working C compiler in this environment",
)

SIZES = (64, 128, 256)
BACKENDS = ("scalar", "vector", "native", "auto")

#: Figure 14 workload, scaled for wall-clock runs: TK model forward
#: over a small database of fixed-length sequences.
PROFILE_PROBLEMS = 8
PROFILE_LENGTH = 64

REPO_ROOT = Path(__file__).resolve().parent.parent


def timed_align(backend, query, target):
    sw = SmithWaterman(engine=Engine(backend=backend))
    # Warm with the real problem: auto's backend resolution is
    # bucketed by size, so a tiny warm-up would leave the measured
    # run paying compilation for its own bucket.
    sw.align(query, target)
    started = time.perf_counter()
    result = sw.align(query, target)
    return time.perf_counter() - started, result


@pytest.mark.parametrize("backend", ["vector", "native"])
@pytest.mark.parametrize("size", SIZES)
def test_native_throughput(benchmark, backend, size):
    sw = SmithWaterman(engine=Engine(backend=backend))
    query = random_protein(size, seed=41)
    target = random_protein(size, seed=42)
    sw.align(query, target)  # warm

    def run():
        return sw.align(query, target).value

    score = benchmark(run)
    assert score >= 0


def test_native_report(benchmark):
    def compute():
        rows = []
        records = []
        for size in SIZES:
            query = random_protein(size, seed=51)
            target = random_protein(size, seed=52)
            timings = {}
            tables = {}
            for backend in BACKENDS:
                seconds, result = timed_align(backend, query, target)
                timings[backend] = seconds
                tables[backend] = result.table
            assert (
                tables["native"].tobytes() == tables["scalar"].tobytes()
            )
            assert (tables["vector"] == tables["scalar"]).all()
            assert (
                tables["auto"].tobytes() == tables["scalar"].tobytes()
            )
            rows.append(
                (
                    size,
                    timings["scalar"] * 1e3,
                    timings["vector"] * 1e3,
                    timings["native"] * 1e3,
                    timings["auto"] * 1e3,
                    timings["vector"] / timings["native"],
                    timings["scalar"] / timings["native"],
                )
            )
            records.append(
                {
                    "size": size,
                    "scalar_ms": timings["scalar"] * 1e3,
                    "vector_ms": timings["vector"] * 1e3,
                    "native_ms": timings["native"] * 1e3,
                    "auto_ms": timings["auto"] * 1e3,
                    "native_speedup_vs_vector": (
                        timings["vector"] / timings["native"]
                    ),
                    "native_speedup_vs_scalar": (
                        timings["scalar"] / timings["native"]
                    ),
                }
            )

        # Figure 14 workload: profile-HMM forward in log space.
        profile = tk_model()
        database = [
            random_protein(PROFILE_LENGTH, seed=500 + k)
            for k in range(PROFILE_PROBLEMS)
        ]
        profile_ms = {}
        likelihoods = {}
        for backend in ("scalar", "vector", "native"):
            search = ProfileSearch(
                profile,
                engine=Engine(
                    prob_mode="logspace", backend=backend,
                    batching=False,
                ),
            )
            search.search(database[:1])  # warm
            started = time.perf_counter()
            likelihoods[backend] = search.search(database).likelihoods
            profile_ms[backend] = (
                (time.perf_counter() - started) * 1e3
            )
        assert likelihoods["native"] == likelihoods["scalar"]
        assert np.allclose(
            likelihoods["native"], likelihoods["vector"],
            rtol=1e-9, atol=1e-12,
        )
        return rows, records, profile_ms

    rows, records, profile_ms = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    write_table(
        "native_ablation",
        "Native-backend ablation: scalar vs vector vs native vs auto\n"
        "(Smith-Waterman NxN, host milliseconds; tables identical)",
        (
            "N",
            "scalar (ms)",
            "vector (ms)",
            "native (ms)",
            "auto (ms)",
            "native/vector",
            "native/scalar",
        ),
        rows,
    )
    payload = {
        "benchmark": "native_ablation",
        "workload": "smith_waterman",
        "sizes": list(SIZES),
        "rows": records,
        "profile_forward": {
            "problems": PROFILE_PROBLEMS,
            "length": PROFILE_LENGTH,
            "scalar_ms": profile_ms["scalar"],
            "vector_ms": profile_ms["vector"],
            "native_ms": profile_ms["native"],
            "native_speedup_vs_vector": (
                profile_ms["vector"] / profile_ms["native"]
            ),
        },
    }
    (REPO_ROOT / "BENCH_native.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # The merge gates: compilation must pay off decisively at the
    # largest size, and auto must never lose to the old ladder.
    assert records[-1]["native_speedup_vs_vector"] >= 5.0
    for record in records:
        best_old = min(record["scalar_ms"], record["vector_ms"])
        assert record["auto_ms"] <= best_old
