"""Section 4.6: the schedule-search CSP.

Times both solvers (the paper's sign-orthant decomposition and the
exhaustive reference) on the evaluation recursions, and verifies they
find equally good schedules.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.domain import Domain
from repro.apps.hmm_algorithms import forward_function
from repro.apps.smith_waterman import smith_waterman_function
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime import native as native_rt
from repro.runtime.engine import Engine
from repro.schedule.solver import find_schedule

from conftest import write_table

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

REPO_ROOT = Path(__file__).resolve().parent.parent

CASES = {
    "edit-distance": (
        check_function(
            parse_function(
                "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
                "  if i == 0 then j else if j == 0 then i\n"
                "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
                "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1"
            ),
            EN,
        ),
        Domain.of(i=500, j=500),
    ),
    "smith-waterman": (
        smith_waterman_function(),
        Domain.of(i=400, j=400),
    ),
    "hmm-forward": (
        forward_function(),
        Domain.of(s=30, i=400),
    ),
    "3d-recurrence": (
        check_function(
            parse_function(
                "int g(int x, int y, int z) = if x == 0 then 0 else "
                "g(x-1, y-1, z) + g(x, y-1, z-1) + g(x-1, y, z-1)"
            )
        ),
        Domain.of(x=50, y=50, z=50),
    ),
}


@pytest.mark.parametrize("case", list(CASES), ids=list(CASES))
@pytest.mark.parametrize("solver", ["orthant", "enumerative"])
def test_solver_speed(benchmark, case, solver):
    func, domain = CASES[case]

    def solve():
        return find_schedule(func, domain, solver=solver)

    schedule = benchmark(solve)
    reference = find_schedule(func, domain, solver="enumerative")
    assert schedule.num_partitions(domain) == (
        reference.num_partitions(domain)
    )


def test_search_report(benchmark):
    def compute():
        rows = []
        for name, (func, domain) in CASES.items():
            schedule = find_schedule(func, domain)
            rows.append(
                (name, str(schedule),
                 schedule.num_partitions(domain), domain.size)
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "schedule_search",
        "Section 4.6 - automatically derived schedules",
        ("recursion", "schedule", "partitions", "cells"),
        rows,
    )


# ---------------------------------------------------------------------------
# Cost-model-guided autotuning (schedule.autotune)

AUTOTUNE_REPEATS = 3


def _native_measure(engine, func, bindings, domain):
    """Best-of-N wall-clock of one native run under ``schedule``."""
    from repro import Bindings

    def measure(schedule):
        compiled = engine.compile(func, schedule, domain)
        ctx = engine.build_context(
            compiled, Bindings(dict(bindings)), domain
        )
        best = None
        for _ in range(AUTOTUNE_REPEATS):
            table = engine._table_for(compiled.kernel, domain)
            started = time.perf_counter()
            compiled.run(table, ctx)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        return best

    return measure


def autotune_cases():
    """(name, func, bindings) for the autotune report; domains come
    from the bindings so predicted and measured agree exactly."""
    from repro.apps.profile_hmm import tk_model
    from repro.extensions.submatrix import blosum62
    from repro.runtime.sequences import random_protein
    from repro.runtime.values import PROTEIN

    sw_func = smith_waterman_function()
    protein = blosum62(PROTEIN)
    cases = [
        (
            "smith-waterman-2304",
            sw_func,
            {
                "m": protein,
                "q": random_protein(2304, seed=1),
                "d": random_protein(2304, seed=2),
            },
        ),
        (
            "edit-distance-2304",
            CASES["edit-distance"][0],
            {
                "s": _random_english(2304, 41),
                "t": _random_english(2304, 42),
            },
        ),
        (
            "hmm-forward-2048",
            forward_function(),
            {"h": tk_model(), "x": random_protein(2048, seed=5)},
        ),
    ]
    return cases


def _random_english(n, seed):
    import random as _random

    from repro.runtime.values import ENGLISH, Sequence

    rng = _random.Random(seed)
    return Sequence(
        "".join(rng.choice(ENGLISH.chars) for _ in range(n)), ENGLISH
    )


@pytest.mark.skipif(
    not native_rt.available().ok,
    reason="no working C compiler in this environment",
)
def test_autotune_report(benchmark):
    """Cost-model-guided autotuning vs the min-partition default.

    Candidates are searched analytically, the top predicted few are
    compiled and timed natively (the ``REPRO_AUTOTUNE_MEASURE`` path
    with an explicit ``measure_fn``), and both the default and the
    adopted schedule are measured the same way. Writes
    ``BENCH_autotune.json`` at the repository root."""
    from repro import Bindings
    from repro.schedule.autotune import autotune_schedule

    def compute():
        rows = []
        records = []
        for name, func, bindings in autotune_cases():
            engine = Engine(backend="native")
            domain = engine.domain_of(func, Bindings(dict(bindings)))
            measure = _native_measure(engine, func, bindings, domain)
            started = time.perf_counter()
            result = autotune_schedule(
                func,
                domain,
                engine.spec,
                mean_degree=engine.mean_degree(
                    func, Bindings(dict(bindings))
                ),
                measure=3,
                measure_fn=measure,
            )
            search_s = time.perf_counter() - started
            clock = engine.spec.clock_hz
            default_ms = measure(result.default) * 1e3
            chosen_ms = (
                default_ms
                if result.schedule == result.default
                else measure(result.schedule) * 1e3
            )
            row = {
                "app": name,
                "extents": list(domain.extents),
                "default_schedule": str(result.default),
                "autotuned_schedule": str(result.schedule),
                "predicted_default_ms": (
                    result.default_predicted.cycles / clock * 1e3
                ),
                "predicted_autotuned_ms": (
                    result.predicted.cycles / clock * 1e3
                ),
                "predicted_speedup": result.predicted_speedup,
                "measured_default_ms": default_ms,
                "measured_autotuned_ms": chosen_ms,
                "measured_speedup": default_ms / chosen_ms,
                "candidates_enumerated": result.stats.enumerated,
                "candidates_pruned": result.stats.pruned,
                "candidates_measured": result.stats.measured,
                "search_seconds": search_s,
            }
            records.append(row)
            rows.append(
                (
                    name,
                    row["default_schedule"],
                    row["autotuned_schedule"],
                    row["measured_default_ms"],
                    row["measured_autotuned_ms"],
                    row["measured_speedup"],
                    row["candidates_enumerated"],
                    row["candidates_pruned"],
                )
            )
        return rows, records

    rows, records = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "autotune",
        "Cost-model-guided schedule autotuning vs min-partition\n"
        "(native backend, best-of-%d host milliseconds)"
        % AUTOTUNE_REPEATS,
        (
            "app",
            "default",
            "autotuned",
            "default (ms)",
            "autotuned (ms)",
            "speedup",
            "enumerated",
            "pruned",
        ),
        rows,
    )
    payload = {
        "benchmark": "autotune",
        "measure_top_k": 3,
        "repeats": AUTOTUNE_REPEATS,
        "rows": records,
    }
    (REPO_ROOT / "BENCH_autotune.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # The model must never pick something it predicts to be worse...
    for row in records:
        assert row["predicted_autotuned_ms"] <= (
            row["predicted_default_ms"]
        ), row["app"]
        # ...and the measured winner never loses by more than noise.
        assert row["measured_speedup"] > 0.95, row["app"]
    # At least one paper app shows a real measured win, with the
    # model's ordering agreeing on the direction.
    wins = [r for r in records if r["measured_speedup"] > 1.05]
    assert wins, "autotuning won nowhere"
    assert any(
        r["predicted_speedup"] > 1.0 for r in wins
    ), "measured win the model did not predict"
