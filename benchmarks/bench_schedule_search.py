"""Section 4.6: the schedule-search CSP.

Times both solvers (the paper's sign-orthant decomposition and the
exhaustive reference) on the evaluation recursions, and verifies they
find equally good schedules.
"""

from __future__ import annotations

import pytest

from repro.analysis.domain import Domain
from repro.apps.hmm_algorithms import forward_function
from repro.apps.smith_waterman import smith_waterman_function
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.solver import find_schedule

from conftest import write_table

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

CASES = {
    "edit-distance": (
        check_function(
            parse_function(
                "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
                "  if i == 0 then j else if j == 0 then i\n"
                "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
                "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1"
            ),
            EN,
        ),
        Domain.of(i=500, j=500),
    ),
    "smith-waterman": (
        smith_waterman_function(),
        Domain.of(i=400, j=400),
    ),
    "hmm-forward": (
        forward_function(),
        Domain.of(s=30, i=400),
    ),
    "3d-recurrence": (
        check_function(
            parse_function(
                "int g(int x, int y, int z) = if x == 0 then 0 else "
                "g(x-1, y-1, z) + g(x, y-1, z-1) + g(x-1, y, z-1)"
            )
        ),
        Domain.of(x=50, y=50, z=50),
    ),
}


@pytest.mark.parametrize("case", list(CASES), ids=list(CASES))
@pytest.mark.parametrize("solver", ["orthant", "enumerative"])
def test_solver_speed(benchmark, case, solver):
    func, domain = CASES[case]

    def solve():
        return find_schedule(func, domain, solver=solver)

    schedule = benchmark(solve)
    reference = find_schedule(func, domain, solver="enumerative")
    assert schedule.num_partitions(domain) == (
        reference.num_partitions(domain)
    )


def test_search_report(benchmark):
    def compute():
        rows = []
        for name, (func, domain) in CASES.items():
            schedule = find_schedule(func, domain)
            rows.append(
                (name, str(schedule),
                 schedule.num_partitions(domain), domain.size)
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_table(
        "schedule_search",
        "Section 4.6 - automatically derived schedules",
        ("recursion", "schedule", "partitions", "cells"),
        rows,
    )
