"""CI smoke checks for the benchmark workloads (tiny sizes).

The real benchmarks (``bench_backend``, ``bench_map_batched``) time
substantial problem sizes; CI runs this file instead to assert the
property the timings rely on — scalar, vector and lane-batched
execution all compute the same results — in a few hundred
milliseconds. No timing assertions here: CI machines are too noisy
for that, and correctness is what gates a merge.
"""

from __future__ import annotations

import numpy as np

from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.apps.smith_waterman import SmithWaterman
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein

SMOKE_SIZE = 24
SMOKE_PROBLEMS = 6


def test_smoke_backends_agree_smith_waterman():
    query = random_protein(SMOKE_SIZE, seed=7)
    targets = [
        random_protein(SMOKE_SIZE, seed=70 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    scalar_scores = [
        int(
            SmithWaterman(engine=Engine(backend="scalar"))
            .align(query, target)
            .value
        )
        for target in targets
    ]
    vector_scores = [
        int(
            SmithWaterman(engine=Engine(backend="vector"))
            .align(query, target)
            .value
        )
        for target in targets
    ]
    mapped = SmithWaterman(
        engine=Engine(backend="auto", batching=True)
    ).search(query, targets)
    assert vector_scores == scalar_scores
    assert [int(v) for v in mapped.values] == scalar_scores
    assert mapped.lane_batched_problems == SMOKE_PROBLEMS


def test_smoke_backends_agree_profile_forward():
    profile = tk_model()
    database = [
        random_protein(SMOKE_SIZE, seed=700 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    looped = ProfileSearch(
        profile, engine=Engine(prob_mode="logspace", batching=False)
    ).search(database)
    batched = ProfileSearch(
        profile, engine=Engine(prob_mode="logspace", batching=True)
    ).search(database)
    scalar = ProfileSearch(
        profile,
        engine=Engine(prob_mode="logspace", backend="scalar"),
    ).search(database)
    assert batched.map_result.lane_batched_problems == SMOKE_PROBLEMS
    assert np.allclose(
        batched.likelihoods, scalar.likelihoods,
        rtol=1e-9, atol=1e-12,
    )
    assert np.allclose(
        batched.likelihoods, looped.likelihoods,
        rtol=1e-9, atol=1e-12,
    )
