"""CI smoke checks for the benchmark workloads (tiny sizes).

The real benchmarks (``bench_backend``, ``bench_map_batched``) time
substantial problem sizes; CI runs this file instead to assert the
property the timings rely on — scalar, vector and lane-batched
execution all compute the same results — in a few hundred
milliseconds. No timing assertions here: CI machines are too noisy
for that, and correctness is what gates a merge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.apps.smith_waterman import SmithWaterman
from repro.runtime import native
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_protein

SMOKE_SIZE = 24
SMOKE_PROBLEMS = 6


def test_smoke_backends_agree_smith_waterman():
    query = random_protein(SMOKE_SIZE, seed=7)
    targets = [
        random_protein(SMOKE_SIZE, seed=70 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    scalar_scores = [
        int(
            SmithWaterman(engine=Engine(backend="scalar"))
            .align(query, target)
            .value
        )
        for target in targets
    ]
    vector_scores = [
        int(
            SmithWaterman(engine=Engine(backend="vector"))
            .align(query, target)
            .value
        )
        for target in targets
    ]
    mapped = SmithWaterman(
        engine=Engine(backend="vector", batching=True)
    ).search(query, targets)
    assert vector_scores == scalar_scores
    assert [int(v) for v in mapped.values] == scalar_scores
    assert mapped.lane_batched_problems == SMOKE_PROBLEMS


def test_smoke_backends_agree_profile_forward():
    profile = tk_model()
    database = [
        random_protein(SMOKE_SIZE, seed=700 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    looped = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="vector", batching=False
        ),
    ).search(database)
    batched = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="vector", batching=True
        ),
    ).search(database)
    scalar = ProfileSearch(
        profile,
        engine=Engine(prob_mode="logspace", backend="scalar"),
    ).search(database)
    assert batched.map_result.lane_batched_problems == SMOKE_PROBLEMS
    assert np.allclose(
        batched.likelihoods, scalar.likelihoods,
        rtol=1e-9, atol=1e-12,
    )
    assert np.allclose(
        batched.likelihoods, looped.likelihoods,
        rtol=1e-9, atol=1e-12,
    )


@pytest.mark.skipif(
    not native.available().ok,
    reason="no working C compiler in this environment",
)
def test_smoke_native_agrees_with_scalar_and_vector():
    """All three ladder rungs fill the same tables at tiny sizes —
    the property every timing in bench_native.py relies on."""
    query = random_protein(SMOKE_SIZE, seed=9)
    target = random_protein(SMOKE_SIZE, seed=90)
    tables = {}
    for backend in ("scalar", "vector", "native"):
        sw = SmithWaterman(engine=Engine(backend=backend))
        tables[backend] = sw.align(query, target).table
    assert tables["native"].tobytes() == tables["scalar"].tobytes()
    assert (tables["native"] == tables["vector"]).all()

    profile = tk_model()
    database = [
        random_protein(SMOKE_SIZE, seed=900 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    scalar = ProfileSearch(
        profile,
        engine=Engine(prob_mode="logspace", backend="scalar"),
    ).search(database)
    compiled = ProfileSearch(
        profile,
        engine=Engine(prob_mode="logspace", backend="native"),
    ).search(database)
    # Same formulas through the same libm: bitwise, even in log space.
    assert compiled.likelihoods == scalar.likelihoods


@pytest.mark.skipif(
    not native.available().ok,
    reason="no working C compiler in this environment",
)
def test_smoke_batched_rungs_agree():
    """Scalar loop == batched-vector == batched-native on tiny sizes.

    This is the agreement bar ``bench_map_batched`` times at scale:
    the batched C entry point and the masked NumPy sweep must both
    reproduce the per-problem scalar results, and the engines must
    actually take their batched rungs (not silently demote)."""
    profile = tk_model()
    database = [
        random_protein(SMOKE_SIZE, seed=9000 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    scalar = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="scalar", batching=False
        ),
    ).search(database)
    vector = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="vector", batching=True
        ),
    ).search(database)
    batched_native = ProfileSearch(
        profile,
        engine=Engine(
            prob_mode="logspace", backend="native", batching=True
        ),
    ).search(database)
    assert vector.map_result.batched_backends == ["vector-batched"]
    assert batched_native.map_result.batched_backends == [
        "native-batched"
    ]
    assert np.allclose(
        vector.likelihoods, scalar.likelihoods, rtol=1e-9, atol=1e-12
    )
    # The batched entry runs each member's exact serial nest: bitwise
    # with the scalar interpreter through the same libm.
    assert batched_native.likelihoods == scalar.likelihoods


def test_smoke_autotune_agrees_and_never_predicts_worse():
    """The autotuned engine computes the same tables as the
    min-partition default, and the adopted schedule is never
    predicted slower than the default — the invariant behind
    ``bench_schedule_search.test_autotune_report``'s timings."""
    query = random_protein(SMOKE_SIZE, seed=11)
    targets = [
        random_protein(SMOKE_SIZE, seed=110 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    baseline = [
        int(
            SmithWaterman(engine=Engine(backend="scalar"))
            .align(query, target)
            .value
        )
        for target in targets
    ]
    engine = Engine(backend="scalar", schedule="autotune")
    tuned_sw = SmithWaterman(engine=engine)
    tuned = [
        int(tuned_sw.align(query, target).value) for target in targets
    ]
    assert tuned == baseline
    assert engine.autotune_searches >= 1
    result = engine.last_autotune
    assert result is not None
    assert result.predicted.cycles <= result.default_predicted.cycles

    profile = tk_model()
    database = [
        random_protein(SMOKE_SIZE, seed=1100 + k)
        for k in range(SMOKE_PROBLEMS)
    ]
    scalar = ProfileSearch(
        profile,
        engine=Engine(prob_mode="logspace", backend="scalar"),
    ).search(database)
    tuned_engine = Engine(
        prob_mode="logspace", backend="scalar", schedule="autotune"
    )
    tuned_search = ProfileSearch(profile, engine=tuned_engine).search(
        database
    )
    assert np.allclose(
        tuned_search.likelihoods, scalar.likelihoods,
        rtol=1e-9, atol=1e-12,
    )
    assert tuned_engine.last_autotune is not None
    assert tuned_engine.last_autotune.predicted.cycles <= (
        tuned_engine.last_autotune.default_predicted.cycles
    )
