"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_figNN_*`` module regenerates one table/figure of the
paper's evaluation: it sweeps the paper's x-axis, prices every tool on
the simulated hardware (see DESIGN.md §2 for the substitution
argument), prints the series in a paper-style table, saves it under
``benchmarks/results/``, and asserts the qualitative *shape* the paper
reports. ``pytest benchmarks/ --benchmark-only`` also times the real
(functional) kernels on scaled-down workloads via pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Tuple

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_table(
    name: str,
    title: str,
    header: Sequence[str],
    rows: List[Sequence[object]],
) -> str:
    """Render, print and persist one paper-style table."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[k])) for r in rows))
        for k, h in enumerate(header)
    ]
    lines = [title, ""]
    lines.append(
        "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths))
        )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
