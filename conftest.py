"""Repo-level pytest configuration.

Puts ``src/`` on ``sys.path`` so a bare ``python -m pytest -x -q``
collects and runs without exporting ``PYTHONPATH=src`` (the package
uses a src-layout and need not be installed to be tested). The same
path is exported through ``PYTHONPATH`` so tests that launch
subprocesses (the examples suite) inherit it too.
"""

import os
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

_existing = os.environ.get("PYTHONPATH", "")
if SRC not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        SRC + os.pathsep + _existing if _existing else SRC
    )
