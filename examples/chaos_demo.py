#!/usr/bin/env python3
"""Fault injection and supervised recovery, end to end.

Three acts:

1. **Chaos campaign** — edit distance under 5% launch failures, 2%
   transfer truncations and 1% silent bit-flip corruption. The
   supervisor detects every fault, replays only the failed partition
   ranges, and the final table is bitwise-identical to a fault-free
   run. The launch accounting proves no clean epoch was recomputed.
2. **Determinism** — the same seed replays the exact same faults at
   the exact same sites; a different seed draws a different storm.
3. **Graceful degradation** — a service whose device never completes
   a launch still answers correctly: after `demote_after` faulted
   rounds the jobs finish on the serial reference interpreter.

Run:  python examples/chaos_demo.py
"""

import queue as _queue

from repro import check_function, parse_function
from repro.resilience import (
    ExecutionSupervisor,
    FaultPlan,
    LaunchFault,
    SupervisionPolicy,
)
from repro.runtime import ENGLISH
from repro.runtime.engine import Engine
from repro.runtime.values import Sequence

PROGRAM = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

SERVICE_PROGRAM = 'alphabet en = "abcdefghijklmnopqrstuvwxyz"\n' + PROGRAM


def chaos_campaign(func, bindings):
    print("=== 1. chaos campaign ===")
    baseline = Engine().run(func, dict(bindings))
    plan = FaultPlan(
        seed=1234,
        launch_fail_rate=0.05,
        truncate_rate=0.02,
        corrupt_rate=0.01,
        corrupt_mode="bitflip",
    )
    supervisor = ExecutionSupervisor(
        plan=plan, policy=SupervisionPolicy(checkpoint_interval=4)
    )
    result = supervisor.run(func, dict(bindings))
    stats = supervisor.stats
    print(f"value: {result.value} (baseline {baseline.value})")
    print(f"bitwise identical to fault-free run: "
          f"{result.table.tobytes() == baseline.table.tobytes()}")
    print(f"faults injected: "
          f"{[(e.kind, e.site.tokens()) for e in supervisor.injector.log]}")
    print(f"detected by kind: {stats.faults}")
    print(f"epochs committed: {stats.epochs_committed}, "
          f"replays: {stats.replays}, "
          f"replayed ranges: {stats.replayed_ranges}")
    print(f"oracle recoveries: {stats.corruption_recovered} "
          f"(ranges {stats.recovered_ranges}, "
          f"{stats.oracle_runs} oracle runs)")
    extra = (stats.partitions_launched
             - stats.partitions_committed
             - stats.partitions_verified)
    replayed = sum(hi - lo + 1 for _, lo, hi in stats.replayed_ranges)
    print(f"launch accounting: {extra} partitions launched beyond "
          f"commit + verification == {replayed} partitions in replayed "
          f"ranges -> only failed ranges were recomputed")
    assert result.table.tobytes() == baseline.table.tobytes()
    assert extra == replayed


def determinism(func, bindings):
    print("\n=== 2. determinism ===")

    def storm(seed):
        plan = FaultPlan(seed=seed, launch_fail_rate=0.25)
        supervisor = ExecutionSupervisor(
            plan=plan, policy=SupervisionPolicy(checkpoint_interval=2)
        )
        supervisor.run(func, dict(bindings))
        return [(e.kind, e.site.tokens())
                for e in supervisor.injector.log]

    first, again, other = storm(7), storm(7), storm(8)
    print(f"seed 7, run 1: {len(first)} faults")
    print(f"seed 7, run 2: identical log: {first == again}")
    print(f"seed 8:        different log: {first != other}")
    assert first == again and first != other


def degradation():
    print("\n=== 3. graceful degradation ===")
    from repro.service.batcher import Batch
    from repro.service.programs import ProgramRegistry
    from repro.service.queue import Job
    from repro.service.stats import StatsRegistry
    from repro.service.workers import WorkerPool

    class BrokenDeviceEngine(Engine):
        attempts = 0

        def map_run(self, *args, **kwargs):
            BrokenDeviceEngine.attempts += 1
            raise LaunchFault("device on fire")

    registry = ProgramRegistry()
    stats = StatsRegistry()
    pool = WorkerPool(
        _queue.Queue(), Engine, registry, stats,
        workers=1, backoff_seconds=0.001, demote_after=3,
    )
    program = registry.register(SERVICE_PROGRAM)
    jobs = []
    for word in ("kitten", "mitten"):
        bindings, at, initial = program.bind(
            "d", {"s": word, "t": "sitting"}
        )
        jobs.append(Job(program_sha=program.sha, function="d",
                        bindings=bindings, at=at, initial=initial,
                        retries_left=10))
    pool.execute_batch(
        BrokenDeviceEngine(), Batch(jobs[0].group_key, jobs)
    )
    values = [job.handle.result(timeout=10) for job in jobs]
    snapshot = stats.snapshot()
    print(f"device attempts before giving up: "
          f"{BrokenDeviceEngine.attempts}")
    print(f"values from the reference interpreter: {values}")
    print(f"stats: demotions={snapshot.demotions} "
          f"device_faults={snapshot.device_faults} "
          f"failed={snapshot.failed}")
    assert values == [3, 3] and snapshot.failed == 0


def main():
    func = check_function(
        parse_function(PROGRAM.strip()), {"en": ENGLISH.chars}
    )
    bindings = {
        "s": Sequence("kitten", ENGLISH),
        "t": Sequence("sitting", ENGLISH),
    }
    chaos_campaign(func, bindings)
    determinism(func, bindings)
    degradation()
    print("\nall invariants held.")


if __name__ == "__main__":
    main()
