#!/usr/bin/env python3
"""A tour of the compiler internals, following the paper section by
section: dependence criteria (4.5), schedule search (4.6), CLooG-style
generation (4.3, Figure 9), conditional parallelisation (4.7) and the
sliding window (4.8).

Run:  python examples/codegen_tour.py
"""

from repro.analysis.affine import Affine
from repro.analysis.criteria import schedule_criteria
from repro.analysis.descent import extract_descents
from repro.analysis.domain import Domain
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.polyhedral import emit_c_inlined, generate_loops
from repro.schedule import (
    Schedule,
    derive_schedule_set,
    find_schedule,
    window_size,
)

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def main() -> None:
    func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)

    print("=== Section 4.4: descent functions " + "=" * 20)
    for descent in extract_descents(func):
        print(f"  {descent.call}  ->  {descent}")

    print("\n=== Section 4.5: validity criteria " + "=" * 20)
    criteria = schedule_criteria(func)
    for criterion in criteria:
        print(f"  {criterion}")
    for coeffs in [(1, 1), (2, 1), (1, 0)]:
        schedule = Schedule(("i", "j"), coeffs)
        verdict = "valid" if schedule.is_valid(criteria) else "INVALID"
        print(f"  {schedule}: {verdict}")

    print("\n=== Section 4.6: automatic schedule search " + "=" * 12)
    domain = Domain.of(i=7, j=8)
    best = find_schedule(func, domain)
    print(f"  derived {best} with "
          f"{best.num_partitions(domain)} partitions over {domain}")

    print("\n=== Section 4.3 / Figure 9: CLooG output " + "=" * 14)
    nest = generate_loops(
        ["i", "j"], [Affine.variable("n"), Affine.variable("m")], [1, 1]
    )
    print(emit_c_inlined(nest.roots))

    print("\n=== Section 4.7: conditional parallelisation " + "=" * 10)
    diagonal = check_function(
        parse_function(
            "int f(seq[en] a, index[a] x, seq[en] b, index[b] y) = "
            "if x == 0 then 0 else f(x - 1, y - 1)"
        ),
        EN,
    )
    schedule_set = derive_schedule_set(diagonal)
    print(f"  candidate schedules: "
          f"{[str(s) for s in schedule_set]}")
    for extents in ({"x": 3, "y": 50}, {"x": 50, "y": 3}):
        chosen = schedule_set.select(extents)
        print(f"  extents {extents} -> {chosen}")

    print("\n=== Section 4.8: sliding window " + "=" * 23)
    for coeffs in [(1, 1), (2, 1)]:
        schedule = Schedule(("i", "j"), coeffs)
        if not schedule.is_valid(criteria):
            continue
        window = window_size(schedule, criteria)
        print(f"  {schedule}: keep {window + 1} partitions resident")


if __name__ == "__main__":
    main()
