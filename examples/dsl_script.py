#!/usr/bin/env python3
"""Running a complete DSL script — the scripting-language face of the
system (Section 3): declarations, ``let``/``load``, ``print`` and the
``map`` primitive, end to end through the runtime environment.

Run:  python examples/dsl_script.py
"""

import tempfile
from pathlib import Path

from repro import run_script
from repro.runtime.sequences import random_database, write_fasta
from repro.runtime.values import DNA

SCRIPT_TEMPLATE = '''
alphabet dna = "acgt"

matrix cost[dna, dna] {{
  header a c g t
  row a :  2 -1 -1 -1
  row c : -1  2 -1 -1
  row g : -1 -1  2 -1
  row t : -1 -1 -1  2
}}

// Local alignment with the substitution-matrix extension.
int sw(matrix[dna, dna] m, seq[dna] q, index[q] i,
       seq[dna] d, index[d] j) =
  if i == 0 then 0
  else if j == 0 then 0
  else 0 max (sw(i-1, j-1) + m[q[i-1], d[j-1]])
         max (sw(i-1, j) - 2)
         max (sw(i, j-1) - 2)

// Verified user schedule (Section 4.5) - the tool would derive the
// same one automatically.
schedule sw : i + j

load db = fasta("{fasta}")
let q = "acgtacgtac"

print sw(cost, q, |q|, q, |q|)
map scores = sw(cost, q, |q|, _, |_|) over db
'''


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        fasta = Path(workdir) / "reads.fa"
        write_fasta(fasta, random_database(10, 60, alphabet=DNA, seed=2))
        script = SCRIPT_TEMPLATE.format(fasta=fasta)

        result = run_script(script, echo=False)

        print("printed output :", result.printed)
        scores = result.maps["scores"]
        print("map results    :", scores.values)
        print(f"simulated time : {scores.seconds * 1e3:.3f} ms "
              f"({scores.report.problems} problems, "
              f"utilisation {scores.report.sm_utilisation:.0%})")


if __name__ == "__main__":
    main()
