#!/usr/bin/env python3
"""Gene finding with an HMM (the paper's Section 6.2 case study).

A five-state gene-finder model scores DNA sequences by forward
likelihood. The recursion is Figure 11's forward algorithm; the tool
derives ``S = i`` (all states of a position in one partition) — no
schedule is specified by the user. Probabilities use the log-space
representation the type system enables, so kilobase sequences do not
underflow.

Run:  python examples/gene_finding.py
"""

from repro.apps.baselines import HmmocBaseline, forward_reference
from repro.apps.gene_finder import GeneFinder
from repro.ir.kernel import build_kernel
from repro.runtime.sequences import random_dna
from repro.schedule.schedule import Schedule


def main() -> None:
    finder = GeneFinder()
    hmm = finder.hmm
    print(f"model: {hmm.name}, {hmm.n_states} states, "
          f"{hmm.n_transitions} transitions")
    print("states:", ", ".join(s.name for s in hmm.states))

    # Score a small batch of synthetic reads.
    reads = [random_dna(400, seed=k, name=f"read{k}") for k in range(6)]
    result = finder.scan(reads)
    print("\nper-read log-likelihoods:")
    for read in reads:
        print(f"  {read.name}: {finder.log_likelihood(read):10.3f}")
    print(f"\nsimulated GPU scan time: {result.seconds * 1e3:.3f} ms")

    # Validate against the independent NumPy forward implementation.
    check = forward_reference(hmm, reads[0])
    ours = finder.likelihood(reads[0])
    print(f"validation: ours={ours:.6e} reference={check:.6e}")

    # The derived schedule, and what HMMoC would need on CPU.
    run = finder.engine.run(finder.func, {"h": hmm, "x": reads[0]})
    print(f"\nderived schedule: {run.schedule} "
          f"({run.cost.partitions} partitions)")
    kernel = build_kernel(finder.func, Schedule.of(s=0, i=1), "logspace")
    hmmoc = HmmocBaseline(kernel)
    lengths = [len(r) for r in reads]
    print(f"HMMoC (1 CPU core) on the same reads: "
          f"{hmmoc.seconds(hmm, lengths) * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
