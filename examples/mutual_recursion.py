#!/usr/bin/env python3
"""Mutual recursion — the paper's Section 9 future work, implemented.

"We would like to extend our work to support mutually recursive
functions, by deriving multiple scheduling functions, one for each
function, whose partition time-step values are compatible ... This
would allow us to support more complicated applications, such as RNA
secondary structure prediction."

This example runs exactly that application: a two-nonterminal RNA
structure grammar (struct/paired) scheduled jointly, validated against
the single-function Nussinov table.

Run:  python examples/mutual_recursion.py
"""

from repro.apps.rna_folding import RNA, nussinov_reference
from repro.apps.rna_grammar import GRAMMAR_SOURCE, RnaGrammar
from repro.runtime.values import Sequence


def main() -> None:
    print("--- the mutually recursive grammar " + "-" * 25)
    print(GRAMMAR_SOURCE)

    grammar = RnaGrammar()
    for text in ("gggaaaccc", "ggcgcaaagcgcc", "gcaucgaucgaugc"):
        seq = Sequence(text, RNA)
        fold = grammar.fold(seq)
        reference = int(nussinov_reference(seq)[0, len(seq)])
        marker = "ok" if fold.score == reference else "MISMATCH"
        print(f"{text:>16}  score {fold.score} "
              f"(Nussinov oracle {reference}) [{marker}]")

    fold = grammar.fold(Sequence("ggcgcaaagcgcc", RNA))
    print(f"\njointly derived schedules : {fold.schedules}")
    print("  -> 'paired' spans of length L run one global time-step")
    print("     before 'struct' spans of the same length.")
    print(f"modelled device time      : {fold.seconds * 1e6:.1f} us")

    # A second mutual group: Gotoh affine-gap alignment (three
    # tables, identical schedules, zero offsets).
    from repro.apps.gotoh import GotohAligner, gotoh_reference
    from repro.runtime.values import ENGLISH

    aligner = GotohAligner()
    a = Sequence("gattaca" * 4, ENGLISH)
    b = Sequence("gcatgcu" * 4, ENGLISH)
    result = aligner.align(a, b)
    marker = "ok" if result.score == gotoh_reference(a, b) else "BAD"
    print(f"\nGotoh affine-gap group    : {result.schedules}")
    print(f"alignment score           : {result.score} [{marker}]")


if __name__ == "__main__":
    main()
