#!/usr/bin/env python3
"""Posterior decoding: forward x backward, both synthesised.

Two recursions from the same DSL: Figure 11's forward algorithm
(schedule ``S = i``) and the mirrored backward algorithm, whose
descent *increases* the position — so the derived schedule is the
negative-coefficient ``S = -i``. Their product gives per-position
state posteriors; a two-state composition HMM then segments a DNA
read into AT-rich and GC-rich regions.

Run:  python examples/posterior_decoding.py
"""

from repro.apps.hmm_algorithms import BACKWARD_SOURCE, backward_function
from repro.apps.posterior import PosteriorDecoder
from repro.analysis.domain import Domain
from repro.extensions.hmm import HmmBuilder
from repro.runtime.values import DNA, Sequence
from repro.schedule.solver import find_schedule


def composition_hmm():
    return (
        HmmBuilder("comp", DNA)
        .start("begin")
        .add_state("at_rich", {"a": 0.4, "c": 0.1, "g": 0.1, "t": 0.4})
        .add_state("gc_rich", {"a": 0.1, "c": 0.4, "g": 0.4, "t": 0.1})
        .end("finish")
        .transition("begin", "at_rich", 0.5)
        .transition("begin", "gc_rich", 0.5)
        .transition("at_rich", "at_rich", 0.85)
        .transition("at_rich", "gc_rich", 0.10)
        .transition("at_rich", "finish", 0.05)
        .transition("gc_rich", "gc_rich", 0.85)
        .transition("gc_rich", "at_rich", 0.10)
        .transition("gc_rich", "finish", 0.05)
        .build()
    )


def main() -> None:
    print("--- the backward recursion " + "-" * 33)
    print(BACKWARD_SOURCE)
    schedule = find_schedule(
        backward_function(), Domain.of(s=4, i=30, n=30)
    )
    print(f"derived schedule: {schedule}  (negative coefficient: the\n"
          f"descent runs towards larger i, so partitions run backwards)\n")

    hmm = composition_hmm()
    decoder = PosteriorDecoder(hmm)
    seq = Sequence("aattaattaatt" + "ggccggccggcc" + "ttaattaa", DNA)
    result = decoder.decode(seq)

    print(f"sequence   : {seq.text}")
    path = result.state_path()
    condensed = "".join("A" if s == "at_rich" else "G" for s in path)
    print(f"decoded    : {condensed}")
    print(f"P(x)       : {result.likelihood:.3e}")
    print(f"P(AT @ 3)  : {result.probability_of('at_rich', 3):.3f}")
    print(f"P(GC @ 18) : {result.probability_of('gc_rich', 18):.3f}")
    print(f"device time: {result.seconds * 1e6:.1f} us "
          f"(forward + backward, modelled)")


if __name__ == "__main__":
    main()
