#!/usr/bin/env python3
"""Profile-HMM database search (the paper's Section 6.3 case study).

A ten-position profile (the "TK model" of Figure 14) is searched
against a synthetic protein database. A sequence sampled from the
profile is planted in the database and should rank first. The Fig. 14
comparator set (HMMoC, HMMeR 2, GPU-HMMeR, HMMeR 3) is priced on the
same workload.

Run:  python examples/profile_search.py
"""

import random

from repro.apps.baselines import (
    GpuHmmerBaseline,
    Hmmer2Baseline,
    Hmmer3Baseline,
    HmmocBaseline,
)
from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.ir.kernel import build_kernel
from repro.runtime.sequences import random_database
from repro.runtime.values import PROTEIN, Sequence
from repro.schedule.schedule import Schedule


def sample_member(profile, seed: int = 5) -> Sequence:
    """Emit one sequence from the profile's match states."""
    rng = random.Random(seed)
    chars = []
    for k in range(1, 11):
        emissions = dict(profile.state(f"M{k}").emissions)
        chars.append(
            rng.choices(list(emissions),
                        weights=list(emissions.values()))[0]
        )
    return Sequence("".join(chars), PROTEIN, name="planted-member")


def main() -> None:
    profile = tk_model()
    search = ProfileSearch(profile)
    print(f"profile: {profile.name}, {profile.n_states} states "
          f"(10 match positions)")

    database = random_database(30, 10, seed=3, spread=0.1)
    member = sample_member(profile)
    full_db = list(database) + [member]

    ranked = search.rank(full_db, top=5)
    print("\ntop database hits:")
    for seq in ranked:
        print(f"  {seq.name:>16}  "
              f"logP={__import__('math').log(max(search.likelihood(seq), 1e-300)):8.2f}")
    assert ranked[0].name == "planted-member"
    print("\nplanted family member ranks first: ok")

    # Figure 14's tool set, priced on a paper-scale workload.
    kernel = build_kernel(search.func, Schedule.of(s=0, i=1), "logspace")
    lengths = [400] * 20000
    print("\nFigure-14-style comparison (20,000 sequences x 400aa, "
          "modelled):")
    rows = [
        ("HMMoC 1.3 (CPU)",
         HmmocBaseline(kernel).seconds(profile, lengths)),
        ("HMMeR 2.0 (CPU)",
         Hmmer2Baseline(kernel).seconds(profile, lengths)),
        ("GPU-HMMeR",
         GpuHmmerBaseline(kernel).seconds(profile, lengths)),
        ("HMMeR 3.0 (--max)",
         Hmmer3Baseline(kernel).seconds(profile, lengths)),
    ]
    from repro.analysis.domain import Domain
    from repro.gpu.spec import GTX480
    from repro.gpu.timing import kernel_cost

    per = kernel_cost(
        kernel, Domain.of(s=profile.n_states, i=401), GTX480,
        mean_degree=profile.mean_in_degree(),
    ).seconds
    rows.insert(2, ("ours (synthesised)", per * 20000 / GTX480.sm_count))
    for name, seconds in rows:
        print(f"  {name:<20} {seconds:8.3f} s")


if __name__ == "__main__":
    main()
