#!/usr/bin/env python3
"""Quickstart: synthesise a GPU program from a recursive equation.

Write the edit-distance recursion the way a paper would (Figure 7 of
Cartey et al., PLDI 2012), and let the library do the rest: dependence
analysis, schedule search, polyhedral code generation, and execution
on the simulated device.

Run:  python examples/quickstart.py
"""

from repro import Engine, Sequence, check_function, parse_function
from repro.runtime import ENGLISH

SOURCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def main() -> None:
    # 1. Parse and type-check the recursion.
    func = check_function(parse_function(SOURCE.strip()),
                          {"en": ENGLISH.chars})
    print(f"function      : {func.name}")
    print(f"dimensions    : {func.dim_names}")

    # 2. Run it. The engine derives the schedule automatically, builds
    #    the CLooG-style loop nest, compiles a kernel and executes it
    #    on the simulated GTX-480-class device.
    engine = Engine()
    result = engine.run(
        func,
        {"s": Sequence("kitten", ENGLISH),
         "t": Sequence("sitting", ENGLISH)},
    )
    print(f"schedule      : {result.schedule}   (derived, not given)")
    print(f"partitions    : {result.cost.partitions}")
    print(f"edit distance : {result.value}")
    print(f"device time   : {result.seconds * 1e6:.1f} us (modelled)")

    # 3. Inspect the synthesised CUDA kernel (Figure 10's template).
    compiled = engine.compile(func, result.schedule)
    print("\n--- synthesised CUDA kernel " + "-" * 30)
    print(compiled.cuda_source())

    # 4. The whole DP table is available too.
    print("\nDP table (rows = i, cols = j):")
    print(result.table)


if __name__ == "__main__":
    main()
