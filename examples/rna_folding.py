#!/usr/bin/env python3
"""RNA secondary-structure prediction — the looping-extension case
study (paper Sections 5 and 9).

Nussinov's base-pair maximisation needs a bounded reduction over a
*range* of split points — exactly the "new looping expression" kind of
extension Section 5 describes. The analysis handles the bifurcation's
range binder as an affine constraint and derives the interval
wavefront schedule ``S = j - i`` automatically.

Run:  python examples/rna_folding.py
"""

import random

from repro.apps.rna_folding import (
    RNA,
    RnaFolding,
    nussinov_reference,
    nussinov_source,
)
from repro.runtime.values import Sequence


def main() -> None:
    print("--- the DSL source " + "-" * 40)
    print(nussinov_source())

    folder = RnaFolding()
    rng = random.Random(7)
    sequences = [
        Sequence("gggaaaccc", RNA, name="hairpin"),
        Sequence("ggcgcaaagcgcc", RNA, name="stem-loop"),
        Sequence("".join(rng.choices("acgu", k=24)), RNA, name="random"),
    ]

    for seq in sequences:
        result = folder.fold(seq)
        reference = int(nussinov_reference(seq)[0, len(seq)])
        marker = "ok" if result.score == reference else "MISMATCH"
        print(f"{seq.name:>10}  {seq.text}")
        print(f"{'':>10}  {result.structure}   "
              f"({result.score} pairs) [{marker}]")

    run = folder.fold(sequences[1]).run
    print(f"\nderived schedule : {run.schedule} "
          f"(compute short spans before long ones)")
    print(f"partitions       : {run.cost.partitions}")
    print(f"device time      : {run.seconds * 1e6:.1f} us (modelled)")


if __name__ == "__main__":
    main()
