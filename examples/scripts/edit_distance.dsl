// The paper's running example (Figure 7): edit distance.
// Run:  python -m repro examples/scripts/edit_distance.dsl --time
alphabet en = "abcdefghijklmnopqrstuvwxyz"

int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1

let q = "kitten"
let r = "sitting"
print d(q, |q|, r, |r|)
print d(q, |q|, q, |q|)
