// Figure 11: the forward algorithm in the HMM extension (Section 5.2).
// Run:  python -m repro examples/scripts/forward.dsl --prob-mode logspace
alphabet dna = "acgt"

hmm cpg [dna] {
  state begin : start
  state island emits { a: 0.15, c: 0.35, g: 0.35, t: 0.15 }
  state sea    emits { a: 0.30, c: 0.20, g: 0.20, t: 0.30 }
  state finish : end
  trans begin -> island : 0.5
  trans begin -> sea    : 0.5
  trans island -> island : 0.85
  trans island -> sea    : 0.10
  trans island -> finish : 0.05
  trans sea -> sea    : 0.85
  trans sea -> island : 0.10
  trans sea -> finish : 0.05
}

prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then
    (if s.isstart then 1.0 else 0.0)
  else
    (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))

let x = "cgcgcgatatatcgcg"
print forward(cpg, cpg.end, x, |x|)
