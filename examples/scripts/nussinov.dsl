// Nussinov RNA folding through the script path: the Section 5
// looping extension (bounded range reductions) end to end.
// Run:  python -m repro examples/scripts/nussinov.dsl --time
alphabet rna = "acgu"

int nuss(seq[rna] x, index[x] i, index[x] j) =
  if j < i + 2 then 0
  else (
    nuss(i+1, j)
    max nuss(i, j-1)
    max (nuss(i+1, j-1) +
         (if x[i] == 'a' then (if x[j-1] == 'u' then 1 else 0)
          else if x[i] == 'u' then
            (if x[j-1] == 'a' then 1 else (if x[j-1] == 'g' then 1 else 0))
          else if x[i] == 'c' then (if x[j-1] == 'g' then 1 else 0)
          else (if x[j-1] == 'c' then 1 else (if x[j-1] == 'u' then 1 else 0))))
    max max(k in i+1 .. j-1 : nuss(i, k) + nuss(k, j))
  )

let hairpin = "gggaaaccc"
print nuss(hairpin, 0, |hairpin|)

let stem = "ggcgcaaagcgcc"
print nuss(stem, 0, |stem|)
