// Smith-Waterman with the substitution-matrix extension (Section 5.1).
// Run:  python -m repro examples/scripts/smith_waterman.dsl --time --cuda
alphabet dna = "acgt"

matrix score[dna, dna] {
  header a c g t
  row a :  2 -1 -1 -1
  row c : -1  2 -1 -1
  row g : -1 -1  2 -1
  row t : -1 -1 -1  2
}

int sw(matrix[dna, dna] m, seq[dna] q, index[q] i,
       seq[dna] d, index[d] j) =
  if i == 0 then 0
  else if j == 0 then 0
  else 0 max (sw(i-1, j-1) + m[q[i-1], d[j-1]])
         max (sw(i-1, j) - 2)
         max (sw(i, j-1) - 2)

// The paper's Section 4.5 user-schedule path: verified, not searched.
schedule sw : i + j

let a = "acgtacgtta"
let b = "ttacgtaacg"
print sw(score, a, |a|, b, |b|)
