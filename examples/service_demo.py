#!/usr/bin/env python3
"""The batch service, end to end: 120 concurrent clients, one device.

Demonstrates the acceptance scenario for ``repro.service``:

1. 120 edit-distance problems submitted concurrently to a 4-worker
   ``ComputeService`` complete with a mean batch size well above 1 —
   the batcher coalesced them into a handful of ``map`` launches —
   and every value is bitwise-identical to a serial ``Engine.run``.
2. A second service started on the same cache directory answers
   without compiling anything: the persistent kernel cache made the
   schedule search and code generation a one-time cost.

Run:  python examples/service_demo.py
"""

import tempfile
import threading

from repro import Engine, Sequence, check_function, parse_function
from repro.runtime import ENGLISH
from repro.service import ComputeService

PROGRAM = """
alphabet en = "abcdefghijklmnopqrstuvwxyz"
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

WORDS = [
    "kitten", "mitten", "sitting", "sitten", "bitten", "written",
    "smitten", "knitting", "siting", "kit", "kith", "knit",
]


def main() -> None:
    problems = [(w, WORDS[(i + 5) % len(WORDS)])
                for i, w in enumerate(WORDS * 10)]
    print(f"problems      : {len(problems)} (concurrent submissions)")

    # The serial baseline the service must match bitwise.
    func_src = PROGRAM.strip().split("\n", 1)[1]
    func = check_function(parse_function(func_src),
                          {"en": ENGLISH.chars})
    engine = Engine()
    serial = [
        engine.run(func, {"s": Sequence(s, ENGLISH),
                          "t": Sequence(t, ENGLISH)}).value
        for s, t in problems
    ]

    with tempfile.TemporaryDirectory() as cache_dir:
        # -- phase 1: cold cache, concurrent clients ---------------
        with ComputeService(
            workers=4, batch_window=0.05, max_batch=64,
            cache_dir=cache_dir,
        ) as service:
            handles = [None] * len(problems)

            def submit(index, s, t):
                handles[index] = service.submit(
                    PROGRAM, "d", {"s": s, "t": t}
                )

            threads = [
                threading.Thread(target=submit, args=(i, s, t))
                for i, (s, t) in enumerate(problems)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            values = [h.result(timeout=60) for h in handles]
            stats = service.stats()

        assert values == serial, "batched results diverged from serial"
        print(f"batches       : {stats.batches} "
              f"(mean size {stats.mean_batch_size:.1f}, "
              f"max {stats.max_batch_size})")
        print(f"compiles      : {stats.cache_misses} "
              f"(hit rate {stats.cache_hit_rate:.0%})")
        print(f"latency       : p50 {stats.p50_latency_seconds * 1e3:.1f} ms, "
              f"p95 {stats.p95_latency_seconds * 1e3:.1f} ms")
        print("determinism   : all values bitwise-equal to Engine.run")

        # -- phase 2: new service, warm disk cache -----------------
        with ComputeService(
            workers=1, batch_window=0.01, cache_dir=cache_dir
        ) as warm:
            value = warm.submit(
                PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            ).result(timeout=30)
            warm_stats = warm.stats()

        assert warm_stats.cache_misses == 0, "warm start recompiled"
        print(f"\nwarm restart  : value {value}, "
              f"{warm_stats.cache_misses} compiles, "
              f"{warm_stats.cache_disk_hits} disk hit(s)")
        print("\nfull statistics from phase 1:")
        print(stats.render())


if __name__ == "__main__":
    main()
