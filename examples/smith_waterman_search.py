#!/usr/bin/env python3
"""Smith-Waterman database search (the paper's Section 6.1 case study).

A protein query is scored against a synthetic database with BLOSUM62.
Every database sequence is one problem on one simulated multiprocessor
(the ``map`` primitive); the derived parallelisation is the
anti-diagonal ``S = i + j``. The scores are validated against an
independent NumPy implementation, and the CUDASW++/ssearch baselines
are priced on the same workload.

Run:  python examples/smith_waterman_search.py
"""

from repro.apps.baselines import (
    CudaSWHybrid,
    CudaSWInter,
    CudaSWIntra,
    SSearchBaseline,
    sw_score,
)
from repro.apps.smith_waterman import SmithWaterman
from repro.ir.kernel import build_kernel
from repro.runtime.sequences import random_database, random_protein


def main() -> None:
    sw = SmithWaterman()
    query = random_protein(48, seed=7, name="query")
    database = random_database(40, 120, seed=11)

    print(f"query    : {query.name} ({len(query)} residues)")
    print(f"database : {len(database)} sequences, "
          f"{sum(len(s) for s in database)} residues\n")

    hits = sw.hits(query, database, top=5)
    print("top hits (validated against the NumPy reference):")
    row_index = sw.matrix.row_alphabet.index_table()
    col_index = sw.matrix.col_alphabet.index_table()
    for hit in hits:
        reference = sw_score(
            query, hit.target, sw.matrix.scores,
            row_index, col_index, sw.gap,
        )
        marker = "ok" if reference == hit.score else "MISMATCH"
        print(f"  {hit.target.name:>6}  score {hit.score:>4}  [{marker}]")

    result = sw.search(query, database)
    print(f"\nsimulated GPU search time : {result.seconds * 1e3:.3f} ms")
    print(f"schedules used            : {result.schedule_usage}")

    # Price the paper's comparators on the same workload, reusing the
    # schedule the tool derived (the anti-diagonal).
    from repro.schedule.schedule import Schedule

    lengths = [len(s) for s in database]
    coefficients = next(iter(result.schedule_usage))
    kernel = build_kernel(
        sw.func, Schedule(sw.func.dim_names, coefficients)
    )
    intra = CudaSWIntra(kernel)
    print("\nbaselines on this workload (modelled):")
    print(f"  ssearch (1 CPU core)  : "
          f"{SSearchBaseline().seconds(len(query), lengths) * 1e3:.3f} ms")
    print(f"  CUDASW++ intra-task   : "
          f"{intra.seconds(len(query), lengths) * 1e3:.3f} ms")
    print(f"  CUDASW++ inter-task   : "
          f"{CudaSWInter().seconds(len(query), lengths) * 1e3:.3f} ms")
    print(f"  CUDASW++ hybrid       : "
          f"{CudaSWHybrid(intra).seconds(len(query), lengths) * 1e3:.3f} ms")




if __name__ == "__main__":
    main()
