"""repro: synthesising graphics card programs from DSLs.

A complete reproduction of Cartey, Lyngsø & de Moor (PLDI 2012): a
small DSL for recursive (dynamic-programming) problems, automatic
schedule derivation via dependence criteria and a CSP, CLooG-style
polyhedral loop generation, domain extensions (substitution matrices,
HMMs), and synthesis of massively-parallel programs — executed and
priced on a simulated CUDA-class device (see DESIGN.md).

Quickstart::

    from repro import Engine, check_function, parse_function, Sequence
    from repro.runtime import ENGLISH

    src = '''int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
      if i == 0 then j else if j == 0 then i
      else if s[i-1] == t[j-1] then d(i-1, j-1)
      else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1'''
    func = check_function(parse_function(src), {"en": ENGLISH.chars})
    result = Engine().run(func, {"s": Sequence("kitten", ENGLISH),
                                 "t": Sequence("sitting", ENGLISH)})
    assert result.value == 3
"""

from .lang import (
    CheckedFunction,
    CheckedProgram,
    DslError,
    check_function,
    check_program,
    parse_expr,
    parse_function,
    parse_program,
)
from .analysis import Domain
from .runtime import Engine, Sequence, Alphabet, Bindings
from .runtime.program import ProgramRunner, ScriptResult, run_script
from .schedule import Schedule, find_schedule

__version__ = "1.0.0"

__all__ = [
    "CheckedFunction",
    "CheckedProgram",
    "DslError",
    "check_function",
    "check_program",
    "parse_expr",
    "parse_function",
    "parse_program",
    "Domain",
    "Engine",
    "Sequence",
    "Alphabet",
    "Bindings",
    "ProgramRunner",
    "ScriptResult",
    "run_script",
    "Schedule",
    "find_schedule",
    "__version__",
]
