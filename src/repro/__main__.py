"""Command-line entry point: run DSL scripts.

Usage::

    python -m repro script.dsl            # run a script
    python -m repro script.dsl --time     # also print simulated times
    python -m repro script.dsl --cuda     # dump synthesised CUDA
    python -m repro --demo                # run the built-in demo

The runtime environment mirrors the paper's (Section 3): a script
declares alphabets/matrices/models/functions and then drives them with
``let``/``load``/``print``/``map`` statements.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .lang.errors import DslError
from .lang.source import SourceText
from .runtime.engine import Engine
from .runtime.program import ProgramRunner

DEMO = """\
alphabet en = "abcdefghijklmnopqrstuvwxyz"

int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1

let q = "kitten"
let r = "sitting"
print d(q, |q|, r, |r|)
"""


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Synthesise and run GPU programs from recursion "
        "DSL scripts (Cartey et al., PLDI 2012 — simulated device).",
    )
    parser.add_argument(
        "script", nargs="?", help="path to a .dsl script"
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run the built-in edit-distance demo",
    )
    parser.add_argument(
        "--time", action="store_true",
        help="print the simulated device time of each run",
    )
    parser.add_argument(
        "--cuda", action="store_true",
        help="dump the synthesised CUDA kernel(s) after the run",
    )
    parser.add_argument(
        "--prob-mode", choices=("direct", "logspace"),
        default="direct", help="probability representation",
    )
    args = parser.parse_args(argv)

    if args.demo:
        text = DEMO
        name = "<demo>"
    elif args.script:
        path = Path(args.script)
        if not path.exists():
            parser.error(f"no such script: {path}")
        text = path.read_text()
        name = str(path)
    else:
        parser.error("pass a script path or --demo")
        return 2  # unreachable; keeps type-checkers happy

    engine = Engine(prob_mode=args.prob_mode)
    runner = ProgramRunner(engine, echo=True)
    try:
        result = runner.run_text(text)
    except DslError as err:
        print(err.render(SourceText(text, name)), file=sys.stderr)
        return 1

    if args.time:
        for run in result.runs:
            print(
                f"# {run.kernel.name}: {run.schedule}, "
                f"{run.cost.partitions} partitions, "
                f"{run.seconds * 1e6:.1f} us simulated",
                file=sys.stderr,
            )
        for name_, mapped in result.maps.items():
            print(
                f"# map {name_}: {mapped.report.problems} problems, "
                f"{mapped.seconds * 1e3:.3f} ms simulated, "
                f"SM utilisation "
                f"{mapped.report.sm_utilisation:.0%}",
                file=sys.stderr,
            )
    if args.cuda:
        for compiled in engine._cache.values():
            print(compiled.cuda_source(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
