"""Command-line entry point: run DSL scripts, serve, submit.

Usage::

    python -m repro script.dsl            # run a script
    python -m repro script.dsl --time     # also print simulated times
    python -m repro script.dsl --cuda     # dump synthesised CUDA
    python -m repro --demo                # run the built-in demo

    python -m repro explain prog.dsl      # backend eligibility per function
    python -m repro explain prog.dsl --json   # machine-readable verdicts
    python -m repro lint prog.dsl         # static verification + lint
    python -m repro fuzz --seed 0 --count 200   # differential fuzzing

    python -m repro serve --port 8753 --workers 4 --cache-dir .kcache
    python -m repro submit --port 8753 --program prog.dsl \\
        --function d --args '{"s": "kitten", "t": "sitting"}'
    python -m repro submit --port 8753 --stats

The runtime environment mirrors the paper's (Section 3): a script
declares alphabets/matrices/models/functions and then drives them with
``let``/``load``/``print``/``map`` statements. ``serve`` instead runs
the batch compile-and-execute service of :mod:`repro.service`
(persistent kernel cache, admission-controlled job queue, request
coalescing into batched ``map`` runs); ``submit`` is its client.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .lang.errors import DslError
from .lang.source import SourceText
from .runtime.engine import Engine
from .runtime.program import ProgramRunner

DEMO = """\
alphabet en = "abcdefghijklmnopqrstuvwxyz"

int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1

let q = "kitten"
let r = "sitting"
print d(q, |q|, r, |r|)
"""


def serve_main(argv) -> int:
    """``python -m repro serve``: run the batch compute service."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve DSL compile-and-execute jobs over HTTP "
        "(persistent kernel cache, batched map execution).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8753)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker threads (one engine each)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=1024,
        help="bounded submission queue size (admission control)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01,
        help="seconds to wait for coalescible requests",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a batch at this many jobs",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the persistent kernel cache "
        "(omit for in-memory only)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=256,
        help="in-memory kernel cache entries (LRU bound)",
    )
    parser.add_argument(
        "--prob-mode", choices=("direct", "logspace"), default="direct",
    )
    parser.add_argument(
        "--backend", choices=("auto", "scalar", "vector", "native"),
        default="auto",
    )
    parser.add_argument(
        "--schedule", choices=("min-partition", "autotune"),
        default="min-partition",
        help="schedule selection: the Section 4.6 partition-minimal "
        "solver, or the cost-model-guided autotuner (winners are "
        "persisted per size bucket in the kernel cache)",
    )
    parser.add_argument(
        "--chaos-rate", type=float, default=0.0,
        help="inject launch failures / transfer truncations at this "
        "rate (supervised recovery; for soak testing)",
    )
    parser.add_argument(
        "--chaos-corrupt", type=float, default=0.0,
        help="per-cell corruption rate for injected memory faults",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the deterministic fault injector",
    )
    parser.add_argument(
        "--chaos-kill", type=float, default=0.0,
        help="per-launch probability of SIGKILLing the sandbox "
        "worker subprocess (requires --sandbox)",
    )
    parser.add_argument(
        "--chaos-hang", type=float, default=0.0,
        help="per-launch probability of hanging the sandbox worker "
        "past its deadline (requires --sandbox)",
    )
    parser.add_argument(
        "--sandbox", action="store_true",
        help="run native kernels in crash-isolated worker "
        "subprocesses (a segfault kills the worker, not the service)",
    )
    args = parser.parse_args(argv)

    from .service.server import (
        ComputeService,
        install_signal_handlers,
        make_http_server,
    )

    fault_plan = None
    if (
        args.chaos_rate > 0.0
        or args.chaos_corrupt > 0.0
        or args.chaos_kill > 0.0
        or args.chaos_hang > 0.0
    ):
        from .resilience import FaultPlan

        fault_plan = FaultPlan(
            seed=args.chaos_seed,
            launch_fail_rate=args.chaos_rate,
            truncate_rate=args.chaos_rate,
            corrupt_rate=args.chaos_corrupt,
            corrupt_mode="bitflip",
            worker_kill_rate=args.chaos_kill,
            sandbox_hang_rate=args.chaos_hang,
        )

    service = ComputeService(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        cache_dir=args.cache_dir,
        cache_capacity=args.cache_capacity,
        prob_mode=args.prob_mode,
        backend=args.backend,
        schedule=args.schedule,
        fault_plan=fault_plan,
        sandbox_native=True if args.sandbox else None,
    )
    server = make_http_server(service, args.host, args.port)
    install_signal_handlers(server, service)
    host, port = server.server_address[:2]
    print(
        f"repro service on http://{host}:{port} "
        f"({args.workers} workers, cache="
        f"{args.cache_dir or 'memory-only'}"
        f"{', sandboxed native' if args.sandbox else ''})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
    finally:
        server.shutdown()
        service.shutdown(drain=True)
        print(service.stats().render(), file=sys.stderr)
    return 0


def explain_main(argv) -> int:
    """``python -m repro explain``: report backend eligibility.

    For every function of a program (or one, with ``--function``),
    derive a schedule, build the kernel and print which backend the
    auto ladder (native > vector > scalar) would pick plus the
    machine-readable eligibility verdicts — the same rule identifiers
    a forced ``Engine.compile(backend=...)`` raises on and
    ``CompiledKernel.eligibility`` / ``.native_eligibility`` carry.
    When a C toolchain is present the native kernel is actually
    built, so the reported compile time is measured, not estimated.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Explain, per function, which backend the auto "
        "ladder picks and why (eligibility rules + detail; native "
        "compile times when a C toolchain is present).",
    )
    parser.add_argument("script", help="path to a .dsl program")
    parser.add_argument(
        "--function", default=None,
        help="explain only this function",
    )
    parser.add_argument(
        "--prob-mode", choices=("direct", "logspace"),
        default="direct",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable eligibility verdicts and "
        "certificate summaries instead of text",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="also run the cost-model-guided schedule autotuner and "
        "report the chosen vs default schedule with predicted costs",
    )
    parser.add_argument(
        "--extent", type=int, default=None, metavar="N",
        help="with --autotune: stand-in extent for the unknown "
        "problem size (default 256; the winner is size-dependent)",
    )
    args = parser.parse_args(argv)
    if args.extent is not None and not args.autotune:
        parser.error("--extent requires --autotune")

    path = Path(args.script)
    if not path.exists():
        parser.error(f"no such script: {path}")
    text = path.read_text()

    from .analysis.domain import Domain
    from .ir import npbackend
    from .ir.kernel import build_kernel
    from .lang.errors import ScheduleError
    from .lang.parser import parse_program
    from .lang.typecheck import check_program
    from .schedule.multi import derive_schedule_set
    from .schedule.solver import find_schedule
    from .verify import verify_schedule

    try:
        program = check_program(parse_program(text))
    except DslError as err:
        print(err.render(SourceText(text, str(path))), file=sys.stderr)
        return 1
    if args.function:
        if args.function not in program.functions:
            parser.error(f"no function {args.function!r} in {path}")
        names = [args.function]
    else:
        names = sorted(program.functions)

    def emit(line: str) -> None:
        if not args.json:
            print(line)

    records = []
    failures = 0
    for name in names:
        func = program.functions[name]
        record = {"function": name}
        records.append(record)
        if not func.recursive_params:
            record["status"] = "not-a-recurrence"
            emit(f"{name}: not a recurrence (nothing to schedule)")
            continue
        try:
            schedule = derive_schedule_set(func).schedules[0]
        except (ScheduleError, DslError):
            # Non-uniform descents need the runtime search; a nominal
            # domain stands in for the unknown problem extents.
            nominal = Domain(
                func.dim_names,
                tuple(16 for _ in func.recursive_params),
            )
            try:
                schedule = find_schedule(func, nominal)
            except (ScheduleError, DslError) as err:
                record["status"] = "no-schedule"
                record["error"] = str(err)
                emit(f"{name}: no schedule ({err})")
                failures += 1
                continue
        kernel = build_kernel(func, schedule, args.prob_mode)
        from .verify.races import parallelism_certificate

        parallel = parallelism_certificate(kernel)
        record["parallel"] = parallel.to_dict()
        verdict = npbackend.eligibility(kernel)
        from .ir.cbackend import native_eligibility
        from .runtime import native as native_rt

        available = native_rt.available()
        native = native_eligibility(kernel)
        if available.ok and native.ok:
            backend = "native"
        elif verdict.ok:
            backend = "vector"
        else:
            backend = "scalar"
        record.update(
            status="ok",
            backend=backend,
            schedule=str(schedule),
            vector={
                "ok": verdict.ok,
                "rule": verdict.rule,
                "detail": verdict.detail,
            },
            native_toolchain={
                "ok": available.ok,
                "rule": available.rule,
                "detail": available.detail,
            },
            native={
                "ok": native.ok,
                "rule": native.rule,
                "detail": native.detail,
            },
        )
        from .runtime.batching import batched_native_eligibility

        batched = batched_native_eligibility(kernel)
        record["batched_native"] = {
            "ok": batched.ok,
            "rule": batched.rule,
            "detail": batched.detail,
        }
        emit(f"{name}: backend={backend} rule={verdict.rule} "
             f"schedule={schedule}")
        emit(f"  vector: [{verdict.rule}] {verdict.detail}")
        if not available.ok:
            emit(f"  native: [{available.rule}] {available.detail}")
            emit(f"  batched-native: [{batched.rule}] {batched.detail}")
        elif not native.ok:
            emit(f"  native: [{native.rule}] {native.detail}")
            emit(f"  batched-native: [{batched.rule}] {batched.detail}")
        else:
            import time as _time

            from .lang.errors import NativeBuildError

            started = _time.perf_counter()
            try:
                _run, _source, so_path = native_rt.compile_native(
                    kernel
                )
            except NativeBuildError as err:
                record["native_build"] = {
                    "ok": False, "error": str(err),
                }
                emit(f"  native: [build-failed] {err}")
                emit(f"  batched-native: [{batched.rule}] "
                     f"{batched.detail}")
            else:
                elapsed = _time.perf_counter() - started
                record["native_build"] = {
                    "ok": True, "seconds": elapsed,
                }
                emit(f"  native: [{native.rule}] {native.detail} "
                     f"(compiled in {elapsed * 1e3:.0f} ms)")
                # The batched entry point lives in the same
                # translation unit; prove it loads (the map path's
                # rung is only real if the symbol resolves).
                if batched.ok:
                    loaded = _time.perf_counter()
                    try:
                        native_rt.load_batched(kernel, so_path)
                    except NativeBuildError as err:
                        record["batched_native"]["ok"] = False
                        record["batched_native"]["error"] = str(err)
                        emit(f"  batched-native: [load-failed] {err}")
                    else:
                        load_ms = _time.perf_counter() - loaded
                        record["batched_native"]["seconds"] = elapsed
                        record["batched_native"]["load_seconds"] = (
                            load_ms
                        )
                        emit(
                            f"  batched-native: [{batched.rule}] "
                            f"{batched.detail} (same module, "
                            f"compiled in {elapsed * 1e3:.0f} ms)"
                        )
                else:
                    emit(f"  batched-native: [{batched.rule}] "
                         f"{batched.detail}")
        emit(f"  parallel: {parallel.summary}")
        if args.autotune:
            from .lang.errors import AnalysisError
            from .schedule.autotune import autotune_schedule

            extent = args.extent or 256
            tune_domain = Domain(
                func.dim_names,
                tuple(extent for _ in func.recursive_params),
            )
            try:
                tuned = autotune_schedule(
                    func, tune_domain, prob_mode=args.prob_mode
                )
            except (AnalysisError, DslError) as err:
                record["autotune"] = {"error": str(err)}
                emit(f"  autotune: failed ({err})")
            else:
                record["autotune"] = {
                    "extent": extent,
                    "chosen": tuned.schedule.to_json(),
                    "default": tuned.default.to_json(),
                    "improved": tuned.improved,
                    "predicted_cycles": tuned.predicted.cycles,
                    "default_predicted_cycles": (
                        tuned.default_predicted.cycles
                    ),
                    "predicted_speedup": tuned.predicted_speedup,
                    "enumerated": tuned.stats.enumerated,
                    "pruned": tuned.stats.pruned,
                    "search_seconds": tuned.stats.search_seconds,
                }
                if tuned.improved:
                    emit(
                        f"  autotune (extent {extent}): "
                        f"{tuned.schedule} beats default "
                        f"{tuned.default} — predicted "
                        f"{tuned.predicted.cycles:.3g} vs "
                        f"{tuned.default_predicted.cycles:.3g} "
                        f"cycles "
                        f"({tuned.predicted_speedup:.2f}x)"
                    )
                else:
                    emit(
                        f"  autotune (extent {extent}): default "
                        f"{tuned.default} confirmed optimal "
                        f"(predicted "
                        f"{tuned.predicted.cycles:.3g} cycles; "
                        f"{tuned.stats.enumerated} candidates, "
                        f"{tuned.stats.pruned} pruned)"
                    )
        try:
            certificate, _diags = verify_schedule(
                func,
                schedule,
                Domain(
                    func.dim_names,
                    tuple(16 for _ in func.recursive_params),
                ),
            )
        except DslError:
            record["verification"] = None
            emit("  verification: not applicable "
                 "(outside the single-function verifier's scope)")
        else:
            record["verification"] = {
                "ok": certificate.ok,
                "summary": certificate.summary,
            }
            emit(f"  verification: {certificate.summary}")
            if not certificate.ok:
                failures += 1
    if args.json:
        import json as _json

        print(_json.dumps(
            {"script": str(path), "functions": records}, indent=2
        ))
    return 1 if failures else 0


def fuzz_main(argv) -> int:
    """``python -m repro fuzz``: grammar-driven differential fuzzing.

    Draws seeded well-typed programs from the DSL grammar, runs each
    on every backend rung (plus the sanitizer, lint, the divergence
    oracle and the lane-batched map path), shrinks any failure to a
    minimal reproducer and prints a deterministic report. Exit code 1
    when any finding survives.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Fuzz the compiler: generate well-typed DSL "
        "programs, run them differentially across scalar/vector/"
        "native (and batched map groups), shrink failures to minimal "
        "reproducers.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (same seed + count = same report)",
    )
    parser.add_argument(
        "--count", type=int, default=200,
        help="number of programs to generate",
    )
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock cutoff (a budget-limited run may stop "
        "early and is exempt from the determinism promise)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without delta-debugging them",
    )
    parser.add_argument(
        "--no-native", action="store_true",
        help="skip the native leg even when a toolchain is present",
    )
    parser.add_argument(
        "--write-corpus", default=None, metavar="DIR",
        help="write shrunk failures as corpus entries into DIR "
        "(e.g. tests/corpus)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="also round-trip locally-clean cases through a live "
        "HTTP service instance (service-crash / service-divergence "
        "findings)",
    )
    parser.add_argument(
        "--chaos-rate", type=float, default=0.0, metavar="RATE",
        help="with --service: inject sandbox worker kills/hangs and "
        "launch faults at this rate (the service must still answer "
        "correctly)",
    )
    args = parser.parse_args(argv)

    if args.chaos_rate > 0.0 and not args.service:
        parser.error("--chaos-rate requires --service")

    from .fuzz import run_campaign

    report = run_campaign(
        seed=args.seed,
        count=args.count,
        budget_seconds=args.budget,
        shrink_failures=not args.no_shrink,
        use_native=False if args.no_native else None,
        corpus_directory=args.write_corpus,
        service_mode=args.service,
        chaos_rate=args.chaos_rate,
    )
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


def lint_main(argv) -> int:
    """``python -m repro lint``: static verification of a script.

    Runs the independent schedule-soundness verifier and the IR
    access/initialization analysis over every recurrence (nominal
    domain extents; user ``schedule`` declarations are honoured).
    Exit code 1 when any error-severity diagnostic fires, or 2 with
    ``--strict`` when warnings do.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Statically verify schedules and table accesses "
        "of a DSL script (caret diagnostics, stable rule ids).",
    )
    parser.add_argument(
        "script", nargs="?", default=None,
        help="path to a .dsl program",
    )
    parser.add_argument(
        "--nominal-extent", type=int, default=None,
        help="stand-in extent L for the unknown problem size "
        "(dimensions get extent L+1; default 12)",
    )
    parser.add_argument(
        "--prob-mode", choices=("direct", "logspace"),
        default="direct",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 2) on warnings",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress info-severity diagnostics",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every stable rule id with its severity and "
        "description, then exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        from .verify.diagnostics import RULES

        width = max(len(name) for name in RULES)
        try:
            for name, (severity, description) in RULES.items():
                print(f"{name:<{width}}  {severity:<8} {description}")
        except BrokenPipeError:
            # piped through `head`; the reader got what it wanted
            sys.stderr.close()
        return 0

    if args.script is None:
        parser.error("a script path is required (or --list-rules)")
    path = Path(args.script)
    if not path.exists():
        parser.error(f"no such script: {path}")

    from .verify import lint_text
    from .verify.diagnostics import Severity

    kwargs = {"prob_mode": args.prob_mode}
    if args.nominal_extent is not None:
        kwargs["nominal_extent"] = args.nominal_extent
    result = lint_text(path.read_text(), str(path), **kwargs)

    shown = 0
    for diagnostic in result.report:
        if args.quiet and diagnostic.severity == Severity.INFO:
            continue
        stream = (
            sys.stderr
            if diagnostic.severity == Severity.ERROR
            else sys.stdout
        )
        print(diagnostic.render(result.source), file=stream)
        shown += 1
    errors = len(result.report.by_severity(Severity.ERROR))
    warnings = len(result.report.by_severity(Severity.WARNING))
    print(
        f"{path}: {errors} error(s), {warnings} warning(s), "
        f"{len(result.certificates)} schedule(s) verified",
        file=sys.stderr,
    )
    if errors:
        return 1
    if args.strict and warnings:
        return 2
    return 0


def submit_main(argv) -> int:
    """``python -m repro submit``: client for a running service."""
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit jobs to (or read stats from) a running "
        "`python -m repro serve` instance.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8753)
    parser.add_argument(
        "--program", help="path to a declaration-only .dsl program"
    )
    parser.add_argument("--function", help="function to run")
    parser.add_argument(
        "--args", default="{}",
        help='JSON arguments, e.g. \'{"s": "kitten", "t": "sitting"}\'',
    )
    parser.add_argument(
        "--count", type=int, default=1,
        help="submit this many concurrent copies (exercises batching)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-job timeout in seconds",
    )
    parser.add_argument(
        "--reduce", choices=("max", "min"), default=None,
        help="whole-table reduction instead of a coordinate",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the service stats snapshot and exit",
    )
    args = parser.parse_args(argv)

    import json as _json

    from .service.server import fetch_remote_stats, submit_remote
    from .service.stats import ServiceStats

    if args.stats:
        try:
            snapshot = fetch_remote_stats(args.host, args.port)
        except OSError as err:
            print(f"error: cannot reach service at "
                  f"{args.host}:{args.port} ({err})", file=sys.stderr)
            return 1
        snapshot.pop("_status", None)
        print(ServiceStats(**snapshot).render())
        return 0

    if not args.program or not args.function:
        parser.error("--program and --function are required "
                     "(or use --stats)")
    program = Path(args.program).read_text()
    try:
        call_args = _json.loads(args.args)
    except _json.JSONDecodeError as err:
        parser.error(f"--args is not valid JSON: {err}")

    import concurrent.futures

    def one(_index: int):
        try:
            return submit_remote(
                args.host, args.port, program, args.function,
                args=call_args, timeout=args.timeout,
                reduce=args.reduce,
            )
        except OSError as err:
            return {"ok": False, "error": f"cannot reach service at "
                                          f"{args.host}:{args.port} "
                                          f"({err})"}

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=min(args.count, 64)
    ) as pool:
        for reply in pool.map(one, range(args.count)):
            if reply.get("ok"):
                print(reply["value"])
            else:
                failures += 1
                print(f"error: {reply.get('error')}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return submit_main(argv[1:])
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Synthesise and run GPU programs from recursion "
        "DSL scripts (Cartey et al., PLDI 2012 — simulated device).",
    )
    parser.add_argument(
        "script", nargs="?", help="path to a .dsl script"
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run the built-in edit-distance demo",
    )
    parser.add_argument(
        "--time", action="store_true",
        help="print the simulated device time of each run",
    )
    parser.add_argument(
        "--cuda", action="store_true",
        help="dump the synthesised CUDA kernel(s) after the run",
    )
    parser.add_argument(
        "--prob-mode", choices=("direct", "logspace"),
        default="direct", help="probability representation",
    )
    args = parser.parse_args(argv)

    if args.demo:
        text = DEMO
        name = "<demo>"
    elif args.script:
        path = Path(args.script)
        if not path.exists():
            parser.error(f"no such script: {path}")
        text = path.read_text()
        name = str(path)
    else:
        parser.error("pass a script path or --demo")
        return 2  # unreachable; keeps type-checkers happy

    engine = Engine(prob_mode=args.prob_mode)
    runner = ProgramRunner(engine, echo=True)
    try:
        result = runner.run_text(text)
    except DslError as err:
        print(err.render(SourceText(text, name)), file=sys.stderr)
        return 1

    if args.time:
        for run in result.runs:
            print(
                f"# {run.kernel.name}: {run.schedule}, "
                f"{run.cost.partitions} partitions, "
                f"{run.seconds * 1e6:.1f} us simulated",
                file=sys.stderr,
            )
        for name_, mapped in result.maps.items():
            print(
                f"# map {name_}: {mapped.report.problems} problems, "
                f"{mapped.seconds * 1e3:.3f} ms simulated, "
                f"SM utilisation "
                f"{mapped.report.sm_utilisation:.0%}",
                file=sys.stderr,
            )
    if args.cuda:
        for compiled in engine._cache.values():
            print(compiled.cuda_source(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
