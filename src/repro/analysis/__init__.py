"""Dependency analysis: affine maps, descents, domains, criteria."""

from .affine import Affine, affine_from_expr, vector_to_affine
from .callgraph import call_graph, group_of, recursive_groups
from .cross import CrossDescent, extract_cross_descents
from .criteria import Criterion, schedule_criteria
from .descent import Component, DescentFunction, extract_descents
from .domain import Domain

__all__ = [
    "Affine",
    "call_graph",
    "group_of",
    "recursive_groups",
    "CrossDescent",
    "extract_cross_descents",
    "affine_from_expr",
    "vector_to_affine",
    "Criterion",
    "schedule_criteria",
    "Component",
    "DescentFunction",
    "extract_descents",
    "Domain",
]
