"""Affine functions over named dimensions.

Both schedules and descent functions are restricted to affine integer
functions of the recursive parameters (Sections 4.2 and 4.4) — this is
what keeps the analysis tractable and the generated code efficient.
This module provides the shared representation, plus abstract
evaluation of DSL expressions into affine form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.errors import AnalysisError


@dataclass(frozen=True)
class Affine:
    """An affine integer function ``sum_k coeffs[k] * k + const``.

    ``coeffs`` is stored as a sorted tuple of ``(dim, coefficient)``
    pairs with zero coefficients dropped, so equal functions compare
    equal.
    """

    coeffs: Tuple[Tuple[str, int], ...]
    const: int = 0

    @staticmethod
    def of(mapping: Mapping[str, int], const: int = 0) -> "Affine":
        """Build from a dim->coefficient mapping plus constant."""
        items = tuple(
            sorted((d, c) for d, c in mapping.items() if c != 0)
        )
        return Affine(items, const)

    @staticmethod
    def constant(value: int) -> "Affine":
        """The constant affine function ``value``."""
        return Affine((), value)

    @staticmethod
    def variable(name: str) -> "Affine":
        """The identity function of one dimension."""
        return Affine(((name, 1),), 0)

    @property
    def is_constant(self) -> bool:
        """True when no dimension has a non-zero coefficient."""
        return not self.coeffs

    def as_dict(self) -> Dict[str, int]:
        """The coefficients as a plain dict (zeros absent)."""
        return dict(self.coeffs)

    def coefficient(self, dim: str) -> int:
        """The coefficient of ``dim`` (0 when absent)."""
        return self.as_dict().get(dim, 0)

    def dims(self) -> Tuple[str, ...]:
        """The dimensions with non-zero coefficients, sorted."""
        return tuple(d for d, _ in self.coeffs)

    def __add__(self, other: "Affine") -> "Affine":
        merged = self.as_dict()
        for dim, coeff in other.coeffs:
            merged[dim] = merged.get(dim, 0) + coeff
        return Affine.of(merged, self.const + other.const)

    def __neg__(self) -> "Affine":
        return Affine(
            tuple((d, -c) for d, c in self.coeffs), -self.const
        )

    def __sub__(self, other: "Affine") -> "Affine":
        return self + (-other)

    def scale(self, factor: int) -> "Affine":
        """Multiply every coefficient and the constant by ``factor``."""
        if factor == 0:
            return Affine.constant(0)
        return Affine(
            tuple((d, c * factor) for d, c in self.coeffs),
            self.const * factor,
        )

    def evaluate(self, values: Mapping[str, int]) -> int:
        """The value at a concrete point."""
        total = self.const
        for dim, coeff in self.coeffs:
            total += coeff * values[dim]
        return total

    def substitute(self, bindings: Mapping[str, "Affine"]) -> "Affine":
        """Replace each dimension with an affine expression."""
        result = Affine.constant(self.const)
        for dim, coeff in self.coeffs:
            replacement = bindings.get(dim, Affine.variable(dim))
            result = result + replacement.scale(coeff)
        return result

    def min_over_box(self, extents: Mapping[str, int]) -> int:
        """Minimum over the box ``0 <= dim < extents[dim]``.

        An affine function attains its extrema at box corners; each
        term is minimised independently (Section 4.6's observation).
        """
        total = self.const
        for dim, coeff in self.coeffs:
            top = extents[dim] - 1
            total += min(0, coeff * top)
        return total

    def max_over_box(self, extents: Mapping[str, int]) -> int:
        """Maximum over the box ``0 <= dim < extents[dim]``."""
        total = self.const
        for dim, coeff in self.coeffs:
            top = extents[dim] - 1
            total += max(0, coeff * top)
        return total

    def __str__(self) -> str:
        parts = []
        for dim, coeff in self.coeffs:
            if coeff == 1:
                parts.append(dim)
            elif coeff == -1:
                parts.append(f"-{dim}")
            else:
                parts.append(f"{coeff}*{dim}")
        if self.const or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def vector_to_affine(
    dims: Sequence[str], coefficients: Sequence[int], const: int = 0
) -> Affine:
    """Build an affine function from a coefficient vector over ``dims``."""
    if len(dims) != len(coefficients):
        raise ValueError("dims and coefficients must have equal length")
    return Affine.of(dict(zip(dims, coefficients)), const)


def affine_from_expr(
    expr: ast.Expr,
    dims: Iterable[str],
    free_vars: Iterable[str] = (),
) -> Optional[Affine]:
    """Abstractly evaluate ``expr`` to an affine function of ``dims``.

    Returns ``None`` when the expression is not affine (a product of
    two dimensions, a table lookup, a reference to a ``free_vars``
    binder...). Non-affine is not an error here — the caller decides
    whether to reject (schedules) or treat as *free* (descent through
    HMM fields, Section 5.2).
    """
    dim_set = frozenset(dims)
    free_set = frozenset(free_vars)

    def go(node: ast.Expr) -> Optional[Affine]:
        if isinstance(node, ast.IntLit):
            return Affine.constant(node.value)
        if isinstance(node, ast.Var):
            if node.name in dim_set:
                return Affine.variable(node.name)
            if node.name in free_set:
                return None
            raise AnalysisError(
                f"variable {node.name!r} is not a recursion dimension; "
                f"descent and schedule expressions may only use "
                f"{sorted(dim_set)}",
                node.span,
            )
        if isinstance(node, ast.BinOp):
            if node.op == ast.BinOpKind.ADD:
                left, right = go(node.left), go(node.right)
                if left is None or right is None:
                    return None
                return left + right
            if node.op == ast.BinOpKind.SUB:
                left, right = go(node.left), go(node.right)
                if left is None or right is None:
                    return None
                return left - right
            if node.op == ast.BinOpKind.MUL:
                left, right = go(node.left), go(node.right)
                if left is None or right is None:
                    return None
                if left.is_constant:
                    return right.scale(left.const)
                if right.is_constant:
                    return left.scale(right.const)
                return None
            return None
        return None

    return go(expr)
