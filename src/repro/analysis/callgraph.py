"""Call graphs over program functions.

Identifies the recursive groups of a checked program: a function on
its own (self-recursion — the paper's base case) or a strongly
connected component of mutually recursive functions (the Section 9
extension, scheduled by :mod:`repro.schedule.mutual_rec`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import networkx as nx

from ..lang import ast
from ..lang.typecheck import CheckedFunction, CheckedProgram


def call_graph(
    functions: Mapping[str, CheckedFunction]
) -> "nx.DiGraph":
    """Edges ``caller -> callee`` over the given functions."""
    graph = nx.DiGraph()
    graph.add_nodes_from(functions)
    for name, func in functions.items():
        for node in ast.walk(func.body):
            if isinstance(node, ast.Call) and node.func in functions:
                graph.add_edge(name, node.func)
    return graph


def recursive_groups(
    functions: Mapping[str, CheckedFunction]
) -> List[Tuple[str, ...]]:
    """The recursive components, in reverse-topological order.

    Singleton components without a self-loop (non-recursive functions)
    are excluded; singletons with a self-loop are ordinary recursions;
    larger components are mutual groups.
    """
    graph = call_graph(functions)
    groups: List[Tuple[str, ...]] = []
    for component in nx.strongly_connected_components(graph):
        names = tuple(sorted(component))
        if len(names) > 1 or graph.has_edge(names[0], names[0]):
            groups.append(names)
    # Reverse topological order of the condensation: callees first.
    condensation = nx.condensation(graph)
    order: Dict[frozenset, int] = {}
    for position, node in enumerate(
        nx.topological_sort(condensation)
    ):
        members = frozenset(condensation.nodes[node]["members"])
        order[members] = position
    groups.sort(key=lambda g: -order.get(frozenset(g), 0))
    return groups


def is_mutual_group(
    functions: Mapping[str, CheckedFunction], names: Tuple[str, ...]
) -> bool:
    """Is this recursive group larger than one function?"""
    return len(names) > 1


def group_of(
    checked: CheckedProgram, name: str
) -> Tuple[str, ...]:
    """The recursive group containing ``name`` (possibly singleton)."""
    for group in recursive_groups(checked.functions):
        if name in group:
            return group
    return (name,)
