"""Validity criteria on schedules (Section 4.5).

A schedule ``S_f`` is valid iff for every call site with descent
``r``: ``S_f(x) - S_f(r(x)) > 0`` for all ``x`` in the domain. With
``S_f = a . x`` this becomes

    ``a1*(x1 - r1(x)) + ... + an*(xn - rn(x)) > 0  for all x``

Each call site yields one :class:`Criterion`. For uniform descents
(``r_k = x_k + c_k``) the left-hand side is the constant
``sum(-a_k * c_k)`` and the criterion is domain-independent; general
affine or free components need the runtime extents (Section 4.5/4.9).

Range-reduction descents (Section 5's looping extension) add binder
variables ``lo(x) <= k <= hi(x)``: the delta is affine in ``(x, k)``,
so it is minimised by pinning each binder to one of its (affine)
bounds and minimising the resulting affine functions over the box,
subject to the ranges being non-empty — a small linear program.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..lang.errors import ScheduleError
from ..lang.typecheck import CheckedFunction
from .affine import Affine
from .descent import DescentFunction, extract_descents


def min_affine_over_box(
    affine: Affine,
    extents: Mapping[str, int],
    constraints: Sequence[Affine] = (),
) -> Optional[float]:
    """``min affine(x)`` over the box, subject to ``c(x) >= 0``.

    Returns ``None`` when the constrained region is empty (a vacuous
    criterion) — including the degenerate boxes: any dimension the
    function (or a constraint) mentions with extent < 1 makes the box
    itself empty. A single-point dimension (extent 1) pins its
    coordinate at 0 and is handled by the ordinary corner formula.
    Without constraints this is the exact corner formula; with
    constraints it is the LP-relaxation minimum — a safe lower bound
    for the integer minimum (the criterion only needs a positive lower
    bound).
    """
    names = sorted(
        set(affine.dims()).union(
            *[set(c.dims()) for c in constraints]
        )
    )
    if any(extents[d] < 1 for d in names if d in extents):
        return None
    if not constraints:
        return float(affine.min_over_box(extents))

    from scipy.optimize import linprog
    if not names:
        for con in constraints:
            if con.const < 0:
                return None
        return float(affine.const)
    objective = [affine.coefficient(d) for d in names]
    a_ub = [[-con.coefficient(d) for d in names] for con in constraints]
    b_ub = [float(con.const) for con in constraints]
    bounds = [(0.0, float(extents[d] - 1)) for d in names]
    result = linprog(
        objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
    )
    if result.status == 2:  # infeasible: the ranges are never entered
        return None
    if not result.success:
        raise ScheduleError(
            f"could not minimise {affine} over the constrained box: "
            f"{result.message}"
        )
    return float(result.fun) + affine.const


@dataclass(frozen=True)
class Criterion:
    """The schedule condition contributed by one recursive call site.

    ``delta(a) = S(x) - S(r(x))`` decomposes into an affine part (over
    the dimensions and any range binders) plus free terms whose worst
    case is ``-|a_k| * (N_k - 1)``.
    """

    dims: Tuple[str, ...]
    descent: DescentFunction

    @property
    def is_uniform(self) -> bool:
        """Are all of the descent's components uniform?"""
        return self.descent.is_uniform

    @property
    def requires_extents(self) -> bool:
        """Does evaluating this criterion need the runtime box?"""
        return not self.is_uniform

    def delta_affine(self, coeffs: Mapping[str, int]) -> Affine:
        """The affine part of ``S(x) - S(r(x))`` for schedule ``a``.

        May mention range-binder names as extra variables; free
        components are handled separately (:meth:`min_delta`).
        """
        total = Affine.constant(0)
        for comp in self.descent.components:
            a_k = coeffs.get(comp.dim, 0)
            if a_k == 0:
                continue
            if comp.is_free:
                continue  # handled by _free_minimum
            assert comp.affine is not None
            difference = Affine.variable(comp.dim) - comp.affine
            total = total + difference.scale(a_k)
        return total

    def _free_minimum(
        self, coeffs: Mapping[str, int], extents: Optional[Mapping[str, int]]
    ) -> int:
        total = 0
        for comp in self.descent.components:
            if not comp.is_free:
                continue
            a_k = coeffs.get(comp.dim, 0)
            if a_k == 0:
                continue
            if extents is None:
                raise ScheduleError(
                    f"criterion for call {self.descent.call} has a free "
                    f"component in dimension {comp.dim!r}; validity needs "
                    f"the runtime extents (or a zero coefficient)"
                )
            # x_k - fresh, both in 0..N_k-1: worst case -(N_k - 1),
            # scaled by |a_k| whatever the sign of a_k.
            total -= abs(a_k) * (extents[comp.dim] - 1)
        return total

    def _binder_candidates(
        self, delta: Affine
    ) -> Tuple[List[Affine], List[Affine]]:
        """Pin every used binder to its bounds.

        Returns the candidate delta functions (one per assignment of
        binders to {lo, hi}) and the non-emptiness constraints
        ``hi - lo >= 0``; an affine function of a binder is extremised
        at one of its ends, so the true minimum is among the
        candidates.
        """
        used = [
            b for b in self.descent.binders
            if delta.coefficient(b.name) != 0
        ]
        constraints = [b.hi - b.lo for b in self.descent.binders]
        if not used:
            return [delta], constraints
        candidates: List[Affine] = []
        for ends in itertools.product((0, 1), repeat=len(used)):
            substitution = {
                b.name: (b.lo if end == 0 else b.hi)
                for b, end in zip(used, ends)
            }
            candidates.append(delta.substitute(substitution))
        return candidates, constraints

    def min_delta(
        self,
        coeffs: Mapping[str, int],
        extents: Optional[Mapping[str, int]] = None,
    ) -> float:
        """``min over x of S(x) - S(r(x))``; needs extents unless uniform."""
        delta = self.delta_affine(coeffs)
        free_part = self._free_minimum(coeffs, extents)
        if delta.is_constant and not self.descent.binders:
            return delta.const + free_part
        if extents is None:
            raise ScheduleError(
                f"criterion for call {self.descent.call} is not "
                f"uniform; validity needs the runtime extents"
            )
        candidates, constraints = self._binder_candidates(delta)
        minima = [
            min_affine_over_box(candidate, extents, constraints)
            for candidate in candidates
        ]
        feasible = [m for m in minima if m is not None]
        if not feasible:
            # The reduction range is empty everywhere: the dependence
            # never materialises.
            return math.inf
        return min(feasible) + free_part

    def is_satisfied(
        self,
        coeffs: Mapping[str, int],
        extents: Optional[Mapping[str, int]] = None,
    ) -> bool:
        """Does schedule ``coeffs`` satisfy this criterion?"""
        return self.min_delta(coeffs, extents) > 0

    def __str__(self) -> str:
        terms = []
        for comp in self.descent.components:
            if comp.is_free:
                terms.append(f"a_{comp.dim}*({comp.dim} - *)")
            else:
                assert comp.affine is not None
                diff = Affine.variable(comp.dim) - comp.affine
                if diff.is_constant and diff.const == 0:
                    continue
                terms.append(f"a_{comp.dim}*({diff})")
        body = " + ".join(terms) if terms else "0"
        text = f"{body} > 0"
        if self.descent.binders:
            text += " for " + ", ".join(
                str(b) for b in self.descent.binders
            )
        return text


def schedule_criteria(func: CheckedFunction) -> Tuple[Criterion, ...]:
    """One criterion per recursive call site of ``func``."""
    dims = func.dim_names
    return tuple(
        Criterion(dims, descent) for descent in extract_descents(func)
    )
