"""Cross-function descent extraction (the Section 9 extension).

For every call site in a mutual group, the descent maps the *caller's*
dimensions onto the *callee's* argument tuple. Components reuse the
single-function classification machinery, except that "uniform" is
only meaningful positionally (same dimension passed through with a
constant offset is still just an affine component here — the mutual
criteria always work with the runtime extents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Set, Tuple

from ..lang import ast
from ..lang.errors import AnalysisError
from ..lang.typecheck import CheckedFunction
from .affine import affine_from_expr
from .descent import (
    BinderBound,
    Component,
    _binders_in_scope,
    _mentions_untracked,
    _resolve_binder_bounds,
)


@dataclass(frozen=True)
class CrossDescent:
    """One call site ``caller -> callee`` with its argument map.

    ``components[k]`` describes the callee's ``k``-th dimension as a
    function of the caller's dimensions (plus any range binders).
    """

    caller: str
    callee: str
    call: ast.Call
    callee_dims: Tuple[str, ...]
    components: Tuple[Component, ...]
    binders: Tuple[BinderBound, ...] = ()

    def __str__(self) -> str:
        parts = "; ".join(
            f"{dim} <- {'*' if comp.is_free else comp.affine}"
            for dim, comp in zip(self.callee_dims, self.components)
        )
        text = f"{self.caller} -> {self.callee}: {parts}"
        if self.binders:
            text += " where " + ", ".join(str(b) for b in self.binders)
        return text


def extract_cross_descents(
    func: CheckedFunction,
    signatures: Mapping[str, CheckedFunction],
) -> Tuple[CrossDescent, ...]:
    """All descents of ``func``, including calls to other functions."""
    caller_dims = func.dim_names
    descents: List[CrossDescent] = []
    for node in ast.walk(func.body):
        if not isinstance(node, ast.Call):
            continue
        if node.func not in signatures:
            raise AnalysisError(
                f"{func.name!r} calls unknown function {node.func!r}",
                node.span,
            )
        callee = signatures[node.func]
        opaque, range_reduces = _binders_in_scope(func, node)
        binder_bounds = _resolve_binder_bounds(
            caller_dims, range_reduces, opaque
        )
        range_names = {b.name for b in binder_bounds}
        components: List[Component] = []
        used: Set[str] = set()
        for callee_dim, arg in zip(callee.dim_names, node.args):
            component = _classify_cross(
                callee_dim, arg, caller_dims, opaque, range_names
            )
            components.append(component)
            if component.affine is not None:
                used.update(
                    d for d in component.affine.dims()
                    if d in range_names
                )
        descents.append(
            CrossDescent(
                func.name,
                callee.name,
                node,
                callee.dim_names,
                tuple(components),
                tuple(b for b in binder_bounds if b.name in used),
            )
        )
    return tuple(descents)


def _classify_cross(
    callee_dim: str,
    arg: ast.Expr,
    caller_dims: Tuple[str, ...],
    opaque: Set[str],
    range_names: Set[str],
) -> Component:
    if _mentions_untracked(arg, opaque):
        return Component(callee_dim, "free")
    affine = affine_from_expr(
        arg, tuple(caller_dims) + tuple(range_names), free_vars=opaque
    )
    if affine is None:
        raise AnalysisError(
            f"recursive argument for dimension {callee_dim!r} is not "
            f"an affine function of the caller's dimensions: {arg}",
            arg.span,
        )
    if any(d in range_names for d in affine.dims()):
        return Component(callee_dim, "ranged", affine)
    return Component(callee_dim, "affine", affine)
