"""Descent-function extraction (Section 4.4).

For a function ``f(x1, ..., xn)``, every recursive call site
``f(xr1, ..., xrn)`` defines one *descent function*: the affine map
taking the current arguments to the callee's arguments. Each component
is classified as

* **uniform** — ``x_k + c`` (the common case, e.g. ``d(i-1, j)``);
* **affine** — a general affine combination ``b . x + c`` (e.g.
  ``f(2*i - j)``); validity then depends on the runtime ranges;
* **ranged** — affine over the dimensions *and* the binders of
  enclosing range reductions (Section 5's looping extension, e.g.
  ``max(k in i+1 .. j-1 : f(i, k))``); the binder's affine bounds
  become constraints on the validity criterion;
* **free** — a value the static analysis cannot track, which is
  assumed to range over the whole dimension (Section 5.2's treatment
  of ``forward(t.start, i-1)``: ``t.start`` may be any state).

Transition-set reductions bind opaque values, so any argument
mentioning such a binder (or reaching through an HMM field or a data
lookup) is free. Range reductions bind tracked integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..lang import ast
from ..lang.errors import AnalysisError
from ..lang.typecheck import CheckedFunction
from .affine import Affine, affine_from_expr


@dataclass(frozen=True)
class Component:
    """One dimension of a descent function.

    ``affine`` is set for uniform/affine/ranged components (for
    ranged ones it mentions binder names as extra variables); ``None``
    for free components.
    """

    dim: str
    kind: str  # "uniform" | "affine" | "ranged" | "free"
    affine: Optional[Affine] = None

    @property
    def is_uniform(self) -> bool:
        """Is this component of the form ``x_k + c``?"""
        return self.kind == "uniform"

    @property
    def is_free(self) -> bool:
        """Is this component untracked (assumed full-range)?"""
        return self.kind == "free"

    @property
    def is_ranged(self) -> bool:
        """Does this component mention a range binder?"""
        return self.kind == "ranged"

    @property
    def uniform_offset(self) -> int:
        """The ``c`` of a uniform component ``x_k + c``."""
        if not self.is_uniform:
            raise ValueError(f"component {self.dim} is not uniform")
        assert self.affine is not None
        return self.affine.const

    def __str__(self) -> str:
        if self.is_free:
            return f"{self.dim} <- *"
        return f"{self.dim} <- {self.affine}"


@dataclass(frozen=True)
class BinderBound:
    """A range binder in scope at a call site: ``lo <= name <= hi``.

    Both bounds are affine in the recursion dimensions (bounds that
    mention other binders or non-affine terms are rejected — the
    criterion derivation needs dimension-only constraints).
    """

    name: str
    lo: Affine
    hi: Affine

    def __str__(self) -> str:
        return f"{self.lo} <= {self.name} <= {self.hi}"


@dataclass(frozen=True)
class DescentFunction:
    """The descent map of one recursive call site."""

    call: ast.Call
    components: Tuple[Component, ...]
    binders: Tuple[BinderBound, ...] = ()

    @property
    def is_uniform(self) -> bool:
        """Are all components uniform? (Required by Sections 4.7/4.8.)"""
        return all(c.is_uniform for c in self.components)

    @property
    def has_free(self) -> bool:
        """Does any component escape static tracking?"""
        return any(c.is_free for c in self.components)

    @property
    def has_ranged(self) -> bool:
        """Does any component use a range binder?"""
        return any(c.is_ranged for c in self.components)

    def component(self, dim: str) -> Component:
        """The component for dimension ``dim``."""
        for comp in self.components:
            if comp.dim == dim:
                return comp
        raise KeyError(dim)

    def binder(self, name: str) -> BinderBound:
        """The bound record of range binder ``name``."""
        for bound in self.binders:
            if bound.name == name:
                return bound
        raise KeyError(name)

    def uniform_offsets(self) -> Tuple[int, ...]:
        """The offset vector ``c`` of a fully uniform descent."""
        return tuple(c.uniform_offset for c in self.components)

    def __str__(self) -> str:
        text = "; ".join(str(c) for c in self.components)
        if self.binders:
            text += " where " + ", ".join(str(b) for b in self.binders)
        return text


def _binders_in_scope(
    func: CheckedFunction, call: ast.Call
) -> Tuple[Set[str], List[ast.Reduce]]:
    """Binders enclosing ``call``: opaque (HMM) names and range nodes."""
    opaque: Set[str] = set()
    ranges: List[ast.Reduce] = []

    def visit(expr: ast.Expr, hmm_scope, range_scope) -> bool:
        if expr is call:
            opaque.update(hmm_scope)
            ranges.extend(range_scope)
            return True
        if isinstance(expr, ast.Reduce):
            if visit(expr.source, hmm_scope, range_scope):
                return True
            if isinstance(expr.source, ast.RangeExpr):
                return visit(
                    expr.body, hmm_scope, range_scope + [expr]
                )
            return visit(expr.body, hmm_scope + [expr.var], range_scope)
        return any(
            visit(c, hmm_scope, range_scope)
            for c in ast.children(expr)
        )

    visit(func.body, [], [])
    return opaque, ranges


def extract_descents(func: CheckedFunction) -> Tuple[DescentFunction, ...]:
    """All descent functions of ``func``, one per recursive call site.

    No branch analysis is performed: every textual call site
    contributes a dependence, whatever conditionals guard it
    (Section 4.4).
    """
    dims = func.dim_names
    for node in ast.walk(func.body):
        if isinstance(node, ast.Call) and node.func != func.name:
            raise AnalysisError(
                f"{func.name!r} calls {node.func!r}: the single-function "
                f"pipeline only handles self-recursion — schedule the "
                f"group with repro.schedule.mutual_rec (Section 9)",
                node.span,
            )
    descents: List[DescentFunction] = []
    for call in ast.find_calls(func.body, func.name):
        opaque, range_reduces = _binders_in_scope(func, call)
        binder_bounds = _resolve_binder_bounds(
            dims, range_reduces, opaque
        )
        range_names = {b.name for b in binder_bounds}
        components: List[Component] = []
        used_binders: Set[str] = set()
        for dim, arg in zip(dims, call.args):
            component = _classify(
                dim, arg, dims, opaque, range_names
            )
            components.append(component)
            if component.affine is not None:
                used_binders.update(
                    d for d in component.affine.dims()
                    if d in range_names
                )
        relevant = tuple(
            b for b in binder_bounds if b.name in used_binders
        )
        descents.append(
            DescentFunction(call, tuple(components), relevant)
        )
    return tuple(descents)


def _resolve_binder_bounds(
    dims: Tuple[str, ...],
    range_reduces: List[ast.Reduce],
    opaque: Set[str],
) -> Tuple[BinderBound, ...]:
    bounds: List[BinderBound] = []
    for reduce_expr in range_reduces:
        source = reduce_expr.source
        assert isinstance(source, ast.RangeExpr)
        lo = affine_from_expr(source.lo, dims, free_vars=opaque)
        hi = affine_from_expr(source.hi, dims, free_vars=opaque)
        if lo is None or hi is None:
            raise AnalysisError(
                f"range bounds of binder {reduce_expr.var!r} must be "
                f"affine in the recursion dimensions",
                source.span,
            )
        bounds.append(BinderBound(reduce_expr.var, lo, hi))
    return tuple(bounds)


def _classify(
    dim: str,
    arg: ast.Expr,
    dims: Tuple[str, ...],
    opaque: Set[str],
    range_names: Set[str],
) -> Component:
    if _mentions_untracked(arg, opaque):
        # e.g. forward(t.start, ...): the analysis assumes the value
        # ranges over the whole dimension (Section 5.2).
        return Component(dim, "free")
    affine = affine_from_expr(
        arg, tuple(dims) + tuple(range_names), free_vars=opaque
    )
    if affine is None:
        raise AnalysisError(
            f"recursive argument for dimension {dim!r} is not an affine "
            f"function of the recursion dimensions: {arg} "
            f"(Section 4.9: only affine descent functions are supported)",
            arg.span,
        )
    used_ranges = [d for d in affine.dims() if d in range_names]
    if used_ranges:
        return Component(dim, "ranged", affine)
    own = affine.coefficient(dim)
    others = [d for d, c in affine.coeffs if d != dim and c != 0]
    if own == 1 and not others:
        return Component(dim, "uniform", affine)
    return Component(dim, "affine", affine)


def _mentions_untracked(expr: ast.Expr, opaque: Set[str]) -> bool:
    """Does ``expr`` reach through an opaque binder, an HMM field or a
    data-dependent lookup?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Var) and node.name in opaque:
            return True
        if isinstance(node, (ast.Field, ast.Emission, ast.Reduce)):
            return True
        if isinstance(node, (ast.SeqIndex, ast.MatrixIndex)):
            # A data-dependent value: cannot be tracked statically.
            return True
    return False
