"""The recursion domain: a finite integer box.

Every recursive type maps its values onto ``0..N-1`` (Section 3.2), so
the domain of a recursion over dims ``x1..xn`` is the box
``0 <= x_k < N_k``. Extents are only known at run time (sequence
lengths, initial integer values, state counts); the compile-time
analyses either receive a concrete :class:`Domain` or work
symbolically (Section 4.7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple


@dataclass(frozen=True)
class Domain:
    """A box domain ``0 <= dims[k] < extents[k]``."""

    dims: Tuple[str, ...]
    extents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.extents):
            raise ValueError("dims and extents must have equal length")
        for dim, extent in zip(self.dims, self.extents):
            if extent < 1:
                raise ValueError(
                    f"dimension {dim!r} has empty extent {extent}"
                )

    @staticmethod
    def of(**extents: int) -> "Domain":
        """Build a domain from keyword extents (insertion ordered)."""
        return Domain(tuple(extents), tuple(extents.values()))

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    @property
    def size(self) -> int:
        """Total number of cells in the box."""
        total = 1
        for extent in self.extents:
            total *= extent
        return total

    def extent_map(self) -> Dict[str, int]:
        """Dimension name -> extent, as a dict."""
        return dict(zip(self.dims, self.extents))

    def extent(self, dim: str) -> int:
        """The extent of one dimension."""
        return self.extent_map()[dim]

    def points(self) -> Iterator[Tuple[int, ...]]:
        """Enumerate all points, lexicographically. For small domains."""
        return itertools.product(*(range(e) for e in self.extents))

    def contains(self, point: Mapping[str, int]) -> bool:
        """Is the named point inside the box?"""
        for dim, extent in zip(self.dims, self.extents):
            value = point[dim]
            if not 0 <= value < extent:
                return False
        return True

    def contains_tuple(self, point: Tuple[int, ...]) -> bool:
        """Is the positional point inside the box?"""
        return all(
            0 <= value < extent
            for value, extent in zip(point, self.extents)
        )

    def __str__(self) -> str:
        parts = (
            f"0 <= {d} < {e}" for d, e in zip(self.dims, self.extents)
        )
        return "{ " + ", ".join(parts) + " }"
