"""The paper's case-study applications (Section 6)."""

from .gene_finder import GeneFinder, build_gene_finder_hmm
from .hmm_algorithms import (
    backward_function,
    forward_function,
    viterbi_function,
)
from .gotoh import GotohAligner, gotoh_reference
from .posterior import PosteriorDecoder
from .rna_grammar import GRAMMAR_SOURCE, RnaGrammar
from .viterbi_decode import ViterbiDecoder
from .rna_folding import (
    RnaFolding,
    nussinov_function,
    nussinov_reference,
    nussinov_source,
)
from .profile_hmm import (
    ProfileSearch,
    build_profile_hmm,
    random_profile,
    tk_model,
)
from .smith_waterman import (
    SmithWaterman,
    smith_waterman_function,
    smith_waterman_source,
)

__all__ = [
    "GeneFinder",
    "build_gene_finder_hmm",
    "backward_function",
    "forward_function",
    "viterbi_function",
    "ProfileSearch",
    "build_profile_hmm",
    "random_profile",
    "tk_model",
    "SmithWaterman",
    "smith_waterman_function",
    "smith_waterman_source",
    "RnaFolding",
    "PosteriorDecoder",
    "GotohAligner",
    "gotoh_reference",
    "ViterbiDecoder",
    "RnaGrammar",
    "GRAMMAR_SOURCE",
    "nussinov_function",
    "nussinov_reference",
    "nussinov_source",
]
