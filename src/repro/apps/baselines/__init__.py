"""Reimplemented comparators from the paper's evaluation."""

from .cudasw import (
    CudaSWHybrid,
    CudaSWInter,
    CudaSWIntra,
    HYBRID_LENGTH_THRESHOLD,
)
from .hmm_tools import (
    GpuHmmerBaseline,
    Hmmer2Baseline,
    Hmmer3Baseline,
    HmmocBaseline,
    forward_reference,
)
from .ssearch import SSearchBaseline, sw_score, sw_table

__all__ = [
    "CudaSWHybrid",
    "CudaSWInter",
    "CudaSWIntra",
    "HYBRID_LENGTH_THRESHOLD",
    "GpuHmmerBaseline",
    "Hmmer2Baseline",
    "Hmmer3Baseline",
    "HmmocBaseline",
    "forward_reference",
    "SSearchBaseline",
    "sw_score",
    "sw_table",
]
