"""CUDASW++ 2.0 baselines (Section 6.1).

CUDASW++ provides two parallelisation methods:

* **intra-task** — parallel anti-diagonals across the table, "in the
  same way as our recursion": one problem per multiprocessor, threads
  cooperate on a diagonal. Modelled with the same partition-based
  device costing as synthesised kernels, scaled by a hand-tuning
  factor (a production kernel is a bit leaner per cell than
  machine-generated code).
* **inter-task** — one database sequence per thread; all threads of a
  warp step their own DP tables cell by cell, so a warp's runtime is
  its *longest* member (divergence). CUDASW++ sorts the database by
  length to keep warps uniform.

Best performance is a **hybrid**: short sequences inter-task, long
sequences intra-task, split at a length threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from ...analysis.domain import Domain
from ...gpu.device import greedy_makespan
from ...gpu.spec import DeviceSpec, GTX480
from ...gpu.timing import kernel_cost
from ...ir.kernel import Kernel

#: Hand-tuning advantage of the production intra-task kernel over
#: machine-synthesised code (register blocking, fused ops).
INTRA_TUNING_FACTOR = 0.85

#: Effective cycles per cell per thread for the inter-task kernel
#: (per-thread DP rows in local memory; virtualised SIMD abstraction).
INTER_CYCLES_PER_CELL = 10.0

#: CUDASW++ 2.0's default split between inter- and intra-task.
HYBRID_LENGTH_THRESHOLD = 3072


@dataclass
class CudaSWIntra:
    """Intra-task CUDASW++: diagonal-parallel, one problem per SM."""

    kernel: Kernel  # a compiled SW kernel provides the per-cell mix
    spec: DeviceSpec = GTX480
    tuning: float = INTRA_TUNING_FACTOR
    name: str = "CUDASW++ 2.0 (intra-task)"

    def seconds(
        self, query_length: int, db_lengths: Iterable[int]
    ) -> float:
        """Modelled wall-clock of one query-vs-database search."""
        cache = {}
        durations = []
        for length in db_lengths:
            if length not in cache:
                domain = Domain(
                    ("i", "j"), (query_length + 1, length + 1)
                )
                cost = kernel_cost(self.kernel, domain, self.spec)
                cache[length] = cost.seconds * self.tuning
            durations.append(cache[length])
        makespan, _ = greedy_makespan(durations, self.spec.sm_count)
        return makespan + self.spec.launch_overhead_s


@dataclass
class CudaSWInter:
    """Inter-task CUDASW++: one database sequence per thread."""

    spec: DeviceSpec = GTX480
    cycles_per_cell: float = INTER_CYCLES_PER_CELL
    sort_database: bool = True
    name: str = "CUDASW++ 2.0 (inter-task)"

    def seconds(
        self, query_length: int, db_lengths: Iterable[int]
    ) -> float:
        """Modelled wall-clock of one query-vs-database search."""
        lengths: List[int] = list(db_lengths)
        if not lengths:
            return self.spec.launch_overhead_s
        if self.sort_database:
            lengths.sort()
        warp = self.spec.warp_size
        # Warp-wide cost: the longest sequence in each warp gates it.
        warp_cells = [
            max(lengths[k:k + warp]) * query_length
            for k in range(0, len(lengths), warp)
        ]
        total_cycles = sum(warp_cells) * self.cycles_per_cell
        # All SMs' cores chew warps concurrently.
        concurrency = self.spec.sm_count
        return (
            total_cycles / concurrency / self.spec.clock_hz
            + self.spec.launch_overhead_s
        )


@dataclass
class CudaSWHybrid:
    """The hybrid scheduler: short inter-task, long intra-task."""

    intra: CudaSWIntra
    inter: CudaSWInter = field(default_factory=CudaSWInter)
    threshold: int = HYBRID_LENGTH_THRESHOLD
    name: str = "CUDASW++ 2.0 (hybrid)"

    def split(
        self, db_lengths: Iterable[int]
    ) -> Tuple[List[int], List[int]]:
        """Partition database lengths into (short, long) sets."""
        short: List[int] = []
        long: List[int] = []
        for length in db_lengths:
            (short if length < self.threshold else long).append(length)
        return short, long

    def seconds(
        self, query_length: int, db_lengths: Iterable[int]
    ) -> float:
        """Modelled wall-clock of one query-vs-database search."""
        short, long = self.split(db_lengths)
        total = 0.0
        if short:
            total += self.inter.seconds(query_length, short)
        if long:
            total += self.intra.seconds(query_length, long)
        if not short and not long:
            total = self.inter.spec.launch_overhead_s
        return total
