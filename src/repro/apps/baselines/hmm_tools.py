"""HMM tool baselines (Sections 6.2, 6.3).

Four comparators appear in the paper's HMM case studies:

* **HMMoC** — Lunter's HMM compiler: generates plain single-threaded
  C for an arbitrary model. Our generic-code cost model: the kernel's
  own per-cell operation mix priced on one CPU core.
* **HMMeR 2** — fifteen years of hand-tuning for *profile* HMMs
  specifically: same machine, leaner inner loop.
* **GPU-HMMeR** — the GPU port of HMMeR 2 (Walters et al.): task-level
  parallel forward/Viterbi, one sequence per thread, warps gated by
  their longest member.
* **HMMeR 3** — striped SSE vectorisation plus multithreading. The
  paper runs it with the ``--max`` flag (no MSV/Viterbi filtering) for
  a fair full-forward comparison, and it still wins (Section 6.3);
  the optional filter pipeline is modelled too for completeness.

:func:`forward_reference` is an independent NumPy forward
implementation used to validate every functional path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence as Seq

import numpy as np

from ...extensions.hmm import Hmm
from ...gpu.spec import CpuSpec, DeviceSpec, GTX480, XEON_E5520
from ...ir.kernel import Kernel
from ...runtime.values import Sequence


def forward_reference(hmm: Hmm, seq: Sequence) -> float:
    """Forward likelihood by direct NumPy iteration (the oracle).

    Matches Figure 11's recursion: ``F(s, 0)`` is 1 for the start
    state; ``F(s, i) = e_s(x[i-1]) * sum over incoming transitions of
    t.prob * F(t.start, i - 1)``, with the end state silent.
    """
    arrays = hmm.arrays()
    n = hmm.n_states
    length = len(seq)
    symbols = arrays.sym_index[seq.codes]
    previous = arrays.is_start.astype(np.float64)
    for position in range(1, length + 1):
        current = np.zeros(n)
        for state in range(n):
            lo = arrays.in_offsets[state]
            hi = arrays.in_offsets[state + 1]
            ids = arrays.in_ids[lo:hi]
            if len(ids) == 0:
                continue
            incoming = (
                arrays.trans_prob[ids]
                * previous[arrays.trans_source[ids]]
            ).sum()
            if arrays.is_end[state]:
                current[state] = incoming
            else:
                current[state] = (
                    arrays.emissions[state, symbols[position - 1]]
                    * incoming
                )
        previous = current
    return float(previous[hmm.end_state.index])


def _cells(hmm: Hmm, seq_lengths: Iterable[int]) -> float:
    return float(hmm.n_states) * float(
        sum(length + 1 for length in seq_lengths)
    )


def _cpu_cell_cycles(
    kernel: Kernel, spec: CpuSpec, mean_degree: float
) -> float:
    """Per-cell cycles of the kernel's operation mix on a CPU core."""
    totals = kernel.counts.scaled_total(mean_degree)
    return (
        totals["arith"] * spec.arith_cycles
        + totals["compare"] * spec.compare_cycles
        + totals["select"] * spec.select_cycles
        + totals["special"] * spec.special_cycles
        + (
            totals["table_reads"]
            + totals["seq_reads"]
            + totals["matrix_reads"]
            + totals["hmm_reads"]
        )
        * spec.memory_read_cycles
        + spec.memory_write_cycles
        + spec.loop_overhead_cycles
    )


@dataclass
class HmmocBaseline:
    """HMMoC: compiled generic HMM code, one CPU thread."""

    kernel: Kernel
    spec: CpuSpec = XEON_E5520
    #: Generic machine-generated C vs our op-count estimate.
    tool_factor: float = 1.0
    name: str = "HMMoC 1.3 (CPU)"

    def seconds(self, hmm: Hmm, seq_lengths: Iterable[int]) -> float:
        """Modelled wall-clock of scoring ``seq_lengths``."""
        per_cell = _cpu_cell_cycles(
            self.kernel, self.spec, hmm.mean_in_degree()
        )
        cycles = _cells(hmm, seq_lengths) * per_cell * self.tool_factor
        return cycles / self.spec.clock_hz

    def run(self, hmm: Hmm, seqs: Seq[Sequence]) -> List[float]:
        """Functional execution (NumPy reference semantics)."""
        return [forward_reference(hmm, seq) for seq in seqs]


@dataclass
class Hmmer2Baseline(HmmocBaseline):
    """HMMeR 2: profile-specialised, hand-tuned scalar C."""

    tool_factor: float = 0.55
    name: str = "HMMeR 2.0 (CPU)"


@dataclass
class GpuHmmerBaseline:
    """GPU-HMMeR: task-level forward, one sequence per thread."""

    kernel: Kernel
    spec: DeviceSpec = GTX480
    #: Per-thread serial DP keeps its rows in device (global) memory —
    #: the port cannot use the sliding-window shared-memory trick, so
    #: its per-cell cost is global-read bound; that is what puts it
    #: "on par" with the synthesised intra-task kernel (Section 6.3).
    cycles_factor: float = 1.2
    name: str = "GPU-HMMeR (GTX 480)"

    def seconds(self, hmm: Hmm, seq_lengths: Iterable[int]) -> float:
        """Modelled wall-clock of scoring ``seq_lengths``."""
        lengths = sorted(seq_lengths)
        if not lengths:
            return self.spec.launch_overhead_s
        totals = self.kernel.counts.scaled_total(hmm.mean_in_degree())
        per_cell = (
            totals["arith"] * self.spec.arith_cycles
            + totals["compare"] * self.spec.compare_cycles
            + totals["select"] * self.spec.select_cycles
            + totals["special"] * self.spec.special_cycles
            + (totals["table_reads"] + totals["hmm_reads"]
               + totals["seq_reads"]) * self.spec.global_read_cycles
            + self.spec.global_write_cycles
        ) * self.cycles_factor
        warp = self.spec.warp_size
        warp_cells = [
            max(lengths[k:k + warp] or [0]) * hmm.n_states
            for k in range(0, len(lengths), warp)
        ]
        cycles = sum(warp_cells) * per_cell
        return (
            cycles / self.spec.sm_count / self.spec.clock_hz
            + self.spec.launch_overhead_s
        )


@dataclass
class Hmmer3Baseline:
    """HMMeR 3: striped SSE + threads; optional MSV filter pipeline."""

    kernel: Kernel
    spec: CpuSpec = XEON_E5520
    simd_width: int = 8          # striped SSE lanes (Farrar layout)
    simd_efficiency: float = 0.85
    threads: int = 8             # 4 cores x 2-way SMT
    thread_efficiency: float = 0.7
    #: Specialised inner loop vs the generic op mix.
    tool_factor: float = 0.35
    #: Fraction of sequences surviving the MSV filter (when enabled).
    filter_pass_rate: float = 0.02
    #: MSV cost relative to full forward, per cell.
    msv_cost_ratio: float = 0.12
    max_flag: bool = True        # paper: filtering off for fairness
    name: str = "HMMeR 3.0 (CPU, --max)"

    def _speedup(self) -> float:
        return (
            max(1.0, self.simd_width * self.simd_efficiency)
            * max(1.0, self.threads * self.thread_efficiency)
        )

    def seconds(self, hmm: Hmm, seq_lengths: Iterable[int]) -> float:
        """Modelled wall-clock of scoring ``seq_lengths``."""
        lengths = list(seq_lengths)
        per_cell = _cpu_cell_cycles(
            self.kernel, self.spec, hmm.mean_in_degree()
        ) * self.tool_factor
        full_cycles = _cells(hmm, lengths) * per_cell
        if self.max_flag:
            effective = full_cycles
        else:
            # Filter pipeline: cheap MSV on everything, full forward
            # on the survivors only.
            effective = full_cycles * (
                self.msv_cost_ratio + self.filter_pass_rate
            )
        return effective / self._speedup() / self.spec.clock_hz
