"""Fasta ``ssearch`` baseline (Section 6.1).

The paper compares against the ``ssearch`` tool of the FASTA package,
compiled *without* SSE2 vector instructions — i.e. a careful scalar C
implementation of full Smith-Waterman on one core. Here:

* :func:`sw_score` / :func:`sw_table` — an independent functional
  implementation (the correctness reference for the DSL pipeline);
* :class:`SSearchBaseline` — the cost model: per-cell scalar cost on
  the CPU spec, linear in query x database cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence as Seq

import numpy as np

from ...gpu.spec import CpuSpec, XEON_E5520
from ...runtime.values import Sequence


def sw_table(
    query: Sequence,
    target: Sequence,
    scores: np.ndarray,
    row_index: np.ndarray,
    col_index: np.ndarray,
    gap: int = 8,
) -> np.ndarray:
    """Full Smith-Waterman table, vectorised along anti-diagonals.

    The anti-diagonal order is exactly the paper's diagonal schedule;
    NumPy plays the role of the synchronous cores.
    """
    m, n = len(query), len(target)
    q = row_index[query.codes]
    d = col_index[target.codes]
    table = np.zeros((m + 1, n + 1), dtype=np.int64)
    for p in range(2, m + n + 1):
        lo = max(1, p - n)
        hi = min(m, p - 1)
        if lo > hi:
            continue
        i = np.arange(lo, hi + 1)
        j = p - i
        subst = scores[q[i - 1], d[j - 1]]
        best = np.maximum(table[i - 1, j - 1] + subst, 0)
        best = np.maximum(best, table[i - 1, j] - gap)
        best = np.maximum(best, table[i, j - 1] - gap)
        table[i, j] = best
    return table


def sw_score(
    query: Sequence,
    target: Sequence,
    scores: np.ndarray,
    row_index: np.ndarray,
    col_index: np.ndarray,
    gap: int = 8,
) -> int:
    """The local alignment score (max over the table)."""
    return int(
        sw_table(query, target, scores, row_index, col_index, gap).max()
    )


#: Cycles per DP cell for tuned scalar C Smith-Waterman. The classic
#: inner loop is ~10 arithmetic/compare ops and 3 loads; careful C is
#: a little leaner than machine-generated code.
SSEARCH_CYCLES_PER_CELL = 14.0


@dataclass
class SSearchBaseline:
    """Cost model of scalar ssearch on one CPU core."""

    spec: CpuSpec = XEON_E5520
    cycles_per_cell: float = SSEARCH_CYCLES_PER_CELL

    name: str = "ssearch (Fasta, no SSE2)"

    def seconds(
        self, query_length: int, db_lengths: Iterable[int]
    ) -> float:
        """Modelled wall-clock: cells x cycles / clock."""
        cells = float(query_length) * float(sum(db_lengths))
        return cells * self.cycles_per_cell / self.spec.clock_hz

    def search_scores(
        self,
        query: Sequence,
        database: Seq[Sequence],
        scores: np.ndarray,
        row_index: np.ndarray,
        col_index: np.ndarray,
        gap: int = 8,
    ) -> List[int]:
        """Functional search (reference scores for validation)."""
        return [
            sw_score(query, target, scores, row_index, col_index, gap)
            for target in database
        ]
