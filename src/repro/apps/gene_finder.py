"""Case study 2: gene finding with HMMs (Section 6.2).

Gene finding locates genes in DNA. The classic approach (Krogh et
al.'s E. coli gene finder) trains an HMM whose states capture the
statistics of coding vs. non-coding regions; likelihood estimation
runs the forward algorithm over each candidate region.

We build the paper's "simple gene-finder": an intergenic background
state, a three-state codon cycle with position-specific nucleotide
statistics, and start/stop handling folded into the transitions. One
problem per input sequence (``map``), compared against HMMoC on CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence as Seq

from ..extensions.hmm import Hmm, HmmBuilder
from ..runtime.engine import Engine, MapResult
from ..runtime.values import DNA, Sequence
from .hmm_algorithms import forward_function

#: Codon-position nucleotide statistics of coding DNA (approximate
#: E. coli usage): position 1 favours a/g (start-like), position 3 is
#: GC-rich through codon bias.
_CODON_EMISSIONS = (
    {"a": 0.28, "c": 0.22, "g": 0.33, "t": 0.17},
    {"a": 0.30, "c": 0.22, "g": 0.18, "t": 0.30},
    {"a": 0.18, "c": 0.30, "g": 0.32, "t": 0.20},
)

#: Background (intergenic) composition: slightly AT-rich.
_BACKGROUND = {"a": 0.29, "c": 0.21, "g": 0.21, "t": 0.29}


def build_gene_finder_hmm(
    name: str = "genefinder",
    gene_start_prob: float = 0.01,
    gene_stop_prob: float = 0.005,
    end_prob: float = 0.002,
) -> Hmm:
    """The 5-state gene finder: background + codon cycle."""
    builder = HmmBuilder(name, DNA)
    builder.start("begin")
    builder.add_state("intergenic", _BACKGROUND)
    for position, emissions in enumerate(_CODON_EMISSIONS, start=1):
        builder.add_state(f"codon{position}", emissions)
    builder.end("finish")

    stay = 1.0 - gene_start_prob - end_prob
    builder.transition("begin", "intergenic", 1.0)
    builder.transition("intergenic", "intergenic", stay)
    builder.transition("intergenic", "codon1", gene_start_prob)
    builder.transition("intergenic", "finish", end_prob)
    builder.transition("codon1", "codon2", 1.0)
    builder.transition("codon2", "codon3", 1.0)
    builder.transition("codon3", "codon1", 1.0 - gene_stop_prob)
    builder.transition("codon3", "intergenic", gene_stop_prob)
    return builder.build()


@dataclass
class GeneFinderResult:
    """Per-sequence likelihoods plus the launch accounting."""

    likelihoods: List[float]
    map_result: MapResult

    @property
    def seconds(self) -> float:
        """Simulated device time of the scan."""
        return self.map_result.seconds


class GeneFinder:
    """Forward-algorithm likelihood scoring on the simulated GPU.

    Probabilities shrink geometrically with sequence length, so the
    engine defaults to the log-space representation the type system
    enables (Section 3.2).
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        hmm: Optional[Hmm] = None,
    ) -> None:
        self.engine = engine or Engine(prob_mode="logspace")
        self.hmm = hmm or build_gene_finder_hmm()
        self.func = forward_function()

    def likelihood(self, sequence: Sequence) -> float:
        """P(sequence | model) via the forward algorithm."""
        return self.engine.run(
            self.func, {"h": self.hmm, "x": sequence}
        ).value

    def log_likelihood(self, sequence: Sequence) -> float:
        """log P — read straight from the log-space table."""
        import math

        run = self.engine.run(
            self.func, {"h": self.hmm, "x": sequence}
        )
        raw = run.table[
            self.hmm.end_state.index, len(sequence)
        ]
        if self.engine.prob_mode == "logspace":
            return float(raw)
        return math.log(raw) if raw > 0 else float("-inf")

    def scan(self, sequences: Seq[Sequence]) -> GeneFinderResult:
        """Score a batch of sequences (map: one per multiprocessor)."""
        result = self.engine.map_run(
            self.func,
            {"h": self.hmm},
            [{"x": seq} for seq in sequences],
        )
        return GeneFinderResult(list(result.values), result)
