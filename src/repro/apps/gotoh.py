"""Affine-gap alignment (Gotoh) — a three-table mutual group.

The second flagship application of the mutual-recursion extension
(Section 9): Gotoh's affine-gap global alignment is *naturally* a
mutual recursion over three tables,

    M(i,j) — best alignment ending in a match/mismatch at (i, j)
    X(i,j) — best alignment ending in a gap in the second sequence
    Y(i,j) — best alignment ending in a gap in the first sequence

with M reading all three at ``(i-1, j-1)``, X reading M/X at
``(i-1, j)`` and Y reading M/Y at ``(i, j-1)``. Every dependence
strictly decreases ``i + j``, so the joint solver derives three
*identical* schedules ``S = i + j`` with zero offsets — the mutual
machinery handling a group that needs no interleaving at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..lang.parser import parse_program
from ..lang.typecheck import CheckedProgram, check_program
from ..runtime.mutual import MutualResult, solve_mutual
from ..runtime.values import Bindings, ENGLISH, Alphabet, Sequence

#: Effectively minus infinity for int tables (scores stay far above).
NEG = -1_000_000

GOTOH_TEMPLATE = """\
alphabet {alpha} = "{chars}"

int m(seq[{alpha}] s, index[s] i, seq[{alpha}] t, index[t] j) =
  if i == 0 then (if j == 0 then 0 else {neg})
  else if j == 0 then {neg}
  else (m(i-1, j-1) max x(i-1, j-1) max y(i-1, j-1))
       + (if s[i-1] == t[j-1] then {match} else {mismatch})

int x(seq[{alpha}] s, index[s] i, seq[{alpha}] t, index[t] j) =
  if i == 0 then {neg}
  else if j == 0 then 0 - {open} - ({extend} * (i - 1))
  else (m(i-1, j) - {open}) max (x(i-1, j) - {extend})

int y(seq[{alpha}] s, index[s] i, seq[{alpha}] t, index[t] j) =
  if j == 0 then {neg}
  else if i == 0 then 0 - {open} - ({extend} * (j - 1))
  else (m(i, j-1) - {open}) max (y(i, j-1) - {extend})
"""


def gotoh_source(
    alphabet: Alphabet,
    match: int = 2,
    mismatch: int = -1,
    gap_open: int = 5,
    gap_extend: int = 1,
) -> str:
    """The DSL text of the three-table affine-gap group."""
    return GOTOH_TEMPLATE.format(
        alpha=alphabet.name,
        chars=alphabet.chars,
        match=match,
        mismatch=mismatch,
        open=gap_open,
        extend=gap_extend,
        neg=NEG,
    )


def gotoh_reference(
    a: Sequence,
    b: Sequence,
    match: int = 2,
    mismatch: int = -1,
    gap_open: int = 5,
    gap_extend: int = 1,
) -> int:
    """Independent NumPy Gotoh (global, affine gaps)."""
    n, m_len = len(a), len(b)
    m = np.full((n + 1, m_len + 1), NEG, dtype=np.int64)
    x = np.full((n + 1, m_len + 1), NEG, dtype=np.int64)
    y = np.full((n + 1, m_len + 1), NEG, dtype=np.int64)
    m[0, 0] = 0
    for i in range(1, n + 1):
        x[i, 0] = -gap_open - gap_extend * (i - 1)
    for j in range(1, m_len + 1):
        y[0, j] = -gap_open - gap_extend * (j - 1)
    for i in range(1, n + 1):
        for j in range(1, m_len + 1):
            score = match if a[i - 1] == b[j - 1] else mismatch
            m[i, j] = max(m[i-1, j-1], x[i-1, j-1], y[i-1, j-1]) + score
            x[i, j] = max(m[i-1, j] - gap_open, x[i-1, j] - gap_extend)
            y[i, j] = max(m[i, j-1] - gap_open, y[i, j-1] - gap_extend)
    return int(max(m[n, m_len], x[n, m_len], y[n, m_len]))


@dataclass
class GotohResult:
    score: int
    result: MutualResult

    @property
    def schedules(self) -> str:
        """The group's jointly derived schedules, rendered."""
        return str(self.result.mutual)

    @property
    def seconds(self) -> float:
        """Modelled device time of the group launch."""
        return self.result.seconds


class GotohAligner:
    """Affine-gap global alignment via the mutual-group pipeline."""

    def __init__(
        self,
        alphabet: Optional[Alphabet] = None,
        match: int = 2,
        mismatch: int = -1,
        gap_open: int = 5,
        gap_extend: int = 1,
        coeff_bound: int = 1,
        offset_bound: int = 1,
    ) -> None:
        # The affine-gap group needs only unit coefficients and zero
        # offsets (S = i + j for all three tables); the tight default
        # bounds keep the joint search space small.
        self.coeff_bound = coeff_bound
        self.offset_bound = offset_bound
        self.alphabet = alphabet or ENGLISH
        self.params = dict(
            match=match, mismatch=mismatch,
            gap_open=gap_open, gap_extend=gap_extend,
        )
        source = gotoh_source(self.alphabet, match, mismatch,
                              gap_open, gap_extend)
        checked: CheckedProgram = check_program(parse_program(source))
        self.funcs = {
            name: checked.function(name) for name in ("m", "x", "y")
        }

    def align(
        self, a: Sequence, b: Sequence, engine: str = "compiled"
    ) -> GotohResult:
        """Align two sequences; returns score and schedules."""
        bindings = {
            name: Bindings({"s": a, "t": b}) for name in self.funcs
        }
        result = solve_mutual(
            self.funcs,
            bindings,
            coeff_bound=self.coeff_bound,
            offset_bound=self.offset_bound,
            engine=engine,
        )
        n, m_len = len(a), len(b)
        score = max(
            int(result.value(name, (n, m_len)))
            for name in self.funcs
        )
        return GotohResult(score, result)
