"""The canonical HMM recursions, written in the DSL (Figure 11).

Both case-study applications (the gene finder and profile-HMM search)
instantiate these sources; the automatic analysis schedules them on
the sequence position (``S = i``), putting all states of one position
in one partition.
"""

from __future__ import annotations

from typing import Dict

from ..lang.parser import parse_function
from ..lang.typecheck import CheckedFunction, check_function

#: Figure 11(b): the forward algorithm in the HMM extension.
FORWARD_SOURCE = """\
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then
    (if s.isstart then 1.0 else 0.0)
  else
    // The end state is silent
    (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""

#: The Viterbi recursion: the same shape with max instead of sum.
VITERBI_SOURCE = """\
prob viterbi(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then
    (if s.isstart then 1.0 else 0.0)
  else
    (if s.isend then 1.0 else s.emission[x[i-1]])
    * max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))
"""

#: The backward algorithm: symmetric, over outgoing transitions. The
#: position dimension *increases* toward the base case, so the descent
#: is ``i + 1`` and the derived schedule runs anti-wise (S = -i) —
#: a good exercise for negative schedule coefficients.
BACKWARD_SOURCE = """\
prob backward(hmm h, state[h] s, seq[*] x, index[x] i, int n) =
  // >= (not ==): the box domain also tabulates cells above the
  // n-plane, which must not read past the sequence.
  if i >= n then
    (if s.isend then 1.0 else 0.0)
  else
    sum(t in s.transitionsfrom :
        t.prob
        * (if t.end.isend then 1.0 else t.end.emission[x[i]])
        * backward(t.end, i + 1, n))
"""

_CACHE: Dict[str, CheckedFunction] = {}


def _checked(source: str, key: str) -> CheckedFunction:
    if key not in _CACHE:
        _CACHE[key] = check_function(parse_function(source))
    return _CACHE[key]


def forward_function() -> CheckedFunction:
    """The checked forward algorithm (shared, cached)."""
    return _checked(FORWARD_SOURCE, "forward")


def viterbi_function() -> CheckedFunction:
    """The checked Viterbi recursion (shared, cached)."""
    return _checked(VITERBI_SOURCE, "viterbi")


def backward_function() -> CheckedFunction:
    """The checked backward algorithm (shared, cached)."""
    return _checked(BACKWARD_SOURCE, "backward")
