"""Posterior state decoding — forward x backward on the device.

A fourth HMM workload built purely from the DSL: the posterior
probability of being in state ``s`` while emitting position ``i`` is

    ``P(s at i | x) = F(s, i) * B(s, i) / P(x)``

with ``F`` Figure 11's forward algorithm and ``B`` the mirrored
backward recursion (whose descent *increases* the position, so the
derived schedule is ``S = -i`` — the negative-coefficient case of the
schedule space). Both tables come off the simulated device; the
combination is a cheap NumPy post-pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..extensions.hmm import Hmm
from ..lang.errors import RuntimeDslError
from ..runtime.engine import Engine
from ..runtime.values import Sequence
from .hmm_algorithms import backward_function, forward_function


@dataclass
class PosteriorResult:
    """Per-position posterior distribution over states."""

    sequence: Sequence
    hmm: Hmm
    likelihood: float
    posteriors: np.ndarray  # [state, position 1..n]
    seconds: float

    def state_path(self) -> List[str]:
        """The posterior-decoded path (argmax per position)."""
        best = self.posteriors.argmax(axis=0)
        return [
            self.hmm.states[s].name
            for s in best[1:len(self.sequence) + 1]
        ]

    def probability_of(self, state_name: str, position: int) -> float:
        """Posterior of ``state_name`` emitting position ``position``."""
        state = self.hmm.state(state_name)
        return float(self.posteriors[state.index, position])


class PosteriorDecoder:
    """Runs forward and backward and combines the tables."""

    def __init__(
        self, hmm: Hmm, engine: Optional[Engine] = None
    ) -> None:
        # Posterior needs the linear-domain product F * B; the direct
        # representation keeps the combination a plain multiply.
        self.engine = engine or Engine(prob_mode="direct")
        self.hmm = hmm
        self.forward = forward_function()
        self.backward = backward_function()

    def decode(self, seq: Sequence) -> PosteriorResult:
        """Posterior state distributions for one sequence."""
        n = len(seq)
        fwd = self.engine.run(
            self.forward, {"h": self.hmm, "x": seq}
        )
        bwd = self.engine.run(
            self.backward,
            {"h": self.hmm, "x": seq},
            initial={"n": n},
            at={"s": self.hmm.start_state.index, "i": 0, "n": n},
        )
        likelihood = float(
            fwd.table[self.hmm.end_state.index, n]
        )
        if likelihood <= 0.0:
            raise RuntimeDslError(
                "sequence has zero likelihood under the model; "
                "posteriors are undefined"
            )
        # B's table is indexed [state, position, n]; slice the n plane.
        backward_plane = bwd.table[:, :, n]
        posteriors = fwd.table * backward_plane / likelihood
        return PosteriorResult(
            seq,
            self.hmm,
            likelihood,
            posteriors,
            fwd.seconds + bwd.seconds,
        )
