"""Case study 3: profile HMM database search (Section 6.3).

Profile HMMs represent a family of sequences: one match state per
conserved position (with position-specific residue statistics),
flanked by insert states. Database search runs the forward algorithm
for every database sequence against the profile and ranks by
likelihood.

Layout note: classic Plan7 profiles include *silent* delete states,
which introduce same-position dependencies between states and would
force a schedule ordering within positions. Like the paper's Figure 11
recursion (whose only silent states are start/end), we fold deletions
into match-skip transitions ``M_k -> M_{k+2}`` — the standard
small-model simplification; the recursion then schedules on the
sequence position alone (``S = i``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence as Seq

from ..extensions.hmm import Hmm, HmmBuilder
from ..runtime.engine import Engine, MapResult
from ..runtime.values import PROTEIN, Alphabet, Sequence
from .hmm_algorithms import forward_function


def build_profile_hmm(
    match_emissions: Seq[Dict[str, float]],
    alphabet: Optional[Alphabet] = None,
    name: str = "profile",
    insert_prob: float = 0.05,
    skip_prob: float = 0.03,
    insert_extend: float = 0.4,
) -> Hmm:
    """A match/insert profile of ``len(match_emissions)`` positions."""
    alphabet = alphabet or PROTEIN
    positions = len(match_emissions)
    if positions < 1:
        raise ValueError("a profile needs at least one position")
    builder = HmmBuilder(name, alphabet)
    builder.start("begin")
    background = {c: 1.0 / len(alphabet) for c in alphabet.chars}
    for k in range(1, positions + 1):
        builder.add_state(f"M{k}", match_emissions[k - 1])
        builder.add_state(f"I{k}", background)
    builder.end("finish")

    match_next = 1.0 - insert_prob - skip_prob
    builder.transition("begin", "M1", 1.0 - insert_prob)
    builder.transition("begin", "I1", insert_prob)
    for k in range(1, positions + 1):
        target = f"M{k + 1}" if k < positions else "finish"
        skip_target = f"M{k + 2}" if k + 2 <= positions else "finish"
        builder.transition(f"M{k}", target, match_next)
        builder.transition(f"M{k}", f"I{k}", insert_prob)
        builder.transition(f"M{k}", skip_target, skip_prob)
        builder.transition(f"I{k}", f"I{k}", insert_extend)
        builder.transition(f"I{k}", target, 1.0 - insert_extend)
    return builder.build()


def random_profile(
    positions: int,
    alphabet: Optional[Alphabet] = None,
    seed: int = 0,
    name: str = "profile",
    conservation: float = 0.6,
) -> Hmm:
    """A synthetic family profile: each position strongly prefers one
    residue (``conservation``) over a uniform background."""
    alphabet = alphabet or PROTEIN
    rng = random.Random(seed)
    rest = (1.0 - conservation) / (len(alphabet) - 1)
    emissions = []
    for _ in range(positions):
        favourite = rng.choice(alphabet.chars)
        emissions.append(
            {
                c: (conservation if c == favourite else rest)
                for c in alphabet.chars
            }
        )
    return build_profile_hmm(emissions, alphabet, name=name)


#: The paper's Figure 14 model: "the TK model of 10 positions".
def tk_model(seed: int = 42) -> Hmm:
    """The paper's Figure 14 model: 10 profile positions."""
    return random_profile(10, seed=seed, name="TK")


@dataclass
class ProfileSearchResult:
    likelihoods: List[float]
    map_result: MapResult

    @property
    def seconds(self) -> float:
        """Simulated device time of the search."""
        return self.map_result.seconds


class ProfileSearch:
    """Profile-vs-database forward search on the simulated GPU."""

    def __init__(
        self,
        profile: Hmm,
        engine: Optional[Engine] = None,
    ) -> None:
        self.engine = engine or Engine(prob_mode="logspace")
        self.profile = profile
        self.func = forward_function()

    def likelihood(self, sequence: Sequence) -> float:
        """Forward likelihood of one sequence under the profile."""
        return self.engine.run(
            self.func, {"h": self.profile, "x": sequence}
        ).value

    def search(self, database: Seq[Sequence]) -> ProfileSearchResult:
        """Score a whole database (one problem per SM)."""
        result = self.engine.map_run(
            self.func,
            {"h": self.profile},
            [{"x": seq} for seq in database],
        )
        return ProfileSearchResult(list(result.values), result)

    def rank(
        self, database: Seq[Sequence], top: int = 10
    ) -> List[Sequence]:
        """Database entries most likely to belong to the family."""
        result = self.search(database)
        order = sorted(
            range(len(database)),
            key=lambda k: -result.likelihoods[k],
        )
        return [database[k] for k in order[:top]]
