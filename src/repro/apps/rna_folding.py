"""RNA secondary-structure prediction (Nussinov) — an extension
case study.

The paper names RNA secondary structure as the application family
motivating its future work (Section 9) and explicitly allows language
extensions that "create new looping expressions ... and can therefore
derive solvable criteria on recursions within the loop" (Section 5).
This module exercises exactly that: the Nussinov base-pair
maximisation, whose bifurcation term is a bounded range reduction

    ``max(k in i+1 .. j-1 : nuss(i, k) + nuss(k, j))``

The dependence analysis derives the interval schedule ``S = j - i``
(compute short spans before long ones) with the range binder folded
into the validity criterion as an affine constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..lang.parser import parse_function
from ..lang.typecheck import CheckedFunction, check_function
from ..runtime.engine import Engine, RunResult
from ..runtime.values import Alphabet, Sequence

#: The RNA alphabet.
RNA = Alphabet("rna", "acgu")

#: Watson-Crick plus wobble pairs.
CANONICAL_PAIRS = frozenset(
    {("a", "u"), ("u", "a"), ("c", "g"), ("g", "c"),
     ("g", "u"), ("u", "g")}
)

#: The recursion over half-open intervals [i, j): a cell scores the
#: best pairing of x[i..j-1]. ``{min_span}`` is the minimum hairpin
#: span (j - i below it scores 0).
NUSSINOV_TEMPLATE = """\
int nuss(seq[rna] x, index[x] i, index[x] j) =
  if j < i + {min_span} then 0
  else (
    nuss(i+1, j)
    max nuss(i, j-1)
    max (nuss(i+1, j-1) + {pair_expr})
    max max(k in i+1 .. j-1 : nuss(i, k) + nuss(k, j))
  )
"""

_PAIR_EXPR = (
    "(if x[i] == 'a' then (if x[j-1] == 'u' then 1 else 0)\n"
    "   else if x[i] == 'u' then"
    " (if x[j-1] == 'a' then 1 else (if x[j-1] == 'g' then 1 else 0))\n"
    "   else if x[i] == 'c' then (if x[j-1] == 'g' then 1 else 0)\n"
    "   else (if x[j-1] == 'c' then 1 else"
    " (if x[j-1] == 'u' then 1 else 0)))"
)


def nussinov_source(min_span: int = 2) -> str:
    """The DSL text of the Nussinov recursion."""
    return NUSSINOV_TEMPLATE.format(
        min_span=min_span, pair_expr=_PAIR_EXPR
    )


def nussinov_function(min_span: int = 2) -> CheckedFunction:
    """The checked Nussinov recursion for ``min_span``."""
    return check_function(
        parse_function(nussinov_source(min_span)), {"rna": RNA.chars}
    )


def pairs(a: str, b: str) -> bool:
    """Do two bases form a canonical or wobble pair?"""
    return (a, b) in CANONICAL_PAIRS


def nussinov_reference(seq: Sequence, min_span: int = 2) -> np.ndarray:
    """Independent NumPy Nussinov (the correctness reference)."""
    n = len(seq)
    table = np.zeros((n + 1, n + 1), dtype=np.int64)
    for span in range(min_span, n + 1):
        for i in range(0, n - span + 1):
            j = i + span
            best = max(table[i + 1, j], table[i, j - 1])
            bonus = 1 if pairs(seq[i], seq[j - 1]) else 0
            best = max(best, table[i + 1, j - 1] + bonus)
            for k in range(i + 1, j):
                best = max(best, table[i, k] + table[k, j])
            table[i, j] = best
    return table


def traceback(
    seq: Sequence, table: np.ndarray, min_span: int = 2
) -> List[Tuple[int, int]]:
    """Recover one optimal set of base pairs from a filled table."""
    pairs_found: List[Tuple[int, int]] = []
    stack = [(0, len(seq))]
    while stack:
        i, j = stack.pop()
        if j < i + min_span:
            continue
        score = table[i, j]
        if score == table[i + 1, j]:
            stack.append((i + 1, j))
            continue
        if score == table[i, j - 1]:
            stack.append((i, j - 1))
            continue
        bonus = 1 if pairs(seq[i], seq[j - 1]) else 0
        if bonus and score == table[i + 1, j - 1] + bonus:
            pairs_found.append((i, j - 1))
            stack.append((i + 1, j - 1))
            continue
        for k in range(i + 1, j):
            if score == table[i, k] + table[k, j]:
                stack.append((i, k))
                stack.append((k, j))
                break
    return sorted(pairs_found)


def dot_bracket(seq: Sequence, pair_list: List[Tuple[int, int]]) -> str:
    """Render a pair list as dot-bracket notation."""
    chars = ["."] * len(seq)
    for i, j in pair_list:
        chars[i] = "("
        chars[j] = ")"
    return "".join(chars)


@dataclass
class FoldResult:
    """One folded sequence."""

    sequence: Sequence
    score: int
    pairs: List[Tuple[int, int]]
    structure: str
    run: RunResult

    @property
    def seconds(self) -> float:
        """Simulated device time of the fold."""
        return self.run.seconds


class RnaFolding:
    """Nussinov folding on the simulated GPU."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        min_span: int = 2,
    ) -> None:
        self.engine = engine or Engine()
        self.min_span = min_span
        self.func = nussinov_function(min_span)

    def fold(self, seq: Sequence) -> FoldResult:
        """Fold one sequence: score, pairs and dot-bracket."""
        run = self.engine.run(
            self.func, {"x": seq}, at={"i": 0, "j": len(seq)}
        )
        pair_list = traceback(seq, run.table, self.min_span)
        return FoldResult(
            seq, int(run.value), pair_list,
            dot_bracket(seq, pair_list), run,
        )
