"""Mutually recursive RNA structure grammar — the Section 9 extension.

The paper's future work: "support mutually recursive functions, by
deriving multiple scheduling functions, one for each function, whose
partition time-step values are compatible ... This would allow us to
support more complicated applications, such as RNA secondary structure
prediction."

This module implements exactly that application: the classic
two-nonterminal structure grammar (``S -> .S | (S)S``, the backbone of
SCFG/ADP-style folders)

    struct(i, j) = max( struct(i+1, j),
                        max k: paired(i, k) + struct(k, j) )
    paired(i, j) = pair_bonus(x[i], x[j-1]) + struct(i+1, j-1)

scheduled jointly: the solver derives the compatible pair
``S_paired = j - i`` and ``S_struct = j - i + 1`` — ``paired`` spans
of length L run one global time-step before ``struct`` spans of the
same length. The scores coincide with single-function Nussinov, which
the tests exploit as an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.parser import parse_program
from ..lang.typecheck import CheckedProgram, check_program
from ..runtime.mutual import MutualResult, solve_mutual
from ..runtime.values import Bindings, Sequence

#: A large negative score standing in for "no pairing possible" (the
#: grammar has no partial domains; the outer max discards it).
FORBIDDEN = -1000

GRAMMAR_SOURCE = f"""\
alphabet rna = "acgu"

int struct(seq[rna] x, index[x] i, index[x] j) =
  if j < i + 2 then 0
  else struct(i+1, j)
       max max(k in i+2 .. j : paired(i, k) + struct(k, j))

int paired(seq[rna] y, index[y] i, index[y] j) =
  if j < i + 2 then 0 - {-FORBIDDEN}
  else
    (if y[i] == 'a' then (if y[j-1] == 'u' then 1 else 0 - {-FORBIDDEN})
     else if y[i] == 'u' then
       (if y[j-1] == 'a' then 1
        else (if y[j-1] == 'g' then 1 else 0 - {-FORBIDDEN}))
     else if y[i] == 'c' then
       (if y[j-1] == 'g' then 1 else 0 - {-FORBIDDEN})
     else (if y[j-1] == 'c' then 1
           else (if y[j-1] == 'u' then 1 else 0 - {-FORBIDDEN})))
    + struct(i+1, j-1)
"""


def grammar_program() -> CheckedProgram:
    """Parse and check the two-nonterminal grammar."""
    return check_program(parse_program(GRAMMAR_SOURCE))


@dataclass
class GrammarFold:
    """One folded sequence via the mutual grammar."""

    sequence: Sequence
    score: int
    result: MutualResult

    @property
    def schedules(self) -> str:
        """The group's jointly derived schedules, rendered."""
        return str(self.result.mutual)

    @property
    def seconds(self) -> float:
        """Modelled device time of the group launch."""
        return self.result.seconds


class RnaGrammar:
    """Two-nonterminal RNA folding on jointly derived schedules."""

    def __init__(self, coeff_bound: int = 2, offset_bound: int = 2):
        checked = grammar_program()
        self.funcs = {
            name: checked.function(name)
            for name in ("struct", "paired")
        }
        self.coeff_bound = coeff_bound
        self.offset_bound = offset_bound

    def fold(
        self, seq: Sequence, engine: str = "lockstep"
    ) -> GrammarFold:
        """Fold one sequence. ``engine="compiled"`` for long inputs;
        the default lock-step engine additionally race-checks the
        joint schedules."""
        bindings = {
            "struct": Bindings({"x": seq}),
            "paired": Bindings({"y": seq}),
        }
        result = solve_mutual(
            self.funcs,
            bindings,
            coeff_bound=self.coeff_bound,
            offset_bound=self.offset_bound,
            engine=engine,
        )
        score = int(result.value("struct", (0, len(seq))))
        return GrammarFold(seq, score, result)
