"""Case study 1: Smith-Waterman database search (Section 6.1).

Local edit distance for sequence alignment, written in the DSL with
the substitution-matrix extension; "the expected parallelisation is
along the diagonal x + y, as with other edit distance algorithms."
The typical application compares one query sequence against a database
(one problem per database sequence — the ``map`` primitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence as Seq

from ..extensions.submatrix import SubstitutionMatrix, blosum62
from ..lang.parser import parse_function
from ..lang.typecheck import CheckedFunction, check_function
from ..runtime.engine import Engine, MapResult, RunResult
from ..runtime.values import PROTEIN, Alphabet, Sequence

#: The DSL source of the recursion; ``{gap}`` is the linear gap
#: penalty (the paper's base language takes constants inline).
SMITH_WATERMAN_TEMPLATE = """\
int sw(matrix[{alpha}, {alpha}] m,
       seq[{alpha}] q, index[q] i,
       seq[{alpha}] d, index[d] j) =
  if i == 0 then 0
  else if j == 0 then 0
  else 0 max (sw(i-1, j-1) + m[q[i-1], d[j-1]])
         max (sw(i-1, j) - {gap})
         max (sw(i, j-1) - {gap})
"""


def smith_waterman_source(
    alphabet: str = "protein", gap: int = 8
) -> str:
    """The DSL text of the Smith-Waterman recursion."""
    return SMITH_WATERMAN_TEMPLATE.format(alpha=alphabet, gap=gap)


def smith_waterman_function(
    alphabet: Optional[Alphabet] = None, gap: int = 8
) -> CheckedFunction:
    """The checked Smith-Waterman recursion."""
    alphabet = alphabet or PROTEIN
    source = smith_waterman_source(alphabet.name, gap)
    return check_function(
        parse_function(source), {alphabet.name: alphabet.chars}
    )


@dataclass
class AlignmentHit:
    """One database hit: the best local score for a database entry."""

    target: Sequence
    score: int

    def __repr__(self) -> str:
        return f"AlignmentHit({self.target.name or '?'}, {self.score})"


class SmithWaterman:
    """Query-vs-database Smith-Waterman on the simulated GPU.

    The score of a local alignment is the maximum cell of the DP
    table (not a corner), hence ``reduce='max'``.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        matrix: Optional[SubstitutionMatrix] = None,
        gap: int = 8,
        alphabet: Optional[Alphabet] = None,
    ) -> None:
        self.engine = engine or Engine()
        self.alphabet = alphabet or PROTEIN
        self.matrix = matrix or blosum62(self.alphabet)
        self.gap = gap
        self.func = smith_waterman_function(self.alphabet, gap)

    def align(self, query: Sequence, target: Sequence) -> RunResult:
        """Score one pair; the run's ``value`` is the local score."""
        return self.engine.run(
            self.func,
            {"m": self.matrix, "q": query, "d": target},
            reduce="max",
        )

    def search(
        self, query: Sequence, database: Seq[Sequence]
    ) -> MapResult:
        """Score the query against every database sequence (map)."""
        return self.engine.map_run(
            self.func,
            {"m": self.matrix, "q": query},
            [{"d": target} for target in database],
            reduce="max",
        )

    def hits(
        self,
        query: Sequence,
        database: Seq[Sequence],
        top: int = 10,
    ) -> List[AlignmentHit]:
        """The best-scoring database entries, highest first."""
        result = self.search(query, database)
        scored = [
            AlignmentHit(target, int(score))
            for target, score in zip(database, result.values)
        ]
        scored.sort(key=lambda hit: -hit.score)
        return scored[:top]
