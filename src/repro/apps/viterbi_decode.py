"""Viterbi decoding: the most probable state path.

The Viterbi recursion is the forward algorithm with ``max`` in place
of ``sum`` (same derived schedule, ``S = i``). The filled table
supports a standard traceback: starting from the end state, repeatedly
pick the incoming transition whose source achieves the cell's value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..extensions.hmm import Hmm
from ..lang.errors import RuntimeDslError
from ..runtime.engine import Engine
from ..runtime.values import Sequence
from .hmm_algorithms import viterbi_function


@dataclass
class ViterbiResult:
    """The best path and its probability."""

    sequence: Sequence
    hmm: Hmm
    probability: float
    path: List[str]  # state names, one per emitted position
    seconds: float

    def __str__(self) -> str:
        return " ".join(self.path)


class ViterbiDecoder:
    """Most-probable-path decoding on the simulated device."""

    def __init__(
        self, hmm: Hmm, engine: Optional[Engine] = None
    ) -> None:
        # Traceback compares products cell-by-cell; the direct
        # representation keeps that a plain multiply. (For very long
        # sequences a log-space traceback would compare sums instead.)
        self.engine = engine or Engine(prob_mode="direct")
        self.hmm = hmm
        self.func = viterbi_function()

    def decode(self, seq: Sequence) -> ViterbiResult:
        """The most probable state path for one sequence."""
        run = self.engine.run(self.func, {"h": self.hmm, "x": seq})
        table = run.table
        probability = float(
            table[self.hmm.end_state.index, len(seq)]
        )
        if probability <= 0.0:
            raise RuntimeDslError(
                "sequence has zero probability under the model; "
                "no Viterbi path exists"
            )
        path = self._traceback(seq, table)
        return ViterbiResult(
            seq, self.hmm, probability, path, run.seconds
        )

    def _emission(self, state, char: str) -> float:
        if state.is_end:
            return 1.0
        return state.emission(char)

    def _traceback(self, seq: Sequence, table: np.ndarray) -> List[str]:
        """Walk the argmax chain backwards from (end, n)."""
        hmm = self.hmm
        position = len(seq)
        state = hmm.end_state
        reversed_path: List[str] = []
        while position > 0:
            target = table[state.index, position]
            emit = self._emission(
                state, seq[position - 1] if position else ""
            )
            chosen = None
            for trans in hmm.transitions_to(state):
                candidate = (
                    emit
                    * trans.prob
                    * table[trans.source, position - 1]
                )
                if np.isclose(candidate, target, rtol=1e-9, atol=0.0):
                    chosen = trans
                    break
            if chosen is None:
                raise RuntimeDslError(
                    f"traceback failed at state {state.name!r}, "
                    f"position {position} (inconsistent table)"
                )
            if not state.is_end:
                reversed_path.append(state.name)
            position -= 1
            state = hmm.states[chosen.source]
        if not state.is_start:
            # The final position was emitted by a non-start state.
            reversed_path.append(state.name)
        path = list(reversed(reversed_path))
        return path
