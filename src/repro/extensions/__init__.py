"""Domain extensions (Section 5): substitution matrices and HMMs."""

from .hmm import Hmm, HmmArrays, HmmBuilder, State, Transition
from .submatrix import SubstitutionMatrix, blosum62

__all__ = [
    "Hmm",
    "HmmArrays",
    "HmmBuilder",
    "State",
    "Transition",
    "SubstitutionMatrix",
    "blosum62",
]
