"""Hidden Markov Models — the model extension (Section 5.2).

An HMM is a probabilistic finite automaton: states carry emission
distributions (start and end states are silent), transitions carry
probabilities. The extension contributes the ``hmm`` calling type, the
``state``/``transition`` recursive types, the field expressions
(``t.start``, ``s.isend``, ``s.emission[c]``, ``s.transitionsto`` ...)
and reductions over transition sets.

To act as recursion dimensions, states and transitions are given an
arbitrary total order onto ``0..n-1`` (Section 3.2/5.2 — arbitrary
because no recursion depends on the position of the states).

:class:`HmmArrays` is the device layout: dense emission tables and CSR
adjacency used by generated kernels and by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence as Seq, Tuple

import numpy as np

from ..lang import ast
from ..lang.errors import RuntimeDslError
from ..runtime.values import Alphabet


@dataclass(frozen=True)
class State:
    """One HMM state. ``index`` is its position in the total order."""

    name: str
    index: int
    kind: str  # "start" | "end" | "emit"
    emissions: Tuple[Tuple[str, float], ...] = ()

    @property
    def is_start(self) -> bool:
        """Is this the start state?"""
        return self.kind == "start"

    @property
    def is_end(self) -> bool:
        """Is this the end state?"""
        return self.kind == "end"

    @property
    def is_silent(self) -> bool:
        """Start and end states emit nothing."""
        return self.kind in ("start", "end")

    def emission(self, char: str) -> float:
        """Emission probability of ``char`` (0 if unlisted)."""
        for symbol, prob in self.emissions:
            if symbol == char:
                return prob
        return 0.0


@dataclass(frozen=True)
class Transition:
    """A transition ``source -> target`` with probability ``prob``."""

    index: int
    source: int
    target: int
    prob: float


@dataclass
class Hmm:
    """A complete model over ``alphabet``."""

    name: str
    alphabet: Alphabet
    states: Tuple[State, ...]
    transitions: Tuple[Transition, ...]

    def __post_init__(self) -> None:
        starts = [s for s in self.states if s.is_start]
        ends = [s for s in self.states if s.is_end]
        if len(starts) != 1 or len(ends) != 1:
            raise RuntimeDslError(
                f"hmm {self.name!r} needs exactly one start and one end "
                f"state"
            )
        self._by_name = {s.name: s for s in self.states}

    # -- queries -------------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        """Number of transitions."""
        return len(self.transitions)

    @property
    def start_state(self) -> State:
        """The unique start state."""
        return next(s for s in self.states if s.is_start)

    @property
    def end_state(self) -> State:
        """The unique end state."""
        return next(s for s in self.states if s.is_end)

    def state(self, name: str) -> State:
        """Look a state up by name."""
        if name not in self._by_name:
            raise RuntimeDslError(
                f"hmm {self.name!r} has no state {name!r}"
            )
        return self._by_name[name]

    def transitions_to(self, state: State) -> Tuple[Transition, ...]:
        """Transitions entering ``state``."""
        return tuple(
            t for t in self.transitions if t.target == state.index
        )

    def transitions_from(self, state: State) -> Tuple[Transition, ...]:
        """Transitions leaving ``state``."""
        return tuple(
            t for t in self.transitions if t.source == state.index
        )

    def mean_in_degree(self) -> float:
        """Average incoming transitions per state (cost model)."""
        if not self.states:
            return 0.0
        return self.n_transitions / self.n_states

    # -- construction --------------------------------------------------------

    @staticmethod
    def from_decl(
        decl: ast.HmmDecl, alphabets: Mapping[str, Alphabet]
    ) -> "Hmm":
        """Materialise a parsed ``hmm`` declaration."""
        alphabet = alphabets[decl.alphabet]
        states = tuple(
            State(s.name, k, s.kind, tuple(s.emissions))
            for k, s in enumerate(decl.states)
        )
        by_name = {s.name: s for s in states}
        transitions = tuple(
            Transition(
                k, by_name[t.source].index, by_name[t.target].index, t.prob
            )
            for k, t in enumerate(decl.transitions)
        )
        return Hmm(decl.name, alphabet, states, transitions)

    def to_dsl(self) -> str:
        """Render back to DSL ``hmm`` declaration syntax."""
        lines = [f"hmm {self.name} [{self.alphabet.name}] {{"]
        for s in self.states:
            if s.is_start:
                lines.append(f"  state {s.name} : start")
            elif s.is_end:
                lines.append(f"  state {s.name} : end")
            else:
                emissions = ", ".join(
                    f"{c}: {p}" for c, p in s.emissions
                )
                lines.append(f"  state {s.name} emits {{ {emissions} }}")
        for t in self.transitions:
            lines.append(
                f"  trans {self.states[t.source].name} -> "
                f"{self.states[t.target].name} : {t.prob}"
            )
        lines.append("}")
        return "\n".join(lines)

    def arrays(self, logspace: bool = False) -> "HmmArrays":
        """The device layout of this model (see HmmArrays).

        Memoised per model: a lane-batched map group binds the same
        model for every member, and the layout (emission matrix,
        CSR-ish transition lists) is pure in the model, so the batch
        pays for one build instead of one per member.
        """
        cache = self.__dict__.setdefault("_arrays_cache", {})
        built = cache.get(logspace)
        if built is None:
            built = cache[logspace] = HmmArrays.build(
                self, logspace=logspace
            )
        return built


class HmmBuilder:
    """Fluent construction of HMMs from Python (used by the apps)."""

    def __init__(self, name: str, alphabet: Alphabet) -> None:
        self.name = name
        self.alphabet = alphabet
        self._states: List[State] = []
        self._transitions: List[Transition] = []
        self._index: Dict[str, int] = {}

    def add_state(
        self,
        name: str,
        emissions: Optional[Mapping[str, float]] = None,
        kind: str = "emit",
    ) -> "HmmBuilder":
        """Add a state with an emission distribution."""
        if name in self._index:
            raise RuntimeDslError(f"duplicate state {name!r}")
        index = len(self._states)
        self._index[name] = index
        pairs = tuple((emissions or {}).items())
        for char, _ in pairs:
            if char not in self.alphabet:
                raise RuntimeDslError(
                    f"state {name!r} emits {char!r}, not in alphabet "
                    f"{self.alphabet.name!r}"
                )
        self._states.append(State(name, index, kind, pairs))
        return self

    def start(self, name: str = "begin") -> "HmmBuilder":
        """Add the (silent) start state."""
        return self.add_state(name, kind="start")

    def end(self, name: str = "finish") -> "HmmBuilder":
        """Add the (silent) end state."""
        return self.add_state(name, kind="end")

    def uniform_state(self, name: str) -> "HmmBuilder":
        """Add a state emitting every character equally."""
        p = 1.0 / len(self.alphabet)
        return self.add_state(
            name, {c: p for c in self.alphabet.chars}
        )

    def transition(
        self, source: str, target: str, prob: float
    ) -> "HmmBuilder":
        """Add a transition ``source -> target``."""
        for endpoint in (source, target):
            if endpoint not in self._index:
                raise RuntimeDslError(f"unknown state {endpoint!r}")
        self._transitions.append(
            Transition(
                len(self._transitions),
                self._index[source],
                self._index[target],
                prob,
            )
        )
        return self

    def build(self) -> Hmm:
        """Finish and validate the model."""
        return Hmm(
            self.name,
            self.alphabet,
            tuple(self._states),
            tuple(self._transitions),
        )


@dataclass
class HmmArrays:
    """Device-friendly layout of one model.

    ``emissions`` is indexed ``[state, alphabet index]``; silent states
    carry all-zero rows. The CSR pairs (``in_offsets``/``in_ids`` and
    ``out_offsets``/``out_ids``) realise ``transitionsto`` and
    ``transitionsfrom``. In log space, probabilities are ``log(p)``
    with ``log(0) = -inf``.
    """

    hmm: Hmm
    logspace: bool
    is_start: np.ndarray
    is_end: np.ndarray
    emissions: np.ndarray
    sym_index: np.ndarray
    trans_prob: np.ndarray
    trans_source: np.ndarray
    trans_target: np.ndarray
    in_offsets: np.ndarray
    in_ids: np.ndarray
    out_offsets: np.ndarray
    out_ids: np.ndarray

    @staticmethod
    def build(hmm: Hmm, logspace: bool = False) -> "HmmArrays":
        """Compute the dense/CSR device layout of ``hmm``."""
        n, m = hmm.n_states, hmm.n_transitions
        size = len(hmm.alphabet)
        is_start = np.zeros(n, dtype=bool)
        is_end = np.zeros(n, dtype=bool)
        emissions = np.zeros((n, size), dtype=np.float64)
        for s in hmm.states:
            is_start[s.index] = s.is_start
            is_end[s.index] = s.is_end
            for char, prob in s.emissions:
                emissions[s.index, hmm.alphabet.index(char)] = prob
        trans_prob = np.array(
            [t.prob for t in hmm.transitions], dtype=np.float64
        )
        trans_source = np.array(
            [t.source for t in hmm.transitions], dtype=np.int64
        )
        trans_target = np.array(
            [t.target for t in hmm.transitions], dtype=np.int64
        )
        in_offsets, in_ids = _csr(
            n, [(t.target, t.index) for t in hmm.transitions]
        )
        out_offsets, out_ids = _csr(
            n, [(t.source, t.index) for t in hmm.transitions]
        )
        if logspace:
            with np.errstate(divide="ignore"):
                emissions = np.log(emissions)
                trans_prob = np.log(trans_prob)
        return HmmArrays(
            hmm,
            logspace,
            is_start,
            is_end,
            emissions,
            hmm.alphabet.index_table(),
            trans_prob,
            trans_source,
            trans_target,
            in_offsets,
            in_ids,
            out_offsets,
            out_ids,
        )


def _csr(
    n_states: int, pairs: Seq[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Group transition ids by state into a CSR adjacency."""
    buckets: List[List[int]] = [[] for _ in range(n_states)]
    for state, trans_id in pairs:
        buckets[state].append(trans_id)
    offsets = np.zeros(n_states + 1, dtype=np.int64)
    ids: List[int] = []
    for state, bucket in enumerate(buckets):
        ids.extend(bucket)
        offsets[state + 1] = len(ids)
    return offsets, np.array(ids, dtype=np.int64)
