"""Substitution matrices — the simple data extension (Section 5.1).

A substitution matrix scores replacing one character with another; it
adds a ``matrix`` calling type and the lookup expression
``m[c1, c2]`` to the language, with no effect on the recursion
analysis. The generated load reads a dense table indexed through the
alphabets' index tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..lang import ast
from ..lang.errors import RuntimeDslError
from ..runtime.values import Alphabet


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A dense score table over ``row_alphabet`` x ``col_alphabet``."""

    name: str
    row_alphabet: Alphabet
    col_alphabet: Alphabet
    scores: np.ndarray = field(compare=False)

    def __post_init__(self) -> None:
        expected = (len(self.row_alphabet), len(self.col_alphabet))
        if self.scores.shape != expected:
            raise RuntimeDslError(
                f"matrix {self.name!r}: score table shape "
                f"{self.scores.shape} does not match alphabets {expected}"
            )

    def score(self, row_char: str, col_char: str) -> int:
        """Look up the substitution score of a character pair."""
        return int(
            self.scores[
                self.row_alphabet.index(row_char),
                self.col_alphabet.index(col_char),
            ]
        )

    @staticmethod
    def from_decl(
        decl: ast.MatrixDecl, alphabets: Mapping[str, Alphabet]
    ) -> "SubstitutionMatrix":
        """Materialise a parsed ``matrix`` declaration."""
        rows = alphabets[decl.row_alphabet]
        cols = alphabets[decl.col_alphabet]
        header = decl.header or tuple(cols.chars)
        default = decl.default if decl.default is not None else 0
        table = np.full((len(rows), len(cols)), default, dtype=np.int64)
        for row in decl.rows:
            r = rows.index(row.char)
            for char, value in zip(header, row.values):
                table[r, cols.index(char)] = value
        return SubstitutionMatrix(decl.name, rows, cols, table)

    @staticmethod
    def from_scores(
        name: str,
        alphabet: Alphabet,
        scores: Mapping[Tuple[str, str], int],
        default: int = 0,
        symmetric: bool = True,
    ) -> "SubstitutionMatrix":
        """Build a square matrix from a sparse pair->score mapping."""
        size = len(alphabet)
        table = np.full((size, size), default, dtype=np.int64)
        for (a, b), value in scores.items():
            table[alphabet.index(a), alphabet.index(b)] = value
            if symmetric:
                table[alphabet.index(b), alphabet.index(a)] = value
        return SubstitutionMatrix(name, alphabet, alphabet, table)

    @staticmethod
    def match_mismatch(
        name: str,
        alphabet: Alphabet,
        match: int = 1,
        mismatch: int = -1,
    ) -> "SubstitutionMatrix":
        """The simplest scoring scheme: match/mismatch constants."""
        size = len(alphabet)
        table = np.full((size, size), mismatch, dtype=np.int64)
        np.fill_diagonal(table, match)
        return SubstitutionMatrix(name, alphabet, alphabet, table)

    def to_dsl(self) -> str:
        """Render back to DSL ``matrix`` declaration syntax."""
        lines = [
            f"matrix {self.name}"
            f"[{self.row_alphabet.name}, {self.col_alphabet.name}] {{"
        ]
        lines.append("  header " + " ".join(self.col_alphabet.chars))
        for r, char in enumerate(self.row_alphabet.chars):
            values = " ".join(str(int(v)) for v in self.scores[r])
            lines.append(f"  row {char} : {values}")
        lines.append("}")
        return "\n".join(lines)


def blosum62(alphabet: Optional[Alphabet] = None) -> SubstitutionMatrix:
    """The BLOSUM62 matrix used by Smith-Waterman searches (Section 6.1).

    Standard 20-residue table (Henikoff & Henikoff 1992).
    """
    from ..runtime.values import PROTEIN

    alphabet = alphabet or PROTEIN
    rows = _BLOSUM62_ROWS.strip().splitlines()
    order = "ARNDCQEGHILKMFPSTWYV"
    scores: Dict[Tuple[str, str], int] = {}
    for row_char, line in zip(order, rows):
        for col_char, value in zip(order, line.split()):
            scores[(row_char, col_char)] = int(value)
    return SubstitutionMatrix.from_scores(
        "blosum62", alphabet, scores, symmetric=False
    )


_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4
"""
