"""Grammar-driven DSL fuzzing with differential backend testing.

Five paper apps are a thin scenario set for a system with four
execution rungs (scalar, vector, lane-batched vector, native C), a
static verifier, a runtime sanitizer and chaos injection. This
package closes the gap:

* :mod:`repro.fuzz.grammar` — structured *case specs* (one frozen
  dataclass per program shape) that render to well-typed DSL source
  text plus concrete arguments, in the enumerative
  grammar-automaton style of ProgSynth;
* :mod:`repro.fuzz.generator` — a seeded, deterministic generator
  drawing specs biased toward the features that gate backend
  eligibility (reductions, CSR transitions, ring schedules, tiny
  domains, log space);
* :mod:`repro.fuzz.differential` — the harness: every generated
  program runs on every backend (and through the table sanitizer,
  the static lint and the lane-batched ``map`` path) under the
  shared :mod:`repro.runtime.parity` agreement policy, and the
  outcome is classified as ``parity-ok`` / ``eligibility-mismatch``
  / ``lint-gap`` / ``divergence`` / ``crash``;
* :mod:`repro.fuzz.shrink` — a delta-debugging shrinker that
  reduces a failing spec to a minimal reproducer preserving its
  failure class;
* :mod:`repro.fuzz.corpus` — the checked-in regression corpus
  (``tests/corpus/*.dsl``) that tier-1 replays across backends;
* :mod:`repro.fuzz.campaign` — bounded campaigns with a
  deterministic report (``python -m repro fuzz``).
"""

from .campaign import CampaignReport, run_campaign
from .corpus import CorpusEntry, load_corpus, replay_entry, write_entry
from .differential import (
    FAILURE_CLASSES,
    CaseOutcome,
    DifferentialHarness,
)
from .generator import generate_case
from .grammar import FuzzCase, render
from .shrink import shrink, shrink_candidates, spec_size

__all__ = [
    "CampaignReport",
    "CaseOutcome",
    "CorpusEntry",
    "DifferentialHarness",
    "FAILURE_CLASSES",
    "FuzzCase",
    "generate_case",
    "load_corpus",
    "render",
    "replay_entry",
    "run_campaign",
    "shrink",
    "shrink_candidates",
    "spec_size",
    "write_entry",
]
