"""Bounded fuzz campaigns with deterministic reports.

A campaign is: one ``random.Random(seed)`` stream, ``count``
sequential case draws, each classified by the differential harness;
failures are delta-debugged down to minimal reproducers (and
optionally written straight into the regression corpus). The report
deliberately contains no wall-clock data — the acceptance contract is
*same seed, same count → byte-identical report* — so timing lives
only in the optional ``budget_seconds`` cutoff (a budget-limited run
records that it stopped early and is exempt from the determinism
promise).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .differential import (
    ALL_CLASSES,
    FAILURE_CLASSES,
    DifferentialHarness,
)
from .generator import generate_case
from .grammar import render, render_script
from .shrink import shrink

__all__ = ["CampaignReport", "FailureRecord", "run_campaign"]


@dataclass
class FailureRecord:
    """One finding: the original case and its shrunk reproducer."""

    index: int
    shape: str
    classification: str
    detail: str
    script: str
    shrunk_script: str
    shrink_steps: int
    corpus_path: str = ""


@dataclass
class CampaignReport:
    """Everything one campaign produced, renderable and JSON-able."""

    seed: int
    count: int
    classifications: Dict[str, int] = field(default_factory=dict)
    shapes: Dict[str, int] = field(default_factory=dict)
    skips: Dict[str, int] = field(default_factory=dict)
    #: per-rule coverage: how many cases exercised each stable rule
    #: id (lint diagnostics, eligibility verdicts, parallel-axis
    #: rules) — the feedback signal for steering the generator at
    #: under-covered rules.
    rules: Dict[str, int] = field(default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)
    budget_exhausted: bool = False
    cases_run: int = 0

    @property
    def ok(self) -> bool:
        """No findings at all?"""
        return not self.failures

    def render(self) -> str:
        """The deterministic human-readable report."""
        lines = [
            f"fuzz campaign: seed={self.seed} "
            f"cases={self.cases_run}/{self.count}"
            + (" (budget exhausted)" if self.budget_exhausted else "")
        ]
        for name in ALL_CLASSES:
            lines.append(
                f"  {name:<22} {self.classifications.get(name, 0)}"
            )
        if self.shapes:
            shapes = " ".join(
                f"{shape}={count}"
                for shape, count in sorted(self.shapes.items())
            )
            lines.append(f"shapes: {shapes}")
        if self.skips:
            skips = " ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.skips.items())
            )
            lines.append(f"skips: {skips}")
        if self.rules:
            rules = " ".join(
                f"{rule}={count}"
                for rule, count in sorted(self.rules.items())
            )
            lines.append(f"rules exercised: {rules}")
        if not self.failures:
            lines.append("failures: none")
        for failure in self.failures:
            lines.append(
                f"--- failure: case {failure.index} "
                f"[{failure.shape}] {failure.classification} "
                f"(shrunk {failure.shrink_steps} steps)"
            )
            lines.append(f"    {failure.detail}")
            if failure.corpus_path:
                lines.append(f"    written: {failure.corpus_path}")
            lines.append("    minimal reproducer:")
            for line in failure.shrunk_script.rstrip().splitlines():
                lines.append(f"    | {line}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """The machine-readable report."""
        return json.dumps(
            {
                "seed": self.seed,
                "count": self.count,
                "cases_run": self.cases_run,
                "budget_exhausted": self.budget_exhausted,
                "ok": self.ok,
                "classifications": {
                    name: self.classifications.get(name, 0)
                    for name in ALL_CLASSES
                },
                "shapes": dict(sorted(self.shapes.items())),
                "skips": dict(sorted(self.skips.items())),
                "rules": dict(sorted(self.rules.items())),
                "failures": [
                    {
                        "index": f.index,
                        "shape": f.shape,
                        "classification": f.classification,
                        "detail": f.detail,
                        "shrink_steps": f.shrink_steps,
                        "script": f.script,
                        "shrunk_script": f.shrunk_script,
                        "corpus_path": f.corpus_path,
                    }
                    for f in self.failures
                ],
            },
            indent=2,
            sort_keys=False,
        )


def run_campaign(
    seed: int,
    count: int = 200,
    budget_seconds: Optional[float] = None,
    shrink_failures: bool = True,
    use_native: Optional[bool] = None,
    corpus_directory: Optional[str] = None,
    progress: Optional[Callable[[int, str], None]] = None,
    service_mode: bool = False,
    chaos_rate: float = 0.0,
) -> CampaignReport:
    """Run one campaign and return its report.

    ``corpus_directory`` writes every shrunk failure as a corpus
    entry; ``progress`` (case index, classification) is called after
    each case — the CLI uses it for a live line. ``service_mode``
    round-trips every locally-clean case through a live HTTP service
    (see :mod:`repro.fuzz.service_mode`), with ``chaos_rate``-driven
    sandbox-worker kills/hangs and launch faults injected; a crash
    that leaks out of the recovery ladder is a ``service-crash``
    finding.
    """
    rng = random.Random(int(seed))
    harness = DifferentialHarness(use_native=use_native)
    roundtrip = None
    if service_mode:
        from .service_mode import ServiceRoundTrip

        roundtrip = ServiceRoundTrip(
            chaos_rate=chaos_rate,
            chaos_seed=int(seed),
            use_native=use_native,
        )
    report = CampaignReport(seed=int(seed), count=int(count))
    deadline = (
        time.monotonic() + budget_seconds
        if budget_seconds is not None
        else None
    )
    try:
        _run_cases(
            rng, harness, roundtrip, report, count, deadline,
            shrink_failures, corpus_directory, progress, seed,
        )
    finally:
        if roundtrip is not None:
            roundtrip.close()
    return report


def _run_cases(
    rng,
    harness: DifferentialHarness,
    roundtrip,
    report: CampaignReport,
    count: int,
    deadline: Optional[float],
    shrink_failures: bool,
    corpus_directory: Optional[str],
    progress: Optional[Callable[[int, str], None]],
    seed: int,
) -> None:
    for index in range(count):
        if deadline is not None and time.monotonic() > deadline:
            report.budget_exhausted = True
            break
        case = generate_case(rng)
        outcome = harness.classify(case)
        classification, detail = (
            outcome.classification, outcome.detail
        )
        if roundtrip is not None and not outcome.failed:
            scalar = outcome.legs.get("scalar")
            if scalar is not None and scalar.status == "ok":
                finding = roundtrip.check(case, scalar.value)
                if finding is not None:
                    classification, detail = finding
        report.cases_run += 1
        report.shapes[case.shape] = report.shapes.get(case.shape, 0) + 1
        report.classifications[classification] = (
            report.classifications.get(classification, 0) + 1
        )
        for skip in outcome.skips:
            report.skips[skip] = report.skips.get(skip, 0) + 1
        for rule in outcome.rules:
            report.rules[rule] = report.rules.get(rule, 0) + 1
        if progress is not None:
            progress(index, classification)
        if classification not in FAILURE_CLASSES:
            continue

        target = classification
        spec, steps = case.spec, 0
        # Service findings depend on live service state (chaos
        # sequence, breaker, queue); the local harness cannot
        # reproduce them, so they are reported unshrunk.
        if shrink_failures and not target.startswith("service-"):
            def still_fails(candidate) -> bool:
                return (
                    harness.classify(render(candidate)).classification
                    == target
                )

            spec, steps = shrink(case.spec, still_fails)
        shrunk_case = render(spec)
        record = FailureRecord(
            index=index,
            shape=case.shape,
            classification=target,
            detail=detail,
            script=render_script(case),
            shrunk_script=render_script(shrunk_case),
            shrink_steps=steps,
        )
        if corpus_directory is not None:
            import json

            from .corpus import write_entry

            meta = {
                "origin": f"campaign seed={seed} case={index}",
                "prob-mode": shrunk_case.prob_mode,
                "note": detail,
            }
            if shrunk_case.map_texts and shrunk_case.map_call:
                # Bank the lane-batched leg with the script so the
                # corpus replay re-runs the batched rungs, not just
                # the single-problem prints.
                meta["map-call"] = shrunk_case.map_call
                meta["map-texts"] = json.dumps(
                    list(shrunk_case.map_texts)
                )
            record.corpus_path = write_entry(
                record.shrunk_script,
                name=f"fuzz-seed{seed}-case{index}-{target}",
                meta=meta,
                directory=corpus_directory,
            )
        report.failures.append(record)
