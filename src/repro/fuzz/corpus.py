"""The checked-in regression corpus (``tests/corpus/*.dsl``).

Every fuzzer finding ends its life here: a minimal, self-contained
DSL script (declarations plus ``let``/``print`` driver statements)
with a ``// fuzz:`` metadata header, replayed by tier-1 across every
backend on every run. Seeded entries cover the known-tricky shapes —
empty sequences, size-1 domains below the vector crossover, ``S = i``
ring schedules, log-space reductions, empty CSR transition sets —
so the replay net exists even while the fuzzer finds nothing new.

Header format, one ``// fuzz: key = value`` line per key::

    // fuzz: name = ring-schedule-collision
    // fuzz: origin = seeded          (or: campaign seed=N case=K)
    // fuzz: prob-mode = direct
    // fuzz: note = free text

Recognised keys: ``name``, ``origin``, ``prob-mode`` (engine mode
for the replay, default ``direct``), ``expect`` (space-separated
golden printed values, checked against the scalar leg), ``note``,
``schedule`` (``autotune`` adds a scalar leg under the
cost-model-guided autotuner, compared against the min-partition
baseline like any backend — the fuzzer's ``schedule-divergence``
check in corpus form), and the map-leg pair ``map-call`` /
``map-texts``: a map template
call (``d(a, |a|, _, |_|)``) plus a JSON list of member texts (JSON,
so empty-string members survive). Entries carrying both replay the
lane-batched map path on every backend — scalar loop, batched-vector
and batched-native compared member for member.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.errors import CodegenError, DslError
from .differential import values_agree

__all__ = [
    "CorpusEntry",
    "ReplayReport",
    "corpus_dir",
    "load_corpus",
    "replay_entry",
    "write_entry",
]

#: backends a corpus entry replays on (native auto-skips without a
#: toolchain; vector skips per-kernel on ineligibility).
REPLAY_BACKENDS = ("scalar", "vector", "native")


def corpus_dir() -> str:
    """The default checked-in corpus location."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "corpus")


@dataclass
class CorpusEntry:
    """One corpus script plus its parsed metadata."""

    name: str
    path: str
    script: str
    meta: Dict[str, str] = field(default_factory=dict)

    @property
    def prob_mode(self) -> str:
        """Engine probability mode for the replay."""
        return self.meta.get("prob-mode", "direct")

    @property
    def expected(self) -> Optional[List[str]]:
        """Golden printed values, when the entry pins them."""
        raw = self.meta.get("expect")
        return raw.split() if raw else None

    @property
    def map_call(self) -> Optional[str]:
        """The map template call text, for map-leg entries."""
        return self.meta.get("map-call") or None

    @property
    def map_texts(self) -> Optional[List[str]]:
        """Member texts of the replayed map batch (JSON list)."""
        raw = self.meta.get("map-texts")
        if not raw:
            return None
        texts = json.loads(raw)
        if not isinstance(texts, list):
            raise ValueError(
                f"map-texts must be a JSON list, got {texts!r}"
            )
        return [str(text) for text in texts]


@dataclass
class ReplayReport:
    """The outcome of replaying one entry across backends."""

    entry: CorpusEntry
    values: Dict[str, List[object]] = field(default_factory=dict)
    skipped: Tuple[str, ...] = ()
    ok: bool = True
    detail: str = ""


def _parse_meta(script: str) -> Dict[str, str]:
    meta: Dict[str, str] = {}
    for line in script.splitlines():
        stripped = line.strip()
        if not stripped.startswith("// fuzz:"):
            if stripped and not stripped.startswith("//"):
                break
            continue
        body = stripped[len("// fuzz:"):].strip()
        key, _, value = body.partition("=")
        meta[key.strip()] = value.strip()
    return meta


def load_corpus(directory: Optional[str] = None) -> List[CorpusEntry]:
    """Read every ``*.dsl`` under ``directory``, sorted by filename."""
    directory = directory or corpus_dir()
    entries = []
    if not os.path.isdir(directory):
        return entries
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".dsl"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            script = handle.read()
        meta = _parse_meta(script)
        entries.append(
            CorpusEntry(
                name=meta.get("name", filename[:-4]),
                path=path,
                script=script,
                meta=meta,
            )
        )
    return entries


def write_entry(
    script: str,
    name: str,
    meta: Dict[str, str],
    directory: Optional[str] = None,
) -> str:
    """Write a corpus entry; returns its path.

    ``name`` becomes the filename (and the ``name`` key unless the
    metadata already carries one). Existing entries of the same name
    are overwritten — re-finding a known bug refreshes its script.
    """
    directory = directory or corpus_dir()
    os.makedirs(directory, exist_ok=True)
    header = {"name": name}
    header.update(meta)
    lines = [
        f"// fuzz: {key} = {value}"
        for key, value in header.items()
        if value
    ]
    path = os.path.join(directory, f"{name}.dsl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n" + script)
    return path


def replay_entry(
    entry: CorpusEntry,
    backends: Tuple[str, ...] = REPLAY_BACKENDS,
) -> ReplayReport:
    """Replay one entry across ``backends`` and compare printed
    values pairwise (scalar is the baseline; floats use the shared
    agreement policy). Forced-backend ineligibility (CodegenError) is
    a recorded skip, not a failure — native also skips when no
    toolchain is present."""
    from ..runtime import native as native_rt
    from ..runtime.engine import Engine
    from ..runtime.program import ProgramRunner, run_script

    report = ReplayReport(entry)
    skipped: List[str] = []
    map_texts = entry.map_texts
    script = entry.script
    if map_texts is not None and entry.map_call:
        # The map leg replays through the script-level ``map``
        # statement; the collection is pre-seeded into the runner
        # (bare strings coerce per member), so empty-string members
        # survive where a FASTA round-trip would drop them. Scalar
        # engines sweep per member; vector/native engines take their
        # lane-batched rungs — exactly the fuzzer's map comparison.
        script = (
            script.rstrip("\n")
            + f"\nmap fuzzmap = {entry.map_call} over fuzzdb\n"
        )
    legs = list(backends)
    if entry.meta.get("schedule") == "autotune":
        # Extra leg: scalar backend under the autotuned schedule. A
        # valid schedule only reorders the sweep, so this leg must
        # agree with the scalar baseline exactly.
        legs.append("autotune")
    for backend in legs:
        if backend == "native" and not native_rt.available().ok:
            skipped.append("native: no toolchain")
            continue
        engine = Engine(
            backend="scalar" if backend == "autotune" else backend,
            prob_mode=entry.prob_mode,
            schedule=(
                "autotune"
                if backend == "autotune"
                else "min-partition"
            ),
        )
        try:
            if map_texts is not None and entry.map_call:
                runner = ProgramRunner(engine)
                runner.globals["fuzzdb"] = list(map_texts)
                result = runner.run_text(script)
                values = list(result.values) + list(
                    result.maps["fuzzmap"].values
                )
            else:
                result = run_script(script, engine)
                values = list(result.values)
        except CodegenError as err:
            skipped.append(f"{backend}: {err}")
            continue
        except DslError as err:
            report.ok = False
            report.detail = (
                f"{backend} replay failed: {type(err).__name__}: {err}"
            )
            report.skipped = tuple(skipped)
            return report
        report.values[backend] = values
    report.skipped = tuple(skipped)

    baseline = report.values.get("scalar")
    if baseline is None:
        report.ok = False
        report.detail = "no scalar baseline ran"
        return report
    for backend, values in report.values.items():
        if backend == "scalar":
            continue
        if len(values) != len(baseline):
            report.ok = False
            report.detail = (
                f"{backend} printed {len(values)} values, scalar "
                f"printed {len(baseline)}"
            )
            return report
        for index, (a, b) in enumerate(zip(baseline, values)):
            if not values_agree(a, b):
                report.ok = False
                report.detail = (
                    f"print #{index}: scalar={a!r} {backend}={b!r}"
                )
                return report
    expected = entry.expected
    if expected is not None:
        if len(expected) != len(baseline):
            report.ok = False
            report.detail = (
                f"expected {len(expected)} printed values, got "
                f"{len(baseline)}"
            )
            return report
        for index, (want, got) in enumerate(zip(expected, baseline)):
            got_text = repr(got) if isinstance(got, str) else str(got)
            if isinstance(got, float):
                if not values_agree(float(want), got):
                    report.ok = False
                    report.detail = (
                        f"print #{index}: expected {want}, got {got}"
                    )
                    return report
            elif got_text != want:
                report.ok = False
                report.detail = (
                    f"print #{index}: expected {want!r}, got "
                    f"{got_text!r}"
                )
                return report
    return report
