"""The differential harness: one case, every rung, one verdict.

Each generated case is bound through the service layer (the same
admission path a request takes) and executed on every backend leg the
environment supports:

* forced ``scalar`` — the semantic baseline;
* forced ``vector`` — must agree *and* must fail eligibility exactly
  when :func:`repro.ir.npbackend.eligibility` says so, naming the
  rule;
* forced ``native`` — ditto against
  :func:`repro.ir.cbackend.native_eligibility` (skipped with a
  counter when no toolchain is present);
* the auto ladder under the existing
  :class:`~repro.resilience.oracle.DivergenceOracle` — a clean
  re-execution against an independently generated reference backend;
* forced scalar under the table sanitizer (poison-filled tables);
* the memoised interpreter (direct mode, small domains) — an
  independent evaluator of the *source*, catching bugs every code
  generator shares;
* forced scalar under ``schedule="autotune"`` — the cost-model-guided
  schedule must reproduce the min-partition table *bitwise*: a valid
  schedule only reorders when cells are computed, never what they
  compute;
* the lane-batched ``map`` path when the case carries a problem
  group: batched and unbatched sweeps must agree with scalar.

Verdicts (:data:`FAILURE_CLASSES` are the failing ones):

* ``parity-ok`` — every leg agrees, static and dynamic checks clean;
* ``rejected`` — the static lint *and* the runtime agree the program
  is bad (consistent rejection is not a bug);
* ``lint-gap`` — static and dynamic disagree: the sanitizer trips on
  a lint-clean program, or lint rejects a program that runs clean;
* ``eligibility-mismatch`` — a forced backend's behaviour contradicts
  its eligibility verdict (or its error hides the failed rule);
* ``divergence`` — two rungs produce different answers;
* ``schedule-divergence`` — the autotuned schedule's table is not
  bitwise identical to the min-partition baseline (an invalid winner
  slipped past the autotuner's verifier gate, or the partition loop
  mishandles the reordering);
* ``race-gap`` — the parallel-safety analyzer and reality disagree in
  either direction: a CONFIRMED space axis diverges under a
  multi-threaded native run (analyzer unsound for this kernel), or an
  axis is REFUSED on a kernel every leg agrees on (analyzer
  incomplete — generated kernels carry verified schedules, so every
  refusal is a completeness regression worth a reproducer);
* ``crash`` — any leg dies in a way neither the lint nor the
  taxonomy above accounts for.

Every outcome also carries the set of stable rule ids the case
exercised (lint diagnostics, eligibility verdicts, parallel-axis
rules), which campaign reports aggregate into per-rule coverage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..lang.errors import (
    BackendDivergenceError,
    CodegenError,
    DslError,
    NativeBuildError,
    SanitizerError,
)
from ..runtime.parity import tables_agree
from .grammar import FuzzCase

__all__ = [
    "FAILURE_CLASSES",
    "CaseOutcome",
    "DifferentialHarness",
    "values_agree",
]

#: classifications that count as fuzzer findings, most severe first.
#: The ``service-*`` pair only occurs in service round-trip campaigns
#: (see :mod:`repro.fuzz.service_mode`).
FAILURE_CLASSES = (
    "crash",
    "service-crash",
    "divergence",
    "race-gap",
    "map-native-divergence",
    "schedule-divergence",
    "service-divergence",
    "eligibility-mismatch",
    "lint-gap",
)

#: all classifications, severity order (campaign reports follow it).
ALL_CLASSES = FAILURE_CLASSES + ("rejected", "parity-ok")

#: interpreter-oracle ceiling: the memoised reference is quadratic in
#: practice, so only small tables are cross-checked against it.
ORACLE_CELL_LIMIT = 600


def values_agree(a, b) -> bool:
    """Scalar agreement under the shared cross-backend policy, with
    slack for the log-space exp round-trip on extracted values."""
    if a is None or b is None:
        return a is b
    x, y = np.asarray(a), np.asarray(b)
    if x.dtype.kind in "iub" and y.dtype.kind in "iub":
        return bool(x == y)
    fx, fy = float(x), float(y)
    if math.isinf(fx) or math.isinf(fy):
        return fx == fy
    return bool(np.isclose(fx, fy, rtol=1e-8, atol=1e-11))


@dataclass
class LegResult:
    """One backend leg of a case."""

    backend: str
    status: str  # "ok" | "refused" | "error" | "skipped"
    value: object = None
    table: Optional[np.ndarray] = None
    error_type: str = ""
    error: str = ""


@dataclass
class CaseOutcome:
    """A classified case: the verdict plus everything behind it."""

    case: FuzzCase
    classification: str
    detail: str = ""
    legs: Dict[str, LegResult] = field(default_factory=dict)
    lint_errors: Tuple[str, ...] = ()
    skips: Tuple[str, ...] = ()
    #: stable rule ids this case exercised (sorted); campaign reports
    #: aggregate them into per-rule coverage counts.
    rules: Tuple[str, ...] = ()

    @property
    def failed(self) -> bool:
        """Did this case surface a finding?"""
        return self.classification in FAILURE_CLASSES


class DifferentialHarness:
    """Runs cases through every rung and classifies the outcome.

    Engines persist across cases (one per backend/prob-mode/sanitize
    combination) so the kernel caches stay warm — a campaign revisits
    the same shapes constantly.
    """

    def __init__(self, use_native: Optional[bool] = None) -> None:
        from ..runtime import native as native_rt

        if use_native is None:
            use_native = native_rt.available().ok
        self.use_native = use_native
        self._engines: Dict[Tuple[str, str, bool], object] = {}
        self._oracle = None

    # -- plumbing ------------------------------------------------------------

    def _engine(
        self,
        backend: str,
        prob_mode: str,
        sanitize: bool = False,
        schedule: str = "min-partition",
    ):
        from ..runtime.engine import Engine

        key = (backend, prob_mode, sanitize, schedule)
        engine = self._engines.get(key)
        if engine is None:
            engine = Engine(
                backend=backend,
                prob_mode=prob_mode,
                sanitize=sanitize,
                schedule=schedule,
            )
            self._engines[key] = engine
        return engine

    def _oracle_instance(self):
        if self._oracle is None:
            from ..resilience.oracle import DivergenceOracle

            self._oracle = DivergenceOracle()
        return self._oracle

    # -- classification ------------------------------------------------------

    def classify(self, case: FuzzCase) -> CaseOutcome:
        """Run every applicable leg and produce the verdict.

        The outcome carries every stable rule id the case exercised
        (collected as a side-channel during classification so the ~15
        early-return verdict sites stay untouched).
        """
        self._last_rules: set = set()
        outcome = self._classify(case)
        outcome.rules = tuple(sorted(self._last_rules))
        return outcome

    def _classify(self, case: FuzzCase) -> CaseOutcome:
        """Run every applicable leg and produce the verdict."""
        from ..lang.source import SourceText
        from ..service.programs import ServiceProgram
        from ..verify import lint_checked
        from ..verify.diagnostics import Severity

        legs: Dict[str, LegResult] = {}
        skips: List[str] = []

        # Frontend: the generator promises well-typed programs, so
        # any parse/check refusal is itself a finding.
        try:
            program = ServiceProgram(case.text, lint=False)
            func = program.function(case.function)
            bindings, at, initial = program.bind(case.function, case.args)
            user_schedule = program.user_schedule(case.function)
        except Exception as err:
            return CaseOutcome(
                case, "crash",
                f"frontend rejected a generated program: "
                f"{type(err).__name__}: {err}",
            )

        source = SourceText(case.text, "<fuzz>")
        lint = lint_checked(
            program.checked, prob_mode=case.prob_mode, source=source
        )
        lint_errors = tuple(
            str(d.message)
            for d in lint.report.by_severity(Severity.ERROR)
        )
        self._last_rules.update(d.rule for d in lint.report)

        run_kwargs = dict(
            at=at, initial=initial,
            user_schedule=user_schedule, reduce=case.reduce,
        )

        # -- scalar baseline -------------------------------------------------
        scalar = self._run_leg("scalar", case, func, bindings, run_kwargs)
        legs["scalar"] = scalar
        if scalar.status != "ok":
            if lint_errors:
                return CaseOutcome(
                    case, "rejected",
                    f"static and dynamic rejection agree: "
                    f"{scalar.error_type}",
                    legs, lint_errors,
                )
            return CaseOutcome(
                case, "crash",
                f"scalar leg failed on a lint-clean program: "
                f"{scalar.error_type}: {scalar.error}",
                legs, lint_errors,
            )

        # -- eligibility vs forced behaviour ---------------------------------
        from ..ir import npbackend
        from ..ir.cbackend import native_eligibility
        from ..runtime import native as native_rt

        kernel = scalar.value_kernel
        # Parallel-safety certificate: feeds both directions of the
        # race-gap check and the rules-coverage report. Certify on
        # the extents the case actually ran (the scalar table's
        # shape): the engine may have validated a schedule only on
        # this concrete box, and judging it against the nominal
        # stand-in box would manufacture spurious refusals.
        try:
            from ..verify.races import parallelism_certificate

            extents = (
                tuple(int(e) for e in scalar.table.shape)
                if scalar.table is not None
                else None
            )
            parallel = parallelism_certificate(kernel, extents)
        except Exception:
            parallel = None
        if parallel is not None:
            for axis in parallel.axes:
                if axis.status == "refused" and axis.rule:
                    self._last_rules.add(axis.rule)
            if parallel.ok:
                self._last_rules.add("R-PAR-CERT")
        vector_verdict = npbackend.eligibility(kernel)
        self._last_rules.add(vector_verdict.rule)
        vector = self._run_leg("vector", case, func, bindings, run_kwargs)
        legs["vector"] = vector
        mismatch = self._eligibility_mismatch(
            "vector", vector, vector_verdict
        )
        if mismatch:
            return CaseOutcome(
                case, "eligibility-mismatch", mismatch, legs, lint_errors
            )
        if vector.status == "error":
            return CaseOutcome(
                case, "crash",
                f"vector leg failed: {vector.error_type}: {vector.error}",
                legs, lint_errors,
            )

        if self.use_native and native_rt.available().ok:
            nat_verdict = native_eligibility(kernel)
            self._last_rules.add(nat_verdict.rule)
            nat = self._run_leg("native", case, func, bindings, run_kwargs)
            legs["native"] = nat
            mismatch = self._eligibility_mismatch(
                "native", nat, nat_verdict
            )
            if mismatch:
                return CaseOutcome(
                    case, "eligibility-mismatch", mismatch,
                    legs, lint_errors,
                )
            if nat.status == "error":
                return CaseOutcome(
                    case, "crash",
                    f"native leg failed: {nat.error_type}: {nat.error}",
                    legs, lint_errors,
                )
        else:
            legs["native"] = LegResult("native", "skipped")
            skips.append("native-unavailable")

        # -- cross-backend agreement -----------------------------------------
        for name in ("vector", "native"):
            leg = legs[name]
            if leg.status != "ok":
                continue
            agree_tables = leg.table is None or tables_agree(
                scalar.table, leg.table
            )
            agree_values = values_agree(scalar.value, leg.value)
            if agree_tables and agree_values:
                continue
            # A native miss under a live CONFIRMED space certificate
            # with real threads is the analyzer being *unsound* for
            # this kernel — a strictly worse finding than a plain
            # codegen divergence, so it gets its own class.
            if (
                name == "native"
                and parallel is not None
                and parallel.space.confirmed
                and native_rt.effective_threads() > 1
            ):
                return CaseOutcome(
                    case, "race-gap",
                    f"space axis certified race-free but the "
                    f"multi-threaded native leg diverges from "
                    f"scalar (scalar={scalar.value!r} "
                    f"native={leg.value!r})",
                    legs, lint_errors, tuple(skips),
                )
            detail = (
                f"scalar and {name} tables disagree"
                if not agree_tables
                else f"scalar={scalar.value!r} {name}={leg.value!r}"
            )
            return CaseOutcome(
                case, "divergence", detail,
                legs, lint_errors, tuple(skips),
            )

        # -- the divergence oracle on the auto rung ---------------------------
        oracle_detail = self._oracle_leg(
            case, func, bindings, run_kwargs, scalar, legs
        )
        if oracle_detail:
            return CaseOutcome(
                case, "divergence", oracle_detail,
                legs, lint_errors, tuple(skips),
            )

        # -- interpreter reference (independent of every backend) -------------
        reference_detail = self._reference_leg(
            case, func, bindings, scalar, legs
        )
        if reference_detail:
            return CaseOutcome(
                case, "divergence", reference_detail,
                legs, lint_errors, tuple(skips),
            )

        # -- sanitizer vs lint -------------------------------------------------
        sanitized = self._run_leg(
            "scalar", case, func, bindings, run_kwargs, sanitize=True
        )
        legs["sanitized"] = sanitized
        if sanitized.status == "error":
            if sanitized.error_type == "SanitizerError":
                if lint_errors:
                    return CaseOutcome(
                        case, "rejected",
                        "lint and sanitizer agree the program reads "
                        "out of bounds",
                        legs, lint_errors, tuple(skips),
                    )
                return CaseOutcome(
                    case, "lint-gap",
                    f"sanitizer tripped on a lint-clean program: "
                    f"{sanitized.error}",
                    legs, lint_errors, tuple(skips),
                )
            return CaseOutcome(
                case, "crash",
                f"sanitized leg failed: {sanitized.error_type}: "
                f"{sanitized.error}",
                legs, lint_errors, tuple(skips),
            )
        if lint_errors:
            return CaseOutcome(
                case, "lint-gap",
                "lint rejects a program every dynamic check passes: "
                + "; ".join(lint_errors),
                legs, lint_errors, tuple(skips),
            )
        if sanitized.table is not None and not tables_agree(
            scalar.table, sanitized.table
        ):
            return CaseOutcome(
                case, "divergence",
                "sanitized and plain scalar tables disagree",
                legs, lint_errors, tuple(skips),
            )

        # -- autotuned schedule parity -----------------------------------------
        autotune_finding = self._autotune_leg(
            case, func, bindings, run_kwargs, scalar, legs
        )
        if autotune_finding:
            return CaseOutcome(
                case, autotune_finding[0], autotune_finding[1],
                legs, lint_errors, tuple(skips),
            )

        # -- lane-batched map groups ------------------------------------------
        if case.map_texts:
            map_detail = self._map_leg(case, func, bindings)
            if map_detail:
                return CaseOutcome(
                    case, map_detail[0], map_detail[1],
                    legs, lint_errors, tuple(skips),
                )

        # -- analyzer completeness --------------------------------------------
        # Every leg agrees, static and dynamic checks are clean — if
        # the parallel-safety analyzer still refused an axis, that is
        # a completeness gap: generated kernels carry verified
        # schedules, whose S-delta proofs are exactly what the space
        # obligation re-derives, so a refusal here deserves a shrunk
        # reproducer even though the serial fallback keeps it correct.
        if parallel is not None and not parallel.ok:
            refused = [
                a for a in parallel.axes if a.status == "refused"
            ]
            return CaseOutcome(
                case, "race-gap",
                "analyzer refused "
                + ", ".join(
                    f"{a.axis} [{a.rule}]: {a.detail}" for a in refused
                )
                + " on a kernel every leg agrees on",
                legs, lint_errors, tuple(skips),
            )

        return CaseOutcome(
            case, "parity-ok", "", legs, lint_errors, tuple(skips)
        )

    # -- legs ----------------------------------------------------------------

    def _run_leg(
        self, backend, case, func, bindings, run_kwargs, sanitize=False
    ) -> LegResult:
        engine = self._engine(backend, case.prob_mode, sanitize)
        name = "sanitized" if sanitize else backend
        try:
            result = engine.run(func, dict(bindings), **run_kwargs)
        except CodegenError as err:
            return LegResult(name, "refused", error_type="CodegenError",
                             error=str(err))
        except NativeBuildError as err:
            return LegResult(
                name, "refused",
                error_type="NativeBuildError", error=str(err),
            )
        except DslError as err:
            return LegResult(
                name, "error",
                error_type=type(err).__name__, error=str(err),
            )
        except Exception as err:  # a raw backend crash — the
            # strongest possible finding, never let it kill the run
            return LegResult(
                name, "error",
                error_type=type(err).__name__, error=str(err),
            )
        leg = LegResult(name, "ok", value=result.value,
                        table=result.table)
        leg.value_kernel = result.kernel
        return leg

    @staticmethod
    def _eligibility_mismatch(
        name: str, leg: LegResult, verdict
    ) -> str:
        """Forced behaviour must match the static verdict exactly."""
        if verdict.ok and leg.status == "refused":
            return (
                f"{name} eligibility says ok but the forced engine "
                f"refused: {leg.error}"
            )
        if not verdict.ok:
            if leg.status == "ok":
                return (
                    f"{name} eligibility says no [{verdict.rule}] but "
                    f"the forced engine ran anyway"
                )
            if leg.status == "refused" and (
                f"[{verdict.rule}]" not in leg.error
            ):
                return (
                    f"{name} refusal does not name the failed rule "
                    f"[{verdict.rule}]: {leg.error}"
                )
        return ""

    def _oracle_leg(
        self, case, func, bindings, run_kwargs, scalar, legs
    ) -> str:
        """Clean re-execution under the DivergenceOracle.

        Returns a non-empty detail string on divergence.
        """
        from ..runtime.values import Bindings

        engine = self._engine("auto", case.prob_mode)
        bound = Bindings(dict(bindings))
        try:
            domain = engine.domain_of(func, bound, run_kwargs["initial"])
            schedule = engine.schedule_for(
                func, domain, run_kwargs["user_schedule"]
            )
            compiled = engine.compile(func, schedule, domain)
            ctx = engine.build_context(compiled, bound, domain)
            base = engine._table_for(compiled.kernel, domain)
            lo = schedule.min_partition(domain)
            hi = schedule.max_partition(domain)
            _verdict, recovered = self._oracle_instance().classify(
                compiled, ctx, base, lo, hi
            )
        except BackendDivergenceError as err:
            legs["oracle"] = LegResult(
                "oracle", "error",
                error_type="BackendDivergenceError", error=str(err),
            )
            return f"divergence oracle: {err}"
        except Exception as err:
            legs["oracle"] = LegResult(
                "oracle", "error",
                error_type=type(err).__name__, error=str(err),
            )
            return f"oracle leg failed: {type(err).__name__}: {err}"
        legs["oracle"] = LegResult(
            "oracle", "ok", table=recovered,
        )
        if scalar.table is not None and not tables_agree(
            scalar.table, recovered
        ):
            return (
                "oracle-recovered table disagrees with the scalar leg"
            )
        return ""

    def _reference_leg(self, case, func, bindings, scalar, legs) -> str:
        """The memoised interpreter as an independent evaluator."""
        from ..runtime.interpreter import memoised
        from ..runtime.values import Bindings

        if case.prob_mode != "direct" or scalar.table is None:
            return ""
        if scalar.table.size > ORACLE_CELL_LIMIT:
            return ""
        bound = Bindings(dict(bindings))
        try:
            oracle = memoised(func, bound)
            expected = np.array(
                [
                    oracle(point)
                    for point in np.ndindex(scalar.table.shape)
                ],
                dtype=scalar.table.dtype,
            ).reshape(scalar.table.shape)
        except Exception as err:
            legs["interpreter"] = LegResult(
                "interpreter", "error",
                error_type=type(err).__name__, error=str(err),
            )
            return (
                f"memoised interpreter failed on a program every "
                f"backend runs: {type(err).__name__}: {err}"
            )
        legs["interpreter"] = LegResult(
            "interpreter", "ok", table=expected
        )
        if not tables_agree(expected, scalar.table):
            return (
                "compiled table disagrees with the memoised "
                "interpreter"
            )
        return ""

    def _autotune_leg(
        self, case, func, bindings, run_kwargs, scalar, legs
    ) -> Optional[Tuple[str, str]]:
        """Autotuned vs min-partition schedule on the scalar backend.

        A valid schedule only reorders *when* cells are computed —
        each cell's value is a pure function of already-final cells —
        so the same backend under a different schedule must produce a
        **bitwise identical** table. A mismatch means an invalid
        winner slipped past the autotuner's verifier gate (or the
        partition loop mishandles the reordered sweep):
        ``schedule-divergence``.
        """
        if run_kwargs.get("user_schedule") is not None:
            return None  # a user schedule overrides the autotuner
        engine = self._engine(
            "scalar", case.prob_mode, schedule="autotune"
        )
        try:
            result = engine.run(func, dict(bindings), **run_kwargs)
        except Exception as err:
            legs["autotune"] = LegResult(
                "autotune", "error",
                error_type=type(err).__name__, error=str(err),
            )
            return (
                "crash",
                f"autotune leg failed on a program the scalar leg "
                f"runs: {type(err).__name__}: {err}",
            )
        legs["autotune"] = LegResult(
            "autotune", "ok", value=result.value, table=result.table,
        )
        if (
            scalar.table is not None
            and result.table is not None
            and not np.array_equal(
                scalar.table, result.table, equal_nan=True
            )
        ):
            return (
                "schedule-divergence",
                f"autotuned schedule "
                f"{result.kernel.schedule} table differs bitwise "
                f"from the min-partition baseline",
            )
        if not values_agree(scalar.value, result.value):
            return (
                "schedule-divergence",
                f"autotuned schedule value {result.value!r} != "
                f"min-partition {scalar.value!r}",
            )
        return None

    def _map_leg(self, case, func, bindings) -> Optional[Tuple[str, str]]:
        """Batched vs unbatched vs scalar ``map`` sweeps."""
        from ..runtime.engine import Engine
        from ..runtime.values import Sequence

        template = bindings[case.map_param]
        problems = [
            {case.map_param: Sequence(text, template.alphabet)}
            for text in case.map_texts
        ]
        base = {
            k: v for k, v in bindings.items() if k != case.map_param
        }
        try:
            batched = self._engine("auto", case.prob_mode).map_run(
                func, base, problems, reduce=case.reduce
            )
            plain = Engine(
                backend="auto", prob_mode=case.prob_mode,
                batching=False,
            ).map_run(func, base, problems, reduce=case.reduce)
            scalar = self._engine("scalar", case.prob_mode).map_run(
                func, base, problems, reduce=case.reduce
            )
        except Exception as err:
            return (
                "crash",
                f"map leg failed: {type(err).__name__}: {err}",
            )
        for name, other in (
            ("unbatched", plain.values), ("scalar", scalar.values)
        ):
            for index, (a, b) in enumerate(
                zip(batched.values, other)
            ):
                if not values_agree(a, b):
                    return (
                        "divergence",
                        f"map problem {index}: batched={a!r} "
                        f"{name}={b!r}",
                    )

        # Forced batched-native leg: the batched C entry point must
        # reproduce the scalar sweep member for member. Classified
        # apart from plain "divergence" — a miss here implicates the
        # batched emission (ragged tails, per-member bound columns),
        # not the kernel body.
        if self.use_native:
            try:
                native = self._engine(
                    "native", case.prob_mode
                ).map_run(func, base, problems, reduce=case.reduce)
            except (CodegenError, NativeBuildError):
                return None  # ineligible kernel: a refusal, not a bug
            except Exception as err:
                return (
                    "crash",
                    f"batched-native map leg failed: "
                    f"{type(err).__name__}: {err}",
                )
            for index, (a, b) in enumerate(
                zip(native.values, scalar.values)
            ):
                if not values_agree(a, b):
                    rungs = ",".join(native.batched_backends)
                    return (
                        "map-native-divergence",
                        f"map problem {index}: native({rungs})={a!r} "
                        f"scalar={b!r}",
                    )
        return None
