"""Seeded, deterministic draws over the case-spec grammar.

The generator is biased toward the features that gate backend
eligibility and have historically hidden parity bugs, rather than
sampling the grammar uniformly:

* tiny domains (empty sequences, size-1 extents) below the vector
  crossover;
* user schedules including the ``S = i`` ring shape (pure-space
  column → the windowed native entry);
* range and CSR reductions (vector-ineligibility, empty-reduction
  semantics);
* log-space probability mode;
* ``map`` problem groups (the lane-batching rung).

Determinism contract: draws use only ``random.Random`` seeded with an
``int`` (string/tuple seeds are hash-randomised across processes) and
the module's own weighted-pick helper, which depends only on
``rng.random()`` — so one seed produces the same case stream on every
CPython the repo supports.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .grammar import (
    CallTerm,
    FuzzCase,
    HmmSpec,
    IntDimSpec,
    Range1DSpec,
    Range2DSpec,
    Seq2DSpec,
    render,
)

__all__ = ["generate_case", "generate_spec"]

#: (shape, weight) — seq2d dominates because it covers the most
#: rungs (vector, native, windowed-ring, map batching).
_SHAPE_WEIGHTS = (
    ("seq2d", 46),
    ("hmm", 20),
    ("range2d", 14),
    ("range1d", 10),
    ("intdim", 10),
)

_ALPHABETS = ("acgt", "ab", "abc", "acgu")

#: fixed palette keeps probabilities exactly representable and
#: readably rendered.
_PROBS = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.5, 0.6, 0.75, 0.9, 1.0)


def _pick(rng: random.Random, pairs):
    """Weighted choice using only ``rng.random()``."""
    total = sum(weight for _value, weight in pairs)
    roll = rng.random() * total
    for value, weight in pairs:
        roll -= weight
        if roll < 0:
            return value
    return pairs[-1][0]


def _text(rng: random.Random, alphabet: str, length: int) -> str:
    return "".join(
        alphabet[int(rng.random() * len(alphabet)) % len(alphabet)]
        for _ in range(length)
    )


def _length(rng: random.Random) -> int:
    """Domain extents biased toward the edges: empty, size 1, small,
    and the occasional run above the tiny sizes."""
    return _pick(
        rng,
        ((0, 8), (1, 12), (2, 10), (3, 12), (5, 18),
         (8, 18), (12, 14), (24, 8)),
    )


def _offsets2(rng: random.Random) -> Tuple[int, int]:
    di = _pick(rng, ((-2, 1), (-1, 4), (0, 3)))
    dj = _pick(rng, ((-2, 1), (-1, 4), (0, 3)))
    if di == 0 and dj == 0:
        dj = -1
    return (di, dj)


def _dedup_terms(terms: Sequence[CallTerm]) -> Tuple[CallTerm, ...]:
    seen = []
    for term in terms:
        if term not in seen:
            seen.append(term)
    return tuple(seen)


# ---------------------------------------------------------------------------
# per-shape draws


def _draw_seq2d(rng: random.Random) -> Seq2DSpec:
    ret = _pick(rng, (("int", 7), ("float", 3)))
    combiner = _pick(rng, (("min", 4), ("max", 4), ("add", 2)))
    terms: List[CallTerm] = []
    for _ in range(_pick(rng, ((1, 3), (2, 5), (3, 4)))):
        offsets = _offsets2(rng)
        addend = _pick(
            rng,
            (("none", 4), ("const", 3), ("matrix", 2), ("charcmp", 2)),
        )
        if addend == "matrix" and ret != "int":
            addend = "charcmp"  # matrix entries are ints
        weight = _pick(rng, ((1, 3), (2, 3), (-1, 2), (-2, 1), (3, 1)))
        terms.append(CallTerm(offsets, addend, weight))
    terms = _dedup_terms(terms)

    schedule: Optional[Tuple[int, int]] = None
    ring_ok = all(t.offsets[0] <= -1 for t in terms)
    choice = _pick(
        rng,
        (("auto", 6), ("diag", 2), ("skew", 1), ("ring", 2)),
    )
    if choice == "diag":
        schedule = (1, 1)
    elif choice == "skew":
        schedule = _pick(rng, (((2, 1), 1), ((1, 2), 1), ((2, 3), 1)))
    elif choice == "ring" and ring_ok:
        schedule = (1, 0)

    alphabet = _pick(rng, tuple((a, 1) for a in _ALPHABETS))
    map_texts: Tuple[str, ...] = ()
    if rng.random() < 0.2:
        map_texts = tuple(
            _text(rng, alphabet, _length(rng))
            for _ in range(2 + int(rng.random() * 3))
        )
        # Degenerate members ride along often: an empty sequence
        # (zero-extent domain) and a one-character member exercise
        # the batched native entry's ragged tails and per-member
        # bound columns, where padded-batch bugs live.
        if rng.random() < 0.5:
            map_texts += ("",)
        if rng.random() < 0.5:
            map_texts += (_text(rng, alphabet, 1),)
    reduce = _pick(rng, ((None, 7), ("max", 2), ("min", 1)))
    return Seq2DSpec(
        ret=ret,
        combiner=combiner,
        terms=terms,
        plus_one=rng.random() < 0.4,
        alphabet=alphabet,
        s_text=_text(rng, alphabet, _length(rng)),
        t_text=_text(rng, alphabet, _length(rng)),
        schedule=schedule,
        reduce=reduce,
        map_texts=map_texts,
    )


def _draw_range2d(rng: random.Random) -> Range2DSpec:
    pool = [(1, 0), (0, -1), (1, -1)]
    terms = tuple(
        CallTerm(offsets)
        for offsets in pool
        if rng.random() < 0.75
    ) or (CallTerm((1, -1)),)
    has_diag = any(t.offsets == (1, -1) for t in terms)
    alphabet = _pick(rng, (("acgu", 2), ("ab", 1)))
    return Range2DSpec(
        terms=terms,
        pair_bonus=has_diag and rng.random() < 0.7,
        range_op=_pick(rng, ((None, 3), ("max", 5), ("sum", 2))),
        alphabet=alphabet,
        x_text=_text(rng, alphabet, _length(rng)),
        user_schedule=rng.random() < 0.3,
    )


def _draw_range1d(rng: random.Random) -> Range1DSpec:
    alphabet = _pick(rng, (("ab", 2), ("abc", 1)))
    return Range1DSpec(
        op=_pick(rng, (("max", 4), ("min", 3), ("sum", 3))),
        use_char=rng.random() < 0.5,
        weight=_pick(rng, ((1, 3), (2, 2), (3, 1))),
        alphabet=alphabet,
        s_text=_text(rng, alphabet, _length(rng)),
    )


def _draw_hmm(rng: random.Random) -> HmmSpec:
    alphabet = _pick(rng, (("acgt", 3), ("ab", 2)))
    n_states = _pick(rng, ((1, 3), (2, 5), (3, 2)))
    states = tuple(f"s{k}" for k in range(n_states))
    emissions = []
    for _ in states:
        table = []
        for char in alphabet:
            # Sparse tables exercise the 0-emission path.
            if rng.random() < 0.8:
                table.append((char, _pick(
                    rng, tuple((p, 1) for p in _PROBS)
                )))
        emissions.append(tuple(table))
    transitions: List[Tuple[str, str, float]] = []

    def prob() -> float:
        return _pick(rng, tuple((p, 1) for p in _PROBS))

    # begin feeds a nonempty subset of the middle states; the
    # leftovers have no incoming transitions at all — the empty
    # CSR-reduction edge.
    fed = [name for name in states if rng.random() < 0.7]
    if not fed:
        fed = [states[0]]
    for name in fed:
        transitions.append(("begin", name, prob()))
    for source in states:
        for target in states:
            if rng.random() < 0.35:
                transitions.append((source, target, prob()))
    for source in states:
        if rng.random() < 0.5:
            transitions.append((source, "fin", prob()))
    return HmmSpec(
        op=_pick(rng, (("sum", 6), ("max", 4))),
        use_emission=rng.random() < 0.8,
        alphabet=alphabet,
        states=states,
        emissions=tuple(emissions),
        transitions=tuple(transitions),
        x_text=_text(rng, alphabet, _pick(
            rng, ((0, 8), (1, 12), (2, 10), (4, 16), (6, 14), (10, 10))
        )),
        prob_mode=_pick(rng, (("direct", 6), ("logspace", 4))),
    )


def _draw_intdim(rng: random.Random) -> IntDimSpec:
    terms: List[CallTerm] = []
    for _ in range(_pick(rng, ((1, 4), (2, 6)))):
        offsets = _offsets2(rng)
        addend = _pick(rng, (("none", 5), ("const", 5)))
        terms.append(CallTerm(
            offsets, addend,
            _pick(rng, ((1, 3), (2, 2), (-1, 2))),
        ))
    alphabet = "ab"
    return IntDimSpec(
        combiner=_pick(rng, (("min", 4), ("max", 4), ("add", 2))),
        terms=_dedup_terms(terms),
        alphabet=alphabet,
        s_text=_text(rng, alphabet, _pick(
            rng, ((0, 6), (1, 10), (3, 12), (6, 14), (10, 8))
        )),
        n0=_pick(rng, ((1, 3), (2, 4), (4, 5), (7, 3))),
    )


_DRAWS = {
    "seq2d": _draw_seq2d,
    "range2d": _draw_range2d,
    "range1d": _draw_range1d,
    "hmm": _draw_hmm,
    "intdim": _draw_intdim,
}


def generate_spec(rng: random.Random):
    """Draw one case spec from the grammar."""
    return _DRAWS[_pick(rng, _SHAPE_WEIGHTS)](rng)


def generate_case(rng_or_seed) -> FuzzCase:
    """Draw and render one case.

    Accepts a ``random.Random`` (campaign use: one stream, sequential
    draws) or a plain ``int`` seed for one-off reproduction.
    """
    rng = (
        rng_or_seed
        if isinstance(rng_or_seed, random.Random)
        else random.Random(int(rng_or_seed))
    )
    return render(generate_spec(rng))
