"""Case specs: the fuzzer's structured program grammar.

A *spec* is a small frozen dataclass describing one generated program
— the shape of the recurrence, its descent offsets, the data it
closes over — mirroring the typechecker's grammar so every rendered
program is well-typed by construction. Working at the spec level
(rather than on raw text) is what makes the shrinker tractable: a
shrink step edits the spec and re-renders, so it can never produce a
syntactically broken candidate.

Shapes, chosen to cover every backend-eligibility gate:

* :class:`Seq2DSpec` — the edit-distance / Smith-Waterman family:
  2-D uniform recurrences over two sequences, optional substitution
  matrix, optional user schedule (including the ``S = i`` ring shape
  whose pure-space column dimension exercises the §4.8 windowed
  native entry), optional whole-table reduction, optional ``map``
  problem list (the lane-batching path);
* :class:`Range2DSpec` — the Nussinov family: substring recurrences
  with bounded range reductions (``max(k in i+1 .. j-1 : ...)``);
* :class:`Range1DSpec` — 1-D prefix reductions (vector-ineligible:
  the skip leg of the ladder);
* :class:`HmmSpec` — the forward/Viterbi family over random model
  topologies: CSR transition reductions, emission lookups, states
  with *no* incoming transitions (empty reductions), log space;
* :class:`IntDimSpec` — recurrences with an ``int`` recursion
  dimension whose extent comes from the call site (``initial``).

:func:`render` turns a spec into a :class:`FuzzCase`: declaration-only
DSL source (service-admissible as-is), the function name, JSON-able
arguments in the service binder's format, and — via
:func:`render_script` — a self-contained script with ``let``/``print``
driver statements for the regression corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

__all__ = [
    "CallTerm",
    "FuzzCase",
    "HmmSpec",
    "IntDimSpec",
    "Range1DSpec",
    "Range2DSpec",
    "Seq2DSpec",
    "render",
    "render_script",
    "spec_replace",
]


# ---------------------------------------------------------------------------
# spec dataclasses


@dataclass(frozen=True)
class CallTerm:
    """One recursive-call term of a combiner chain.

    ``offsets`` are per-dimension descent offsets (``f(i-1, j)`` is
    ``(-1, 0)``); ``addend`` attaches extra structure to the call:
    ``"const"`` adds ``weight``, ``"matrix"`` adds a substitution
    lookup, ``"charcmp"`` adds a character-comparison conditional.
    """

    offsets: Tuple[int, ...]
    addend: str = "none"  # none | const | matrix | charcmp
    weight: int = 0


@dataclass(frozen=True)
class Seq2DSpec:
    """2-D uniform recurrence over two sequences."""

    ret: str  # "int" | "float"
    combiner: str  # "min" | "max" | "add"
    terms: Tuple[CallTerm, ...]
    plus_one: bool
    alphabet: str
    s_text: str
    t_text: str
    #: user ``schedule`` coefficients (a, b), or None to search.
    #: ``(1, 0)`` is the ring shape — only valid when every term
    #: descends in ``i`` alone.
    schedule: Optional[Tuple[int, int]] = None
    #: whole-table reduction at extraction time ("max"/"min").
    reduce: Optional[str] = None
    #: extra problem sequences for the ``map`` differential leg.
    map_texts: Tuple[str, ...] = ()

    shape = "seq2d"


@dataclass(frozen=True)
class Range2DSpec:
    """Nussinov-family substring recurrence with range reductions."""

    terms: Tuple[CallTerm, ...]  # offsets from {(1,0),(0,-1),(1,-1)}
    pair_bonus: bool  # diagonal term carries the base-pair conditional
    range_op: Optional[str]  # "max" | "sum" | None
    alphabet: str
    x_text: str
    user_schedule: bool  # declare `schedule f : j - i`

    shape = "range2d"


@dataclass(frozen=True)
class Range1DSpec:
    """1-D prefix recurrence: reduction over every earlier cell."""

    op: str  # "max" | "min" | "sum"
    use_char: bool  # reduction body reads s[k]
    weight: int
    alphabet: str
    s_text: str

    shape = "range1d"


@dataclass(frozen=True)
class HmmSpec:
    """Forward/Viterbi-family recurrence over a random HMM topology."""

    op: str  # "sum" | "max"
    use_emission: bool
    alphabet: str
    #: middle state names (begin/fin are implicit).
    states: Tuple[str, ...]
    #: per-middle-state emission table: ((char, prob), ...).
    emissions: Tuple[Tuple[Tuple[str, float], ...], ...]
    #: (source, target, prob) over begin/fin/middle names.
    transitions: Tuple[Tuple[str, str, float], ...]
    x_text: str
    prob_mode: str = "direct"  # "direct" | "logspace"

    shape = "hmm"


@dataclass(frozen=True)
class IntDimSpec:
    """Recurrence over (index, int) dimensions — the extent of the
    int dimension is fixed by the first call (``initial``)."""

    combiner: str  # "min" | "max" | "add"
    terms: Tuple[CallTerm, ...]  # offsets over (i, n)
    alphabet: str
    s_text: str
    n0: int  # initial value of the int dimension

    shape = "intdim"


def spec_replace(spec, **changes):
    """``dataclasses.replace`` that works on every spec shape."""
    return replace(spec, **changes)


# ---------------------------------------------------------------------------
# rendered case


@dataclass
class FuzzCase:
    """One renderable, runnable fuzz program.

    ``text`` is declaration-only DSL source (what the service admits);
    ``args`` is the service binder's argument format (strings coerce
    to sequences, recursive coordinates are plain ints, globals bind
    by name). ``map_param``/``map_texts`` describe the optional
    lane-batching differential leg.
    """

    spec: object
    text: str
    function: str
    args: Dict[str, object]
    prob_mode: str = "direct"
    reduce: Optional[str] = None
    map_param: Optional[str] = None
    map_texts: Tuple[str, ...] = ()
    #: the script-level ``map`` template call (``f(a, |a|, _, |_|)``)
    #: for corpus entries that replay the lane-batched leg.
    map_call: Optional[str] = None
    #: driver statements (let/print) appended by :func:`render_script`.
    driver: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def shape(self) -> str:
        """The generating spec's shape name."""
        return getattr(self.spec, "shape", "unknown")


# ---------------------------------------------------------------------------
# rendering helpers


def _offset_text(var: str, offset: int) -> str:
    if offset == 0:
        return var
    sign = "+" if offset > 0 else "-"
    return f"{var} {sign} {abs(offset)}"


def _call(func: str, dims: Tuple[str, ...], offsets: Tuple[int, ...]) -> str:
    args = ", ".join(
        _offset_text(dim, off) for dim, off in zip(dims, offsets)
    )
    return f"{func}({args})"


def _weight_text(weight: int, as_float: bool) -> str:
    if as_float:
        # Forcing a float literal keeps the body's checked type FLOAT
        # even when every other operand is an int expression.
        return f"{float(weight)}"
    return str(abs(weight))


def _term_text(
    term: CallTerm, func: str, dims: Tuple[str, ...], ret: str
) -> str:
    call = _call(func, dims, term.offsets)
    as_float = ret == "float"
    if term.addend == "none":
        return call
    if term.addend == "const":
        if term.weight == 0:
            return call
        op = "+" if term.weight > 0 else "-"
        value = _weight_text(abs(term.weight), as_float)
        return f"({call} {op} {value})"
    if term.addend == "matrix":
        return f"({call} + m[s[i - 1], t[j - 1]])"
    if term.addend == "charcmp":
        hit = "1.0" if as_float else "1"
        miss = "0.0" if as_float else "0"
        return (
            f"({call} + (if s[i - 1] == t[j - 1] then {hit} "
            f"else {miss}))"
        )
    raise ValueError(f"unknown addend {term.addend!r}")


def _chain(parts, combiner: str) -> str:
    joiner = {"min": " min ", "max": " max ", "add": " + "}[combiner]
    return joiner.join(parts)


def _matrix_decl(name: str, alphabet: str) -> str:
    """A deterministic full substitution matrix over ``alphabet``.

    Diagonal-heavy like a real scoring matrix: +2 on the diagonal,
    mildly negative off it (the exact values only need to be stable).
    """
    header = " ".join(alphabet)
    lines = [f"matrix {name}[al, al] {{", f"  header {header}"]
    for row_index, row_char in enumerate(alphabet):
        values = []
        for col_index in range(len(alphabet)):
            if row_index == col_index:
                values.append("2")
            else:
                values.append(str(-1 - (row_index + col_index) % 2))
        lines.append(f"  row {row_char} : {' '.join(values)}")
    lines.append("}")
    return "\n".join(lines)


def _guard(terms: Tuple[CallTerm, ...]) -> int:
    """Base-case threshold keeping every descent and data read in
    bounds (offsets reach ``-G``; reads use ``i - 1``/``j - 1``)."""
    deepest = 1
    for term in terms:
        for offset in term.offsets:
            deepest = max(deepest, -offset)
    return deepest


# ---------------------------------------------------------------------------
# per-shape rendering


def _render_seq2d(spec: Seq2DSpec) -> FuzzCase:
    uses_matrix = any(t.addend == "matrix" for t in spec.terms)
    guard = _guard(spec.terms)
    dims = ("i", "j")
    parts = [_term_text(t, "f", dims, spec.ret) for t in spec.terms]
    chain = _chain(parts, spec.combiner)
    if spec.plus_one:
        one = "1.0" if spec.ret == "float" else "1"
        chain = f"({chain}) + {one}"
    base = "i + j" if spec.ret == "int" else "0.0"
    params = []
    if uses_matrix:
        params.append("matrix[al, al] m")
    params += ["seq[al] s", "index[s] i", "seq[al] t", "index[t] j"]
    lines = [f'alphabet al = "{spec.alphabet}"', ""]
    if uses_matrix:
        lines += [_matrix_decl("m", spec.alphabet), ""]
    lines += [
        f"{spec.ret} f({', '.join(params)}) =",
        f"  if i < {guard} then {base}",
        f"  else if j < {guard} then {base}",
        f"  else {chain}",
    ]
    if spec.schedule is not None:
        a, b = spec.schedule
        pieces = []
        if a:
            pieces.append("i" if a == 1 else f"{a}*i")
        if b:
            pieces.append("j" if b == 1 else f"{b}*j")
        lines += ["", f"schedule f : {' + '.join(pieces)}"]
    args: Dict[str, object] = {
        "s": spec.s_text,
        "i": len(spec.s_text),
        "t": spec.t_text,
        "j": len(spec.t_text),
    }
    driver = [f'let a = "{spec.s_text}"', f'let b = "{spec.t_text}"']
    proto = ["m"] if uses_matrix else []
    proto += ["a", "|a|", "b", "|b|"]
    driver.append(f"print f({', '.join(proto)})")
    map_proto = (["m"] if uses_matrix else []) + [
        "a", "|a|", "_", "|_|"
    ]
    return FuzzCase(
        spec=spec,
        text="\n".join(lines) + "\n",
        function="f",
        args=args,
        reduce=spec.reduce,
        map_param="t" if spec.map_texts else None,
        map_texts=spec.map_texts,
        map_call=(
            f"f({', '.join(map_proto)})" if spec.map_texts else None
        ),
        driver=tuple(driver),
    )


def _render_range2d(spec: Range2DSpec) -> FuzzCase:
    parts = []
    for term in spec.terms:
        call = _call("f", ("i", "j"), term.offsets)
        if term.offsets == (1, -1) and spec.pair_bonus:
            call = f"({call} + (if x[i] == x[j - 1] then 1 else 0))"
        parts.append(call)
    if spec.range_op is not None:
        parts.append(
            f"{spec.range_op}(k in i + 1 .. j - 1 : f(i, k) + f(k, j))"
        )
    chain = _chain(parts, "max")
    lines = [
        f'alphabet al = "{spec.alphabet}"',
        "",
        "int f(seq[al] x, index[x] i, index[x] j) =",
        "  if j < i + 2 then 0",
        f"  else ({chain})",
    ]
    if spec.user_schedule:
        lines += ["", "schedule f : j - i"]
    driver = [
        f'let a = "{spec.x_text}"',
        "print f(a, 0, |a|)",
    ]
    return FuzzCase(
        spec=spec,
        text="\n".join(lines) + "\n",
        function="f",
        args={"x": spec.x_text, "i": 0, "j": len(spec.x_text)},
        driver=tuple(driver),
    )


def _render_range1d(spec: Range1DSpec) -> FuzzCase:
    if spec.use_char:
        probe = spec.alphabet[0]
        body = f"f(k) + (if s[k] == '{probe}' then 2 else 1)"
    else:
        body = f"f(k) + {spec.weight}"
    lines = [
        f'alphabet al = "{spec.alphabet}"',
        "",
        "int f(seq[al] s, index[s] i) =",
        "  if i < 1 then 0",
        f"  else {spec.op}(k in 0 .. i - 1 : {body})",
    ]
    driver = [f'let a = "{spec.s_text}"', "print f(a, |a|)"]
    return FuzzCase(
        spec=spec,
        text="\n".join(lines) + "\n",
        function="f",
        args={"s": spec.s_text, "i": len(spec.s_text)},
        driver=tuple(driver),
    )


def _render_hmm(spec: HmmSpec) -> FuzzCase:
    lines = [f'alphabet al = "{spec.alphabet}"', "", "hmm h [al] {"]
    lines.append("  state begin : start")
    for name, emissions in zip(spec.states, spec.emissions):
        if emissions:
            pairs = ", ".join(
                f"{char}: {prob}" for char, prob in emissions
            )
            lines.append(f"  state {name} emits {{ {pairs} }}")
        else:
            lines.append(f"  state {name} emits {{ }}")
    lines.append("  state fin : end")
    for source, target, prob in spec.transitions:
        lines.append(f"  trans {source} -> {target} : {prob}")
    lines.append("}")
    emission = (
        "(if s.isend then 1.0 else s.emission[x[i - 1]]) * "
        if spec.use_emission
        else ""
    )
    lines += [
        "",
        "prob f(hmm h, state[h] s, seq[*] x, index[x] i) =",
        "  if i == 0 then (if s.isstart then 1.0 else 0.0)",
        f"  else {emission}{spec.op}(t in s.transitionsto : "
        "t.prob * f(t.start, i - 1))",
    ]
    driver = [f'let a = "{spec.x_text}"', "print f(h, h.end, a, |a|)"]
    return FuzzCase(
        spec=spec,
        text="\n".join(lines) + "\n",
        function="f",
        args={"x": spec.x_text, "i": len(spec.x_text)},
        prob_mode=spec.prob_mode,
        driver=tuple(driver),
    )


def _render_intdim(spec: IntDimSpec) -> FuzzCase:
    guard = _guard(spec.terms)
    parts = [
        _term_text(t, "f", ("i", "n"), "int") for t in spec.terms
    ]
    chain = _chain(parts, spec.combiner)
    lines = [
        f'alphabet al = "{spec.alphabet}"',
        "",
        "int f(seq[al] s, index[s] i, int n) =",
        f"  if i < {guard} then i + n",
        f"  else if n < {guard} then i + n",
        f"  else {chain}",
    ]
    driver = [
        f'let a = "{spec.s_text}"',
        f"print f(a, |a|, {spec.n0})",
    ]
    return FuzzCase(
        spec=spec,
        text="\n".join(lines) + "\n",
        function="f",
        args={"s": spec.s_text, "i": len(spec.s_text), "n": spec.n0},
        driver=tuple(driver),
    )


_RENDERERS = {
    "seq2d": _render_seq2d,
    "range2d": _render_range2d,
    "range1d": _render_range1d,
    "hmm": _render_hmm,
    "intdim": _render_intdim,
}


def render(spec) -> FuzzCase:
    """Render a spec into a runnable :class:`FuzzCase`."""
    renderer = _RENDERERS.get(getattr(spec, "shape", None))
    if renderer is None:
        raise ValueError(f"unknown spec shape for {spec!r}")
    return renderer(spec)


def render_script(case_or_spec) -> str:
    """A self-contained DSL script for a case: declarations plus the
    ``let``/``print`` driver — the form corpus entries are stored in."""
    case = (
        case_or_spec
        if isinstance(case_or_spec, FuzzCase)
        else render(case_or_spec)
    )
    return case.text + "\n" + "\n".join(case.driver) + "\n"
