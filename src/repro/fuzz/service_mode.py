"""Fuzz leg: round-trip cases through a live HTTP service.

The differential harness checks the *compiler*; this module checks the
*service tier around it*. Each case that passed every local leg is
POSTed to an in-process :class:`~repro.service.server.ComputeService`
behind its real ``http.server`` front end and the replied value is
compared against the trusted scalar leg:

* the service becoming unreachable, or any reply the fault-tolerance
  machinery is supposed to make impossible (HTTP 500 — an exception
  leaked through the supervisor/sandbox/retry stack), classifies as
  ``service-crash`` — the strongest service finding;
* a 200 whose value disagrees with the local scalar run classifies as
  ``service-divergence``;
* load-shedding replies (503 queue-full, 504 deadline) are *correct*
  fault-tolerant behaviour, never findings.

Under ``chaos_rate`` the service runs with a deterministic
:class:`~repro.resilience.faults.FaultPlan` that kills and hangs the
crash-isolation sandbox workers (plus classic launch faults), so the
fuzzer exercises the whole recovery ladder: worker restart, circuit
breaker, native demotion, retry/backoff. One worker thread keeps the
injection sequence reproducible for a given campaign seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .grammar import FuzzCase

__all__ = ["ServiceRoundTrip", "SERVICE_FAILURE_CLASSES"]

#: service-mode classifications, most severe first.
SERVICE_FAILURE_CLASSES = ("service-crash", "service-divergence")


class ServiceRoundTrip:
    """One live service per prob-mode, shared across a campaign."""

    def __init__(
        self,
        chaos_rate: float = 0.0,
        chaos_seed: int = 0,
        use_native: Optional[bool] = None,
    ) -> None:
        from ..runtime import native as native_rt

        if use_native is None:
            use_native = native_rt.available().ok
        self.chaos_rate = float(chaos_rate)
        self.chaos_seed = int(chaos_seed)
        self.use_native = use_native
        #: prob_mode -> (service, server, thread, host, port)
        self._services: Dict[str, tuple] = {}

    # -- plumbing ------------------------------------------------------------

    def _fault_plan(self):
        if self.chaos_rate <= 0.0:
            return None
        from ..resilience import FaultPlan

        return FaultPlan(
            seed=self.chaos_seed,
            launch_fail_rate=self.chaos_rate,
            truncate_rate=self.chaos_rate,
            worker_kill_rate=self.chaos_rate if self.use_native else 0.0,
            sandbox_hang_rate=(
                self.chaos_rate / 2.0 if self.use_native else 0.0
            ),
            hang_seconds=0.2,
        )

    def _endpoint(self, prob_mode: str) -> Tuple[str, int]:
        entry = self._services.get(prob_mode)
        if entry is None:
            from ..service.server import (
                ComputeService,
                make_http_server,
                serve_in_thread,
            )

            service = ComputeService(
                workers=1,  # single worker: deterministic fault sites
                prob_mode=prob_mode,
                fault_plan=self._fault_plan(),
                # Chaos kills subprocesses: only live when the native
                # sandbox is on (process-wide switch).
                sandbox_native=(
                    True
                    if self.chaos_rate > 0.0 and self.use_native
                    else None
                ),
            )
            server = make_http_server(service, "127.0.0.1", 0)
            thread = serve_in_thread(server)
            host, port = server.server_address[:2]
            entry = (service, server, thread, host, port)
            self._services[prob_mode] = entry
        return entry[3], entry[4]

    # -- the leg -------------------------------------------------------------

    def check(
        self, case: FuzzCase, expected_value: object
    ) -> Optional[Tuple[str, str]]:
        """Round-trip one case; ``(classification, detail)`` or None.

        ``expected_value`` is the local scalar leg's answer — already
        cross-checked against every other rung, so a disagreement here
        indicts the service path, not the compiler.
        """
        from ..service.server import submit_remote
        from .differential import values_agree

        host, port = self._endpoint(case.prob_mode)
        try:
            reply = submit_remote(
                host,
                port,
                case.text,
                case.function,
                args=case.args,
                reduce=case.reduce,
                http_timeout=60.0,
            )
        except Exception as err:
            # The front end is a thread of *this* process: a dead
            # socket means a crash escaped the isolation sandbox.
            return (
                "service-crash",
                f"service unreachable mid-campaign: "
                f"{type(err).__name__}: {err}",
            )
        status = reply.get("_status")
        if status == 200:
            if not values_agree(expected_value, reply.get("value")):
                return (
                    "service-divergence",
                    f"scalar={expected_value!r} "
                    f"service={reply.get('value')!r}",
                )
            return None
        if status in (503, 504):
            # Shed load / missed deadline: correct degraded behaviour.
            return None
        return (
            "service-crash",
            f"service replied {status} to a program every local leg "
            f"accepts: {reply.get('error', '')!r}",
        )

    def close(self) -> None:
        """Shut every service down (drains in-flight work)."""
        for service, server, _thread, _host, _port in (
            self._services.values()
        ):
            try:
                server.shutdown()
                server.server_close()
            finally:
                service.shutdown(drain=True)
        self._services.clear()

    def __enter__(self) -> "ServiceRoundTrip":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
