"""Delta-debugging shrinker over case specs.

Shrinking happens at the *spec* level, not on source text: every
candidate is a structurally smaller spec that still renders to a
well-formed program, so the search space contains no syntax errors —
only semantically smaller neighbours. The algorithm is the classic
greedy fixpoint: try each candidate in a deterministic order, adopt
the first one the predicate still accepts (same failure class, as
judged by the caller), restart; stop when no candidate survives.

Two properties the test suite pins:

* **monotonicity** — every candidate from
  :func:`shrink_candidates` is strictly smaller under
  :func:`spec_size`, so the loop terminates without a step budget
  (one exists anyway, as a backstop);
* **idempotence** — :func:`shrink` of an already-minimal spec
  performs zero steps.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from .grammar import (
    CallTerm,
    HmmSpec,
    IntDimSpec,
    Range1DSpec,
    Range2DSpec,
    Seq2DSpec,
    spec_replace,
)

__all__ = ["shrink", "shrink_candidates", "spec_size"]

#: backstop on shrink steps; monotone candidates terminate far below.
MAX_STEPS = 400


# ---------------------------------------------------------------------------
# size metric


def _term_size(term: CallTerm) -> int:
    size = sum(abs(offset) for offset in term.offsets) + 1
    size += {"none": 0, "const": 1, "matrix": 2, "charcmp": 2}[
        term.addend
    ]
    if term.addend == "const":
        size += abs(term.weight)
    return size


def spec_size(spec) -> int:
    """Strictly-decreasing shrink metric (smaller = simpler)."""
    if isinstance(spec, Seq2DSpec):
        return (
            sum(_term_size(t) for t in spec.terms)
            + len(spec.s_text)
            + len(spec.t_text)
            + (1 if spec.plus_one else 0)
            + (1 if spec.schedule is not None else 0)
            + (1 if spec.reduce is not None else 0)
            + sum(len(text) + 1 for text in spec.map_texts)
        )
    if isinstance(spec, Range2DSpec):
        return (
            sum(_term_size(t) for t in spec.terms)
            + len(spec.x_text)
            + (1 if spec.pair_bonus else 0)
            + (2 if spec.range_op is not None else 0)
            + (1 if spec.user_schedule else 0)
        )
    if isinstance(spec, Range1DSpec):
        return (
            len(spec.s_text)
            + (1 if spec.use_char else 0)
            + abs(spec.weight)
        )
    if isinstance(spec, HmmSpec):
        return (
            len(spec.states) * 2
            + sum(len(table) for table in spec.emissions)
            + len(spec.transitions)
            + len(spec.x_text)
            + (1 if spec.use_emission else 0)
            + (1 if spec.prob_mode == "logspace" else 0)
        )
    if isinstance(spec, IntDimSpec):
        return (
            sum(_term_size(t) for t in spec.terms)
            + len(spec.s_text)
            + spec.n0
        )
    raise ValueError(f"unknown spec {spec!r}")


# ---------------------------------------------------------------------------
# candidate moves


def _shrunk_texts(text: str) -> List[str]:
    """Smaller versions of a data string: empty, halved, one shorter."""
    if not text:
        return []
    out = [""]
    if len(text) > 1:
        out.append(text[: len(text) // 2])
        out.append(text[:-1])
    return out


def _term_moves(term: CallTerm) -> List[CallTerm]:
    moves = []
    if term.addend != "none":
        moves.append(spec_replace(term, addend="none", weight=0))
    if term.addend == "const" and abs(term.weight) > 1:
        moves.append(
            spec_replace(term, weight=1 if term.weight > 0 else -1)
        )
    shallower = tuple(
        -1 if offset < -1 else offset for offset in term.offsets
    )
    if shallower != term.offsets:
        moves.append(spec_replace(term, offsets=shallower))
    return moves


def _seq2d_candidates(spec: Seq2DSpec) -> Iterator[Seq2DSpec]:
    if spec.map_texts:
        yield spec_replace(spec, map_texts=())
        for index in range(len(spec.map_texts)):
            rest = (
                spec.map_texts[:index] + spec.map_texts[index + 1:]
            )
            yield spec_replace(spec, map_texts=rest)
        for index, text in enumerate(spec.map_texts):
            for smaller in _shrunk_texts(text):
                texts = list(spec.map_texts)
                texts[index] = smaller
                yield spec_replace(spec, map_texts=tuple(texts))
    if spec.reduce is not None:
        yield spec_replace(spec, reduce=None)
    if spec.schedule is not None:
        yield spec_replace(spec, schedule=None)
    if spec.plus_one:
        yield spec_replace(spec, plus_one=False)
    if len(spec.terms) > 1:
        for index in range(len(spec.terms)):
            terms = spec.terms[:index] + spec.terms[index + 1:]
            # The ring schedule needs every term descending in i.
            if spec.schedule == (1, 0) and not all(
                t.offsets[0] <= -1 for t in terms
            ):
                continue
            yield spec_replace(spec, terms=terms)
    for index, term in enumerate(spec.terms):
        for move in _term_moves(term):
            terms = list(spec.terms)
            terms[index] = move
            yield spec_replace(spec, terms=tuple(terms))
    for smaller in _shrunk_texts(spec.s_text):
        yield spec_replace(spec, s_text=smaller)
    for smaller in _shrunk_texts(spec.t_text):
        yield spec_replace(spec, t_text=smaller)


def _range2d_candidates(spec: Range2DSpec) -> Iterator[Range2DSpec]:
    if spec.range_op is not None and spec.terms:
        yield spec_replace(spec, range_op=None)
    if spec.user_schedule:
        yield spec_replace(spec, user_schedule=False)
    if spec.pair_bonus:
        yield spec_replace(spec, pair_bonus=False)
    if len(spec.terms) > 1 or (spec.terms and spec.range_op):
        for index in range(len(spec.terms)):
            terms = spec.terms[:index] + spec.terms[index + 1:]
            if not terms and spec.range_op is None:
                continue
            bonus = spec.pair_bonus and any(
                t.offsets == (1, -1) for t in terms
            )
            yield spec_replace(spec, terms=terms, pair_bonus=bonus)
    for smaller in _shrunk_texts(spec.x_text):
        yield spec_replace(spec, x_text=smaller)


def _range1d_candidates(spec: Range1DSpec) -> Iterator[Range1DSpec]:
    if spec.use_char:
        yield spec_replace(spec, use_char=False)
    if spec.weight > 1:
        yield spec_replace(spec, weight=1)
    for smaller in _shrunk_texts(spec.s_text):
        yield spec_replace(spec, s_text=smaller)


def _drop_state(spec: HmmSpec, index: int) -> HmmSpec:
    name = spec.states[index]
    return spec_replace(
        spec,
        states=spec.states[:index] + spec.states[index + 1:],
        emissions=(
            spec.emissions[:index] + spec.emissions[index + 1:]
        ),
        transitions=tuple(
            t for t in spec.transitions if name not in (t[0], t[1])
        ),
    )


def _hmm_candidates(spec: HmmSpec) -> Iterator[HmmSpec]:
    if spec.prob_mode == "logspace":
        yield spec_replace(spec, prob_mode="direct")
    if spec.use_emission:
        yield spec_replace(spec, use_emission=False)
    if len(spec.states) > 1:
        for index in range(len(spec.states)):
            yield _drop_state(spec, index)
    for index in range(len(spec.transitions)):
        yield spec_replace(
            spec,
            transitions=(
                spec.transitions[:index]
                + spec.transitions[index + 1:]
            ),
        )
    for index, table in enumerate(spec.emissions):
        for drop in range(len(table)):
            tables = list(spec.emissions)
            tables[index] = table[:drop] + table[drop + 1:]
            yield spec_replace(spec, emissions=tuple(tables))
    for smaller in _shrunk_texts(spec.x_text):
        yield spec_replace(spec, x_text=smaller)


def _intdim_candidates(spec: IntDimSpec) -> Iterator[IntDimSpec]:
    if len(spec.terms) > 1:
        for index in range(len(spec.terms)):
            yield spec_replace(
                spec, terms=spec.terms[:index] + spec.terms[index + 1:]
            )
    for index, term in enumerate(spec.terms):
        for move in _term_moves(term):
            terms = list(spec.terms)
            terms[index] = move
            yield spec_replace(spec, terms=tuple(terms))
    if spec.n0 > 0:
        yield spec_replace(spec, n0=spec.n0 // 2)
        yield spec_replace(spec, n0=spec.n0 - 1)
    for smaller in _shrunk_texts(spec.s_text):
        yield spec_replace(spec, s_text=smaller)


_CANDIDATES = {
    Seq2DSpec: _seq2d_candidates,
    Range2DSpec: _range2d_candidates,
    Range1DSpec: _range1d_candidates,
    HmmSpec: _hmm_candidates,
    IntDimSpec: _intdim_candidates,
}


def shrink_candidates(spec) -> Iterator[object]:
    """Strictly smaller neighbours of ``spec``, deterministic order."""
    return _CANDIDATES[type(spec)](spec)


# ---------------------------------------------------------------------------
# the loop


def shrink(
    spec,
    predicate: Callable[[object], bool],
    max_steps: int = MAX_STEPS,
) -> Tuple[object, int]:
    """Greedy fixpoint: adopt the first smaller neighbour that still
    satisfies ``predicate``; stop when none does.

    Returns ``(minimal_spec, steps_taken)``. A predicate that raises
    counts as False — a candidate whose classification itself blows
    up is not the same failure.
    """
    steps = 0
    current = spec
    while steps < max_steps:
        adopted = False
        for candidate in shrink_candidates(current):
            assert spec_size(candidate) < spec_size(current), (
                "shrink candidate did not shrink"
            )
            try:
                keep = predicate(candidate)
            except Exception:
                keep = False
            if keep:
                current = candidate
                steps += 1
                adopted = True
                break
        if not adopted:
            break
    return current, steps
