"""The simulated CUDA-class device: spec, timing model, placement."""

from .device import LaunchReport, ProblemCost, SimulatedDevice, greedy_makespan
from .executor import LockStepExecutor, RaceError
from .spec import CpuSpec, DeviceSpec, GTX480, XEON_E5520, XEON_E5520_SSE
from .timing import (
    KernelCost,
    cell_cost_cycles,
    cpu_cost_seconds,
    kernel_cost,
    partition_sizes,
    window_fits_shared,
)

__all__ = [
    "LaunchReport",
    "ProblemCost",
    "SimulatedDevice",
    "greedy_makespan",
    "LockStepExecutor",
    "RaceError",
    "CpuSpec",
    "DeviceSpec",
    "GTX480",
    "XEON_E5520",
    "XEON_E5520_SSE",
    "KernelCost",
    "cell_cost_cycles",
    "cpu_cost_seconds",
    "kernel_cost",
    "partition_sizes",
    "window_fits_shared",
]
