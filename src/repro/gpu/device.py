"""The simulated device: problem placement and launch accounting.

One *problem* equals one block on one multiprocessor (the paper's
intra-task scheme); ``map`` workloads place many problems across the
device's multiprocessors (Section 4.7), each possibly running a
different generated code path (conditional parallelisation). The
device time of a launch is the heaviest multiprocessor's queue, plus
launch and transfer overheads — timings in the paper include setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .spec import DeviceSpec, GTX480


@dataclass(frozen=True)
class ProblemCost:
    """One problem's priced kernel execution (see ``KernelCost``).

    ``packing`` is the number of such problems one multiprocessor runs
    concurrently (occupancy packing of narrow problems); the effective
    per-SM occupancy time is ``seconds / packing``.
    """

    seconds: float
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    packing: int = 1


@dataclass
class LaunchReport:
    """Accounting of one simulated launch."""

    device: str
    problems: int
    kernel_seconds: float
    transfer_seconds: float
    overhead_seconds: float
    sm_seconds: List[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Kernel + transfer + launch overhead."""
        return (
            self.kernel_seconds
            + self.transfer_seconds
            + self.overhead_seconds
        )

    @property
    def sm_utilisation(self) -> float:
        """Mean busy fraction across multiprocessors."""
        if not self.sm_seconds:
            return 0.0
        busiest = max(self.sm_seconds)
        if busiest == 0.0:
            return 0.0
        return sum(self.sm_seconds) / (len(self.sm_seconds) * busiest)


class SimulatedDevice:
    """Places problems on multiprocessors and accumulates time.

    An optional fault ``injector`` (duck-typed against
    :class:`~repro.resilience.faults.FaultInjector`, not imported to
    keep this module runtime-free) makes launches and transfers fail
    deterministically: each problem's launch is checked before its
    functional execution and the copy-back is checked after, with the
    fault site pinned to the multiprocessor the greedy placement
    chose.
    """

    def __init__(
        self,
        spec: Optional[DeviceSpec] = None,
        injector=None,
    ) -> None:
        self.spec = spec or GTX480
        self.injector = injector
        #: Monotonic launch counter (feeds fault-site attempts so a
        #: retried launch re-rolls its fault decisions).
        self.launches = 0

    def launch(
        self,
        costs: Sequence[ProblemCost],
        run: Optional[Callable[[int], None]] = None,
    ) -> LaunchReport:
        """Simulate one launch over ``costs`` problems.

        ``run(k)``, when given, performs the functional execution of
        problem ``k`` (the Python-backend kernel); the simulator calls
        it for every problem, then prices the launch analytically.

        Placement is greedy least-loaded — the natural block scheduler
        behaviour for a queue of independent blocks.
        """
        self.launches += 1
        attempt = self.launches
        sm_load = [0.0] * self.spec.sm_count
        bytes_total = 0.0
        for index, cost in enumerate(costs):
            target = sm_load.index(min(sm_load))
            if run is not None and self.injector is not None:
                self._check_faults(index, target, attempt, "launch")
            if run is not None:
                run(index)
            sm_load[target] += cost.seconds / max(1, cost.packing)
            bytes_total += cost.bytes_in + cost.bytes_out
            if run is not None and self.injector is not None:
                self._check_faults(index, target, attempt, "transfer")
        kernel_seconds = max(sm_load) if costs else 0.0
        transfer = (
            self.spec.transfer_seconds(bytes_total) if costs else 0.0
        )
        return LaunchReport(
            device=self.spec.name,
            problems=len(costs),
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer,
            overhead_seconds=self.spec.launch_overhead_s,
            sm_seconds=sm_load,
        )

    def _check_faults(
        self, problem: int, sm: int, attempt: int, stage: str
    ) -> None:
        # Imported lazily: resilience depends on the runtime which
        # depends on this module; at call time everything is loaded.
        from ..resilience.faults import FaultSite

        site = FaultSite(
            problem=problem, partition=-1, sm=sm,
            attempt=attempt, stage=stage,
        )
        if stage == "launch":
            self.injector.check_launch(site)
        else:
            self.injector.check_transfer(site)


def greedy_makespan(
    durations: Sequence[float], machines: int
) -> Tuple[float, List[float]]:
    """Least-loaded placement of ``durations`` on ``machines``.

    Exposed for the baselines (CUDASW++-style schedulers use the same
    policy).
    """
    loads = [0.0] * machines
    for duration in sorted(durations, reverse=True):
        target = loads.index(min(loads))
        loads[target] += duration
    return (max(loads) if durations else 0.0), loads
