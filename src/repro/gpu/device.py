"""The simulated device: problem placement and launch accounting.

One *problem* equals one block on one multiprocessor (the paper's
intra-task scheme); ``map`` workloads place many problems across the
device's multiprocessors (Section 4.7), each possibly running a
different generated code path (conditional parallelisation). The
device time of a launch is the heaviest multiprocessor's queue, plus
launch and transfer overheads — timings in the paper include setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .spec import DeviceSpec, GTX480


@dataclass(frozen=True)
class ProblemCost:
    """One problem's priced kernel execution (see ``KernelCost``).

    ``packing`` is the number of such problems one multiprocessor runs
    concurrently (occupancy packing of narrow problems); the effective
    per-SM occupancy time is ``seconds / packing``.
    """

    seconds: float
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    packing: int = 1


@dataclass
class LaunchReport:
    """Accounting of one simulated launch."""

    device: str
    problems: int
    kernel_seconds: float
    transfer_seconds: float
    overhead_seconds: float
    sm_seconds: List[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Kernel + transfer + launch overhead."""
        return (
            self.kernel_seconds
            + self.transfer_seconds
            + self.overhead_seconds
        )

    @property
    def sm_utilisation(self) -> float:
        """Mean busy fraction across multiprocessors."""
        if not self.sm_seconds:
            return 0.0
        busiest = max(self.sm_seconds)
        if busiest == 0.0:
            return 0.0
        return sum(self.sm_seconds) / (len(self.sm_seconds) * busiest)


class SimulatedDevice:
    """Places problems on multiprocessors and accumulates time."""

    def __init__(self, spec: Optional[DeviceSpec] = None) -> None:
        self.spec = spec or GTX480

    def launch(
        self,
        costs: Sequence[ProblemCost],
        run: Optional[Callable[[int], None]] = None,
    ) -> LaunchReport:
        """Simulate one launch over ``costs`` problems.

        ``run(k)``, when given, performs the functional execution of
        problem ``k`` (the Python-backend kernel); the simulator calls
        it for every problem, then prices the launch analytically.

        Placement is greedy least-loaded — the natural block scheduler
        behaviour for a queue of independent blocks.
        """
        sm_load = [0.0] * self.spec.sm_count
        bytes_total = 0.0
        for index, cost in enumerate(costs):
            if run is not None:
                run(index)
            target = sm_load.index(min(sm_load))
            sm_load[target] += cost.seconds / max(1, cost.packing)
            bytes_total += cost.bytes_in + cost.bytes_out
        kernel_seconds = max(sm_load) if costs else 0.0
        transfer = (
            self.spec.transfer_seconds(bytes_total) if costs else 0.0
        )
        return LaunchReport(
            device=self.spec.name,
            problems=len(costs),
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer,
            overhead_seconds=self.spec.launch_overhead_s,
            sm_seconds=sm_load,
        )


def greedy_makespan(
    durations: Sequence[float], machines: int
) -> Tuple[float, List[float]]:
    """Least-loaded placement of ``durations`` on ``machines``.

    Exposed for the baselines (CUDASW++-style schedulers use the same
    policy).
    """
    loads = [0.0] * machines
    for duration in sorted(durations, reverse=True):
        target = loads.index(min(loads))
        loads[target] += duration
    return (max(loads) if durations else 0.0), loads
