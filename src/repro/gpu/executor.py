"""Lock-step execution of a schedule, with dependence checking.

Small-scale *semantic* simulation of the template of Figure 8: within
one partition all cells are computed simultaneously (writes commit at
the barrier), partitions run in order. If any cell reads a table entry
that was not written by an *earlier* partition, the schedule is wrong
and a :class:`RaceError` is raised — this is the executable form of
the partition ordering condition (1), independent of the algebraic
criteria, and the test-suite uses it as a third validity check.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.domain import Domain
from ..lang.errors import RuntimeDslError
from ..lang.typecheck import CheckedFunction
from ..runtime.interpreter import Evaluator
from ..runtime.values import Bindings
from ..schedule.schedule import Schedule


class RaceError(RuntimeDslError):
    """A cell read a value its partition cannot have waited for."""


class LockStepExecutor:
    """Executes a (function, schedule) pair partition by partition."""

    def __init__(
        self,
        func: CheckedFunction,
        schedule: Schedule,
        bindings: Bindings,
        domain: Domain,
        injector=None,
    ) -> None:
        self.func = func
        self.schedule = schedule
        self.bindings = bindings
        self.domain = domain
        #: Optional fault injector (duck-typed against
        #: :class:`~repro.resilience.faults.FaultInjector`); when set,
        #: each partition's staged writes pass through
        #: ``corrupt_staged`` before the barrier commits them.
        self.injector = injector
        #: Cells the injector corrupted, per partition (accounting).
        self.corrupted: Dict[int, list] = {}
        self._table: Dict[Tuple[int, ...], object] = {}
        #: Partition that wrote each cell (barrier bookkeeping).
        self._written_at: Dict[Tuple[int, ...], int] = {}
        self._current_partition: Optional[int] = None
        self._evaluator = Evaluator(func, bindings, self._on_call)

    def _on_call(self, args: Tuple[int, ...]) -> object:
        if not self.domain.contains_tuple(args):
            raise RuntimeDslError(
                f"recursive call {self.func.name}{args} leaves the "
                f"domain {self.domain}"
            )
        if args not in self._table:
            raise RaceError(
                f"cell {args} read before any partition wrote it "
                f"(current partition "
                f"{self._current_partition})"
            )
        written = self._written_at[args]
        assert self._current_partition is not None
        if written >= self._current_partition:
            raise RaceError(
                f"cell {args} (written at partition {written}) read by "
                f"partition {self._current_partition}: not separated by "
                f"a barrier"
            )
        return self._table[args]

    def run(self) -> np.ndarray:
        """Execute all partitions; returns the completed table."""
        groups = self.schedule.partitions(self.domain)
        for partition, cells in groups.items():
            self._current_partition = partition
            staged = {}
            for cell in cells:
                staged[cell] = self._evaluator.evaluate(cell)
            if self.injector is not None:
                victims = self.injector.corrupt_staged(staged, partition)
                if victims:
                    self.corrupted[partition] = victims
            # Barrier: all of this partition's writes commit at once.
            for cell, value in staged.items():
                self._table[cell] = value
                self._written_at[cell] = partition
        table = np.zeros(self.domain.extents, dtype=np.float64)
        for cell, value in self._table.items():
            table[cell] = value
        return table
