"""Hardware specifications for the simulated devices.

The paper's testbed: an NVIDIA GTX 480 (GF100: 15 multiprocessors of
32 cores at 1.4 GHz, 48 KiB shared memory per SM, ~177 GB/s global
bandwidth) against an Intel Xeon E5520 (2.26 GHz Nehalem).

The cost constants are *effective amortised cycles per operation per
warp-step*: they bake in issue width, pipelining, coalescing and the
latency hiding of a reasonably occupied SM. Absolute times are
calibration, not measurement — the figures compare strategies and
shapes, which these constants preserve (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """A CUDA-class device for the analytic cost model."""

    name: str = "NVIDIA GTX 480 (simulated)"
    sm_count: int = 15
    cores_per_sm: int = 32
    warp_size: int = 32
    max_threads_per_block: int = 1024
    #: Co-resident blocks per multiprocessor (occupancy): small
    #: problems whose partitions underfill a warp are packed to keep
    #: the SM busy.
    blocks_per_sm: int = 4
    clock_hz: float = 1.40e9
    shared_memory_bytes: int = 48 * 1024

    # Effective cycles per warp-wide operation.
    arith_cycles: float = 1.0
    compare_cycles: float = 1.0
    select_cycles: float = 1.0
    special_cycles: float = 8.0   # log/exp class transcendentals
    global_read_cycles: float = 22.0  # amortised, coalesced
    shared_read_cycles: float = 2.0
    global_write_cycles: float = 10.0
    shared_write_cycles: float = 2.0
    sync_cycles: float = 48.0     # __syncthreads() + loop overhead

    # Host-side costs (the paper's timings include setup).
    launch_overhead_s: float = 12e-6     # per kernel launch
    transfer_latency_s: float = 25e-6    # per memcpy
    transfer_bandwidth: float = 6.0e9    # PCIe gen2 effective B/s

    def transfer_seconds(self, num_bytes: float) -> float:
        """Host <-> device copy time for a payload."""
        return self.transfer_latency_s + num_bytes / self.transfer_bandwidth


@dataclass(frozen=True)
class CpuSpec:
    """A single CPU core for the baseline cost models."""

    name: str = "Intel Xeon E5520 (simulated)"
    clock_hz: float = 2.26e9

    arith_cycles: float = 1.0
    compare_cycles: float = 1.0
    select_cycles: float = 2.0    # branchy scalar code
    special_cycles: float = 15.0  # libm log/exp
    memory_read_cycles: float = 1.5   # mostly cache-resident DP rows
    memory_write_cycles: float = 1.0
    loop_overhead_cycles: float = 3.0  # per-cell loop/bookkeeping

    # Vector/thread scaling knobs, for baselines that use them
    # (HMMER3, SSE2 builds of ssearch).
    simd_width: int = 1
    threads: int = 1

    def effective_speedup(self) -> float:
        """Combined SIMD x threading speedup of this configuration."""
        return max(1.0, 0.75 * self.simd_width) * max(1, self.threads)


GTX480 = DeviceSpec()
XEON_E5520 = CpuSpec()
#: HMMER3-style configuration: SSE vectorised, multi-threaded.
XEON_E5520_SSE = CpuSpec(
    name="Intel Xeon E5520 (SSE2, 8 threads, simulated)",
    simd_width=8,
    threads=8,
)
