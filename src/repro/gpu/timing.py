"""Analytic timing model for synthesised kernels.

The functional result of a kernel never depends on timing, so the
simulator splits the two: the Python backend computes the table, and
this module prices the execution on the device spec, using the same
quantities the paper's design discussion revolves around:

* the number of partitions (the schedule-search goal, Section 4.6);
* the size of each partition (threads execute cells in warp-wide
  batches; small partitions under-utilise the SM — Section 4.9's
  "wasted execution" remark);
* one barrier per partition (Figure 8's ``sync``);
* where the table lives: the sliding window (Section 4.8) keeps the
  live rows in shared memory when they fit, otherwise reads go to
  global memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Mapping, Optional

import numpy as np

from ..analysis.domain import Domain
from ..ir.kernel import Kernel
from ..schedule.schedule import Schedule
from .spec import CpuSpec, DeviceSpec


def partition_sizes(schedule: Schedule, domain: Domain) -> np.ndarray:
    """Exact cell count of every partition, min partition first.

    The distribution of ``S(x) = sum a_k * x_k`` over the box is the
    convolution of the per-dimension distributions, each of which is
    uniform on an arithmetic progression.
    """
    sizes = np.array([1.0])
    offset = 0
    for coeff, extent in zip(schedule.coefficients, domain.extents):
        if coeff == 0:
            sizes = sizes * extent
            continue
        step = abs(coeff)
        span = step * (extent - 1)
        contrib = np.zeros(span + 1)
        contrib[::step] = 1.0
        sizes = np.convolve(sizes, contrib)
        if coeff < 0:
            offset -= span
    return sizes


@dataclass(frozen=True)
class KernelCost:
    """Priced execution of one kernel launch on one problem."""

    cycles: float
    seconds: float
    partitions: int
    cells: int
    window_in_shared: bool
    compute_cycles: float
    memory_cycles: float
    sync_cycles: float

    @property
    def cells_per_second(self) -> float:
        """Throughput implied by this cost."""
        return self.cells / self.seconds if self.seconds else 0.0


def problems_per_sm(
    kernel: Kernel,
    domain: Domain,
    spec: DeviceSpec,
    schedule: Optional[Schedule] = None,
) -> int:
    """How many problems one multiprocessor runs concurrently.

    One block per problem (Section 4.7). When the widest partition
    does not even fill a warp, the device packs co-resident blocks (up
    to the occupancy limit) so the idle lanes are spent on *other*
    problems — this is what lets tiny models (a 6-state gene finder)
    still saturate the device and reach the paper's x60 (Section 6.2).
    """
    schedule = schedule or kernel.schedule
    sizes = partition_sizes(schedule, domain)
    widest = int(sizes.max()) if len(sizes) else 1
    if widest >= spec.warp_size:
        return 1
    return max(
        1, min(spec.blocks_per_sm, spec.warp_size // max(1, widest))
    )


#: Sentinel for "use the kernel's own window" — distinct from an
#: explicit ``window=None`` (a candidate schedule with non-uniform
#: look-back, hence no constant window at all).
_KERNEL_WINDOW = object()


def window_fits_shared(
    kernel: Kernel,
    schedule: Schedule,
    domain: Domain,
    spec: DeviceSpec,
    value_bytes: int = 8,
    window=_KERNEL_WINDOW,
) -> bool:
    """Can the sliding window live in shared memory? (Section 4.8).

    ``window`` overrides the kernel's own window size, so a candidate
    schedule can be priced against one built kernel (op counts are
    schedule-independent) without re-lowering per candidate — the
    autotuner's hot loop.
    """
    if window is _KERNEL_WINDOW:
        window = kernel.window
    if window is None:
        return False
    sizes = partition_sizes(schedule, domain)
    widest = int(sizes.max()) if len(sizes) else 0
    rows = window + 1
    return rows * widest * value_bytes <= spec.shared_memory_bytes


def cell_cost_cycles(
    kernel: Kernel,
    spec: DeviceSpec,
    mean_degree: float = 1.0,
    table_in_shared: bool = False,
) -> Dict[str, float]:
    """Per-cell cost, split into compute and memory cycles."""
    totals = kernel.counts.scaled_total(mean_degree)
    compute = (
        totals["arith"] * spec.arith_cycles
        + totals["compare"] * spec.compare_cycles
        + totals["select"] * spec.select_cycles
        + totals["special"] * spec.special_cycles
    )
    table_read = (
        spec.shared_read_cycles
        if table_in_shared
        else spec.global_read_cycles
    )
    table_write = (
        spec.shared_write_cycles
        if table_in_shared
        else spec.global_write_cycles
    )
    memory = (
        totals["table_reads"] * table_read
        + totals["seq_reads"] * spec.shared_read_cycles
        + totals["matrix_reads"] * spec.shared_read_cycles
        + totals["hmm_reads"] * spec.shared_read_cycles
        + table_write  # one table write per cell
    )
    return {"compute": compute, "memory": memory}


def kernel_cost(
    kernel: Kernel,
    domain: Domain,
    spec: DeviceSpec,
    mean_degree: float = 1.0,
    use_window: bool = True,
    schedule: Optional[Schedule] = None,
    window=_KERNEL_WINDOW,
) -> KernelCost:
    """Price one problem's kernel execution on the device.

    ``schedule``/``window`` override the kernel's own, letting the
    autotuner price alternative schedules against a single lowered
    kernel (the operation counts do not depend on the schedule).
    """
    schedule = schedule or kernel.schedule
    sizes = partition_sizes(schedule, domain)
    in_shared = use_window and window_fits_shared(
        kernel, schedule, domain, spec, window=window
    )
    per_cell = cell_cost_cycles(
        kernel, spec, mean_degree, table_in_shared=in_shared
    )
    cell_cycles = per_cell["compute"] + per_cell["memory"]

    warp = spec.warp_size
    warp_batches = np.ceil(sizes / warp)
    compute_total = float(warp_batches.sum()) * per_cell["compute"]
    memory_total = float(warp_batches.sum()) * per_cell["memory"]
    sync_total = len(sizes) * spec.sync_cycles
    cycles = compute_total + memory_total + sync_total
    return KernelCost(
        cycles=cycles,
        seconds=cycles / spec.clock_hz,
        partitions=len(sizes),
        cells=domain.size,
        window_in_shared=in_shared,
        compute_cycles=compute_total,
        memory_cycles=memory_total,
        sync_cycles=sync_total,
    )


def cost_lower_bound(
    kernel: Kernel,
    domain: Domain,
    spec: DeviceSpec,
    partitions: int,
    mean_degree: float = 1.0,
) -> float:
    """Cycles no schedule with ``>= partitions`` partitions can beat.

    Two monotone facts make this a sound branch-and-bound floor for
    the autotuner (and they are what the cost-model property tests
    pin down):

    * every partition closes with one barrier, so sync cycles are at
      least ``partitions * sync_cycles`` — and a *partial* coefficient
      vector's span only grows as more dimensions are assigned;
    * the cell work is at least ``ceil(cells / warp)`` warp-batches
      (``sum(ceil(s_i/w)) >= ceil(sum(s_i)/w)``), each priced at the
      cheapest memory tier (the shared-window rate).
    """
    per_cell = cell_cost_cycles(
        kernel, spec, mean_degree, table_in_shared=True
    )
    batches = ceil(domain.size / spec.warp_size)
    return (
        partitions * spec.sync_cycles
        + batches * (per_cell["compute"] + per_cell["memory"])
    )


def batched_launch_cost(
    kernel: Kernel,
    domains,
    spec: DeviceSpec,
    mean_degree: float = 1.0,
    threads: int = 1,
) -> KernelCost:
    """Price one *lane-batched* launch of many same-kernel problems.

    The batch executes as a single fused sweep: per global partition,
    every problem contributes its partition's cells (the profiles are
    superposed, aligned on the partition axis), and **one** barrier
    closes the global partition — instead of one barrier per problem
    per partition. That amortised sync (plus the per-launch overhead
    collapsing to one) is the modelled benefit of the functional
    inter-task path; the cell work itself is conserved.

    The batch shares one table layout, so no shared-memory window is
    assumed (the padded batch table lives in global memory).

    ``threads`` models multi-core launches (the batched-native rung's
    OpenMP problem loop): cell work — compute and memory — divides
    across cores, while the per-partition synchronisation cost does
    not (barriers are the serial fraction of the sweep).
    """
    schedule = kernel.schedule
    profiles = [partition_sizes(schedule, d) for d in domains]
    span = max((len(p) for p in profiles), default=1)
    sizes = np.zeros(span)
    for profile in profiles:
        sizes[: len(profile)] += profile
    per_cell = cell_cost_cycles(
        kernel, spec, mean_degree, table_in_shared=False
    )
    share = max(1, int(threads))
    warp_batches = np.ceil(sizes / spec.warp_size)
    compute_total = (
        float(warp_batches.sum()) * per_cell["compute"] / share
    )
    memory_total = (
        float(warp_batches.sum()) * per_cell["memory"] / share
    )
    sync_total = span * spec.sync_cycles
    cycles = compute_total + memory_total + sync_total
    return KernelCost(
        cycles=cycles,
        seconds=cycles / spec.clock_hz,
        partitions=span,
        cells=int(sum(domain.size for domain in domains)),
        window_in_shared=False,
        compute_cycles=compute_total,
        memory_cycles=memory_total,
        sync_cycles=sync_total,
    )


def inter_task_seconds(
    kernel: Kernel,
    domains,
    spec: DeviceSpec,
    mean_degree: float = 1.0,
) -> float:
    """Sequence-per-thread (inter-task) execution of many problems.

    Section 6.1: "generation of a sequence-per-thread kernel ... is
    straight-forward from our DSL code". Each thread walks one
    problem's table serially; threads of a warp run in lock-step, so a
    warp is gated by its largest member (the load-imbalance effect the
    hybrid split exists to avoid). Per-thread rows live in device
    memory (no cooperative shared-memory window).
    """
    sizes = sorted(domain.size for domain in domains)
    if not sizes:
        return spec.launch_overhead_s
    totals = kernel.counts.scaled_total(mean_degree)
    per_cell = (
        totals["arith"] * spec.arith_cycles
        + totals["compare"] * spec.compare_cycles
        + totals["select"] * spec.select_cycles
        + totals["special"] * spec.special_cycles
        + (
            totals["table_reads"]
            + totals["seq_reads"]
            + totals["matrix_reads"]
            + totals["hmm_reads"]
        )
        * spec.global_read_cycles
        + spec.global_write_cycles
    )
    warp = spec.warp_size
    warp_cells = [
        max(sizes[k:k + warp])
        for k in range(0, len(sizes), warp)
    ]
    cycles = sum(warp_cells) * per_cell
    return (
        cycles / spec.sm_count / spec.clock_hz
        + spec.launch_overhead_s
    )


def cpu_cost_seconds(
    kernel: Kernel,
    domain: Domain,
    spec: CpuSpec,
    mean_degree: float = 1.0,
) -> float:
    """Serial CPU execution of the same recurrence (one core).

    Used for the CPU comparisons: the same per-cell operation mix,
    priced with CPU constants, one cell at a time, divided by the
    configuration's SIMD/thread speedup.
    """
    totals = kernel.counts.scaled_total(mean_degree)
    per_cell = (
        totals["arith"] * spec.arith_cycles
        + totals["compare"] * spec.compare_cycles
        + totals["select"] * spec.select_cycles
        + totals["special"] * spec.special_cycles
        + (
            totals["table_reads"]
            + totals["seq_reads"]
            + totals["matrix_reads"]
            + totals["hmm_reads"]
        )
        * spec.memory_read_cycles
        + spec.memory_write_cycles
        + spec.loop_overhead_cycles
    )
    cycles = per_cell * domain.size
    return cycles / spec.clock_hz / spec.effective_speedup()
