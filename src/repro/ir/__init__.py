"""The low-level IR (Section 3.3): kernels, lowering, backends."""

from .cuda import emit_cuda
from .kernel import Kernel, build_kernel
from .lower import LoweredBody, lower_function
from .pybackend import compile_kernel, emit_kernel_source

__all__ = [
    "emit_cuda",
    "Kernel",
    "build_kernel",
    "LoweredBody",
    "lower_function",
    "compile_kernel",
    "emit_kernel_source",
]
