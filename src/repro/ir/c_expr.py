"""Shared C expression/statement printer for the C-family backends.

Both C targets — the CUDA text emitter (:mod:`repro.ir.cuda`,
Figure 10's ``__global__`` template) and the native compiled backend
(:mod:`repro.ir.cbackend`, portable C99 built with the system ``cc``)
— render the *same* lowered cell expression with the same spellings:
``min``/``max``/``logaddexp`` helpers, ternary selects (with an
if/else fallback when a reduction hides inside an arm), CSR reduction
loops over the HMM transition lists, and row-major linearised table
accesses with the Section 4.8 ring-buffer variant. This module holds
that common printer; the backends only differ in how the surrounding
function (signature, loop striding, barriers) is emitted.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..lang.errors import CodegenError
from . import expr as ir
from .kernel import Kernel

#: CLooG's integer-division helpers, used by every rendered loop bound.
C_HELPERS = """\
#define ceild(n, d) (((n) < 0) ? -((-(n)) / (d)) : ((n) + (d) - 1) / (d))
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
"""


def ctype_of(kind: str) -> str:
    """The C value type of a DSL kind (table cells, scalars)."""
    return {"int": "long", "bool": "int"}.get(kind, "double")


class CCellEmitter:
    """Emits the cell expression as C statements.

    ``windowed`` switches table accesses to the Section 4.8 ring
    buffer ``swin`` (``window + 1`` rows of ``win_cols`` cells,
    addressed by partition modulo the row count); otherwise accesses
    linearise row-major into ``farr``.

    ``strides`` overrides the linearisation extents: by default a
    dimension's row length is its own inclusive bound plus one
    (``ub_<dim> + 1``), but a *batched* entry point addresses one
    problem's slice of a padded ``(B, d0max, ...)`` table, whose row
    lengths are the shared padded extents — the caller passes their C
    spellings (one per dimension, e.g. ``pad_<dim>``) here.
    """

    def __init__(
        self,
        kernel: Kernel,
        windowed: bool = False,
        strides: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.kernel = kernel
        self.windowed = windowed
        self.strides = tuple(strides) if strides is not None else None
        self.counter = 0

    def _dim_size(self, k: int) -> str:
        """C text of dimension ``k``'s row length in the table."""
        if self.strides is not None:
            return self.strides[k]
        return f"ub_{self.kernel.dims[k]} + 1"

    def fresh(self) -> str:
        name = f"_t{self.counter}"
        self.counter += 1
        return name

    @property
    def window_col(self) -> int:
        """Which dimension indexes the ring buffer's columns.

        Within one partition the ring needs an injective cell
        address. When some dimension has schedule coefficient zero it
        is a pure *space* dimension — it alone varies inside a
        partition, so it must be the column (the partition fixes the
        others). When every coefficient is nonzero (e.g. the diagonal
        ``S = i + j``), fixing the partition makes any single
        dimension determine the rest, so the first works.
        """
        for k, a in enumerate(self.kernel.schedule.coefficients):
            if a == 0:
                return k
        return 0

    def inline(self, node: ir.Node) -> Optional[str]:
        if isinstance(node, ir.Const):
            if node.value == float("-inf"):
                return "(-INFINITY)"
            if node.value == float("inf"):
                return "INFINITY"
            if isinstance(node.value, bool):
                return "1" if node.value else "0"
            return repr(node.value)
        if isinstance(node, (ir.DimRef, ir.VarRef)):
            return node.name
        if isinstance(node, ir.ArgRef):
            return f"arg_{node.name}"
        if isinstance(node, ir.Binary):
            left = self.inline(node.left)
            right = self.inline(node.right)
            if left is None or right is None:
                return None
            if node.op == "min":
                return f"min({left}, {right})"
            if node.op == "max":
                return f"max({left}, {right})"
            if node.op == "logaddexp":
                return f"logaddexp({left}, {right})"
            if node.op == "/" and node.kind == "int":
                # Truncating division, matching the scalar backend's
                # ``_idiv`` (operands may sit in double temporaries).
                return f"idiv({left}, {right})"
            return f"({left} {node.op} {right})"
        if isinstance(node, ir.Log):
            operand = self.inline(node.operand)
            return None if operand is None else f"safelog({operand})"
        if isinstance(node, ir.Select):
            cond = self.inline(node.cond)
            then = self.inline(node.then)
            other = self.inline(node.otherwise)
            if cond is None or then is None or other is None:
                return None
            return f"({cond} ? {then} : {other})"
        if isinstance(node, ir.TableRead):
            if node.table:
                raise CodegenError(
                    f"cross-table read of {node.table!r}: mutual-group "
                    f"members have no single-kernel C rendering"
                )
            return self._table_ref(node.indices)
        if isinstance(node, ir.SeqRead):
            index = self.inline(node.index)
            return None if index is None else f"seq_{node.seq}[{index}]"
        if isinstance(node, ir.MatrixRead):
            row = self.inline(node.row)
            col = self.inline(node.col)
            if row is None or col is None:
                return None
            return (
                f"mat_{node.matrix}[rowidx_{node.matrix}[{row}] * "
                f"{node.matrix}_cols + colidx_{node.matrix}[{col}]]"
            )
        if isinstance(node, ir.StateFlag):
            state = self.inline(node.state)
            if state is None:
                return None
            return f"hmm_{node.hmm}_{node.which}[{state}]"
        if isinstance(node, ir.EmissionRead):
            state = self.inline(node.state)
            symbol = self.inline(node.symbol)
            if state is None or symbol is None:
                return None
            return (
                f"hmm_{node.hmm}_emis[{state} * {node.hmm}_nsym + "
                f"hmm_{node.hmm}_symidx[{symbol}]]"
            )
        if isinstance(node, ir.TransField):
            trans = self.inline(node.trans)
            if trans is None:
                return None
            suffix = {"prob": "tprob", "start": "tsrc", "end": "ttgt"}[
                node.which
            ]
            return f"hmm_{node.hmm}_{suffix}[{trans}]"
        if isinstance(node, (ir.ReduceLoop, ir.RangeReduce)):
            return None
        raise CodegenError(f"cannot render IR node {node!r}")

    def _table_ref(self, indices: Tuple[ir.Node, ...]) -> Optional[str]:
        """Row-major linearised table access.

        Windowed kernels address the shared ring buffer instead: the
        row is the cell's partition modulo the resident row count,
        the column its :attr:`window_col` coordinate (Section 4.8).
        """
        rendered = [self.inline(i) for i in indices]
        if any(r is None for r in rendered):
            return None
        dims = self.kernel.dims
        if self.windowed:
            rows = self.kernel.window + 1
            coeffs = self.kernel.schedule.coefficients
            terms = [
                f"({a})*({idx})"
                for a, idx in zip(coeffs, rendered)
                if a != 0
            ]
            partition = " + ".join(terms) if terms else "0"
            row = f"((({partition}) % {rows}) + {rows}) % {rows}"
            col = rendered[self.window_col]
            return f"swin[({row}) * win_cols + ({col})]"
        text = rendered[0]
        for k in range(1, len(dims)):
            text = f"({text}) * ({self._dim_size(k)}) + {rendered[k]}"
        return f"farr[{text}]"

    def linear_ref(self, indices: Tuple[ir.Node, ...]) -> str:
        """The plain (non-windowed) ``farr`` access for ``indices`` —
        used for the windowed variants' global write-back."""
        rendered = [self.inline(i) for i in indices]
        dims = self.kernel.dims
        text = rendered[0]
        for k in range(1, len(dims)):
            text = f"({text}) * ({self._dim_size(k)}) + {rendered[k]}"
        return f"farr[{text}]"

    def emit_to(
        self, node: ir.Node, target: str, lines: List[str], pad: str
    ) -> None:
        text = self.inline(node)
        if text is not None:
            lines.append(f"{pad}{target} = {text};")
            return
        if isinstance(node, ir.Select):
            cond = self._force(node.cond, lines, pad)
            lines.append(f"{pad}if ({cond}) {{")
            self.emit_to(node.then, target, lines, pad + "  ")
            lines.append(f"{pad}}} else {{")
            self.emit_to(node.otherwise, target, lines, pad + "  ")
            lines.append(f"{pad}}}")
            return
        if isinstance(node, ir.Binary):
            left = self._force(node.left, lines, pad)
            right = self._force(node.right, lines, pad)
            if node.op in ("min", "max", "logaddexp"):
                lines.append(
                    f"{pad}{target} = {node.op}({left}, {right});"
                )
            elif node.op == "/" and node.kind == "int":
                lines.append(
                    f"{pad}{target} = idiv({left}, {right});"
                )
            else:
                lines.append(
                    f"{pad}{target} = {left} {node.op} {right};"
                )
            return
        if isinstance(node, ir.ReduceLoop):
            self._emit_reduce(node, target, lines, pad)
            return
        if isinstance(node, ir.RangeReduce):
            self._emit_range_reduce(node, target, lines, pad)
            return
        raise CodegenError(f"cannot emit IR node {node!r}")

    def _force(self, node: ir.Node, lines: List[str], pad: str) -> str:
        text = self.inline(node)
        if text is not None:
            return text
        temp = self.fresh()
        lines.append(f"{pad}double {temp};")
        self.emit_to(node, temp, lines, pad)
        return temp

    @staticmethod
    def _reduce_init(node) -> str:
        if node.kind == "sum":
            return "-INFINITY" if node.logspace else "0.0"
        if node.kind == "min":
            return "INFINITY"
        if node.prob and not node.logspace:
            return "0.0"
        return "-INFINITY"

    def _emit_range_reduce(
        self, node: ir.RangeReduce, target: str, lines: List[str],
        pad: str,
    ) -> None:
        lo = self._force(node.lo, lines, pad)
        hi = self._force(node.hi, lines, pad)
        acc = self.fresh()
        lines.append(f"{pad}double {acc} = {self._reduce_init(node)};")
        lines.append(
            f"{pad}for (long {node.var} = {lo}; {node.var} <= {hi}; "
            f"{node.var}++) {{"
        )
        inner = pad + "  "
        body = self._force(node.body, lines, inner)
        if node.kind == "sum" and node.logspace:
            lines.append(f"{inner}{acc} = logaddexp({acc}, {body});")
        elif node.kind == "sum":
            lines.append(f"{inner}{acc} += {body};")
        else:
            lines.append(f"{inner}{acc} = {node.kind}({acc}, {body});")
        lines.append(f"{pad}}}")
        lines.append(f"{pad}{target} = {acc};")

    def _emit_reduce(
        self, node: ir.ReduceLoop, target: str, lines: List[str], pad: str
    ) -> None:
        state = self._force(node.state, lines, pad)
        prefix = f"hmm_{node.hmm}"
        ids = "inids" if node.source == "to" else "outids"
        offsets = "inoff" if node.source == "to" else "outoff"
        acc = self.fresh()
        lines.append(f"{pad}double {acc} = {self._reduce_init(node)};")
        lines.append(
            f"{pad}for (int _e = {prefix}_{offsets}[{state}]; "
            f"_e < {prefix}_{offsets}[{state} + 1]; _e++) {{"
        )
        inner = pad + "  "
        lines.append(f"{inner}int {node.var} = {prefix}_{ids}[_e];")
        body = self._force(node.body, lines, inner)
        if node.kind == "sum" and node.logspace:
            lines.append(f"{inner}{acc} = logaddexp({acc}, {body});")
        elif node.kind == "sum":
            lines.append(f"{inner}{acc} += {body};")
        else:
            lines.append(f"{inner}{acc} = {node.kind}({acc}, {body});")
        lines.append(f"{pad}}}")
        lines.append(f"{pad}{target} = {acc};")
