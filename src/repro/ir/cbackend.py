"""Native C backend: emit portable C99 for the system ``cc``.

Where :mod:`repro.ir.cuda` renders the kernel as ``__global__`` text
for inspection, this module emits a *compilable* C99 translation unit
of the same synthesised program (Figure 9's loop nest): the time loop
over partitions and the space loop over a partition's cells both live
in C, so a whole run — every partition, every cell — is one shared
library call instead of millions of interpreted Python steps. The
cell expression printer is shared with the CUDA emitter
(:mod:`repro.ir.c_expr`); only the surrounding function differs.

Two entry points are emitted when the schedule admits the Section 4.8
sliding window (uniform descents, 2-D nest):

* ``repro_<name>`` — plain: reads and writes the caller's table;
* ``repro_<name>_windowed`` — keeps the last ``window + 1``
  partitions in a stack-resident ring buffer (the CPU analogue of
  shared-memory residency), reads the recursion's look-backs from the
  ring, and copies every computed row out to the table. Because a
  replay may start mid-schedule (``part_lo > 0``), the ring is
  preloaded from the table rows of the ``window`` preceding
  partitions before computation begins.

Both entries take ``(table, part_lo, part_hi, bounds, context
arrays...)`` with a fixed parameter order described by
:func:`native_param_spec` — :mod:`repro.runtime.native` builds the
matching ``ctypes`` call from the same spec.

A third entry point is always emitted for the lane-batched ``map``
path (the native mirror of the vector batcher in
:mod:`repro.ir.npbackend`):

* ``repro_<name>_batched`` — runs a whole same-kernel map group as
  one call over a padded ``(B, d0max, ...)`` table with ``(B, 1)``
  bounds, ``(B, Lmax)`` sequence buffers and length-``B`` scalar
  columns (:func:`native_batched_param_spec`). Where the NumPy
  batcher needs explicit validity masks (`_bread`/`_bgather`/
  `_bstore`) because every lane executes every global partition, the
  C entry simply runs each member's *own* loop nest over its own
  bounds inside an outer problem loop — no masking, no clamping, and
  bitwise-identical cells to the per-problem entry. The problem loop
  is the parallel axis; with OpenMP it carries ``#pragma omp parallel
  for`` *when* :mod:`repro.verify.races` has proved the members'
  padded slices disjoint (``R-BATCH-OVERLAP``) — race freedom is a
  per-kernel certificate, not an assumption — and the serial build of
  the identical loop produces identical bits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..lang.errors import CodegenError
from ..lang.types import IntType
from ..polyhedral import loopast
from . import expr as ir
from .c_expr import C_HELPERS, CCellEmitter
from .kernel import Kernel
from .npbackend import Eligibility

#: Scalar helpers matching the Python backend's prelude bit for bit
#: (same formulas, same libm), so scalar and native tables agree to
#: the last ulp wherever the compiler preserves IEEE semantics.
_HELPERS = C_HELPERS + """\
#include <math.h>

static inline double min(double a, double b) { return a < b ? a : b; }
static inline double max(double a, double b) { return a > b ? a : b; }
static inline double idiv(double a, double b) { return trunc(a / b); }
static inline double safelog(double x) { return x > 0.0 ? log(x) : -INFINITY; }
static inline double logaddexp(double a, double b) {
  if (a == -INFINITY) return b;
  if (b == -INFINITY) return a;
  double m = a > b ? a : b;
  return m + log(exp(a - m) + exp(b - m));
}
"""


@dataclass(frozen=True)
class Param:
    """One formal parameter of the emitted entry points.

    ``kind`` tells the runtime how to marshal the argument:

    ==============  ====================================================
    ``table``       the DP table buffer (``<vt>*``)
    ``part``        partition-range clamp (``long``; sentinel when None)
    ``ub``          inclusive dimension bound (``long``, from ``ctx``)
    ``i64[]``       ``const long*`` int64 array from ``ctx[key]``
    ``i32[]``       ``const int*`` int32 array from ``ctx[key]``
    ``f64[]``       ``const double*`` float64 array from ``ctx[key]``
    ``scalar_int``  ``long`` scalar from ``ctx[key]``
    ``scalar_f64``  ``double`` scalar from ``ctx[key]``
    ``cols``        trailing dimension of the 2-D array at ``ctx[key]``
    ``nprob``       batch size ``B`` (``long``, from ``table.shape[0]``)
    ``pad``         one padded table extent (``long``, from
                    ``table.shape[1 + k]`` in dimension order)
    ==============  ====================================================

    The last two appear only in :func:`native_batched_param_spec`.
    """

    name: str
    ctext: str
    kind: str
    key: Optional[str] = None


def value_ctype(kernel: Kernel) -> str:
    """C element type of the DP table (mirrors ``Engine._table_for``:
    int kernels fill int64 tables, everything else float64)."""
    return "long" if kernel.body.return_kind == "int" else "double"


def entry_symbol(
    kernel: Kernel, windowed: bool = False, batched: bool = False
) -> str:
    """Exported symbol name of an entry point."""
    if windowed and batched:
        raise CodegenError(
            "no windowed batched entry exists: batched launches use "
            "the plain body (rule 'ok-plain-body')"
        )
    suffix = "_windowed" if windowed else "_batched" if batched else ""
    return f"repro_{kernel.name}{suffix}"


def supports_window(kernel: Kernel) -> bool:
    """Does the native path emit a ring-buffer variant for this
    kernel? Requires a constant non-zero window (uniform descents,
    Section 4.8), the 2-D partition/lane shape the ring is addressed
    by, and a partition-major time loop to preload across."""
    return (
        kernel.window is not None
        and kernel.window >= 1
        and kernel.rank == 2
        and _time_loop(kernel) is not None
    )


def _time_loop(kernel: Kernel) -> Optional[loopast.Loop]:
    roots = kernel.nest.roots
    if (
        len(roots) == 1
        and isinstance(roots[0], loopast.Loop)
        and roots[0].var == kernel.nest.time_var
    ):
        return roots[0]
    return None


def _scalar_kinds(kernel: Kernel) -> dict:
    kinds = {}
    for param in kernel.func.calling_params:
        kinds[param.name] = (
            "scalar_int"
            if isinstance(param.type, IntType)
            else "scalar_f64"
        )
    return kinds


def native_param_spec(kernel: Kernel) -> List[Param]:
    """The (ordered) formal parameters of both emitted entry points.

    The emitter renders the C declarations from this list and the
    ``ctypes`` dispatcher marshals arguments from the same list, so
    the two can never disagree on the calling convention.
    """
    vt = value_ctype(kernel)
    params: List[Param] = [
        Param("farr", f"{vt}*", "table"),
        Param("part_lo", "long", "part"),
        Param("part_hi", "long", "part"),
    ]
    for d in kernel.dims:
        params.append(Param(f"ub_{d}", "long", "ub", f"ub_{d}"))
    refs = kernel.referenced_names()
    for s in sorted(refs["seqs"]):
        params.append(
            Param(f"seq_{s}", "const long*", "i64[]", f"seq_{s}")
        )
    scalar_kinds = _scalar_kinds(kernel)
    for a in sorted(refs["scalars"]):
        kind = scalar_kinds.get(a, "scalar_f64")
        ctext = "long" if kind == "scalar_int" else "double"
        params.append(Param(f"arg_{a}", ctext, kind, f"arg_{a}"))
    params += _shared_model_params(kernel, refs)
    return params


def _shared_model_params(kernel: Kernel, refs: dict) -> List[Param]:
    """Matrix and HMM parameters, identical in the per-problem and
    batched entries: every member of a map group shares one scoring
    model (the batcher groups by model identity), so these marshal
    once, not per problem."""
    params: List[Param] = []
    for m in sorted(refs["matrices"]):
        params += [
            Param(f"mat_{m}", "const long*", "i64[]", f"mat_{m}"),
            Param(f"rowidx_{m}", "const long*", "i64[]", f"rowidx_{m}"),
            Param(f"colidx_{m}", "const long*", "i64[]", f"colidx_{m}"),
            Param(f"{m}_cols", "long", "cols", f"mat_{m}"),
        ]
    for h in sorted(refs["hmms"]):
        hp = f"hmm_{h}"
        params += [
            Param(f"{hp}_isstart", "const int*", "i32[]", f"{hp}_isstart"),
            Param(f"{hp}_isend", "const int*", "i32[]", f"{hp}_isend"),
            Param(f"{hp}_emis", "const double*", "f64[]", f"{hp}_emis"),
            Param(f"{hp}_symidx", "const long*", "i64[]", f"{hp}_symidx"),
            Param(f"{h}_nsym", "long", "cols", f"{hp}_emis"),
            Param(f"{hp}_tprob", "const double*", "f64[]", f"{hp}_tprob"),
            Param(f"{hp}_tsrc", "const long*", "i64[]", f"{hp}_tsrc"),
            Param(f"{hp}_ttgt", "const long*", "i64[]", f"{hp}_ttgt"),
            Param(f"{hp}_inoff", "const long*", "i64[]", f"{hp}_inoff"),
            Param(f"{hp}_inids", "const long*", "i64[]", f"{hp}_inids"),
            Param(f"{hp}_outoff", "const long*", "i64[]", f"{hp}_outoff"),
            Param(f"{hp}_outids", "const long*", "i64[]", f"{hp}_outids"),
        ]
    return params


def native_batched_param_spec(kernel: Kernel) -> List[Param]:
    """The (ordered) formal parameters of the batched entry point.

    The padded ``(B, d0max, ...)`` table arrives with its batch size
    and padded extents (``nprob``/``pad`` kinds, both read off
    ``table.shape`` by the dispatcher); per-problem context arrives as
    the batcher's stacked buffers — ``(B, 1)`` bounds, ``(B, Lmax)``
    zero-padded sequences with their stride, ``(B, 1)`` scalar
    columns — keyed by the *member* context names so the dispatcher
    reads straight from ``pack_group``'s ctx. Shared matrices and
    HMMs marshal exactly as in :func:`native_param_spec`.
    """
    vt = value_ctype(kernel)
    params: List[Param] = [
        Param("btab", f"{vt}*", "table"),
        Param("nprob", "long", "nprob"),
        Param("part_lo", "long", "part"),
        Param("part_hi", "long", "part"),
    ]
    for d in kernel.dims:
        params.append(Param(f"pad_{d}", "long", "pad"))
    for d in kernel.dims:
        params.append(
            Param(f"b_ub_{d}", "const long*", "i64[]", f"ub_{d}")
        )
    refs = kernel.referenced_names()
    for s in sorted(refs["seqs"]):
        params += [
            Param(f"b_seq_{s}", "const long*", "i64[]", f"seq_{s}"),
            Param(f"b_seq_{s}_cols", "long", "cols", f"seq_{s}"),
        ]
    scalar_kinds = _scalar_kinds(kernel)
    for a in sorted(refs["scalars"]):
        if scalar_kinds.get(a, "scalar_f64") == "scalar_int":
            params.append(
                Param(f"b_arg_{a}", "const long*", "i64[]", f"arg_{a}")
            )
        else:
            params.append(
                Param(f"b_arg_{a}", "const double*", "f64[]", f"arg_{a}")
            )
    params += _shared_model_params(kernel, refs)
    return params


def native_eligibility(kernel: Kernel) -> Eligibility:
    """Why (or why not) this kernel can use the native backend.

    The emitter handles every nest shape and rank the polyhedral
    generator produces; the hard exclusions are cross-table reads
    (mutual-group members compile through the group backends) and any
    cell construct the shared C printer cannot render.
    """
    for node in ir.walk(kernel.body.cell):
        if isinstance(node, ir.TableRead) and node.table:
            return Eligibility(
                False, "cross-table-read",
                f"kernel {kernel.name!r} reads the table of "
                f"{node.table!r}; mutual groups use the group backend",
            )
    try:
        emit_native_source(kernel)
    except CodegenError as err:
        return Eligibility(
            False, "codegen",
            f"kernel {kernel.name!r} has no C99 rendering: {err}",
        )
    window = (
        f"; sliding window of {kernel.window} partitions"
        if supports_window(kernel)
        else ""
    )
    return Eligibility(
        True, "ok",
        f"kernel {kernel.name!r} compiles to portable C99 "
        f"(whole-run dispatch, partition loop in C{window})",
    )


def batched_eligibility(kernel: Kernel) -> Eligibility:
    """Why (or why not) a map group of this kernel can run as one
    batched native launch.

    The batched entry reuses the per-problem body verbatim (each
    member runs its own nest over its own bounds), so it is eligible
    exactly when the per-problem native path is — with one named
    nuance: windowed kernels batch through the *plain* body
    (``ok-plain-body``), because the stack-resident ring buffer is a
    single-problem residency optimisation and the batched table's
    member slices are written in full regardless.
    """
    base = native_eligibility(kernel)
    if not base.ok:
        return base
    if supports_window(kernel):
        return Eligibility(
            True, "ok-plain-body",
            f"kernel {kernel.name!r} batches natively with the plain "
            f"(non-windowed) body; the Section 4.8 ring buffer is a "
            f"per-problem residency optimisation and is not emitted "
            f"for batched launches",
        )
    return Eligibility(
        True, "ok-batched",
        f"kernel {kernel.name!r} runs whole map groups as one native "
        f"launch: outer problem loop over the padded (B, ...) table, "
        f"each member's own loop nest inside",
    )


#: Thread-control exports, one pair per translation unit. Serial
#: builds keep the symbols (so the dispatcher can always resolve
#: them) but make them report a fixed single thread.
_THREAD_HELPERS = """\
#ifdef _OPENMP
#include <omp.h>
void repro_set_threads(long n) {
  if (n >= 1) omp_set_num_threads((int) n);
}
long repro_max_threads(void) { return omp_get_max_threads(); }
#else
void repro_set_threads(long n) { (void) n; }
long repro_max_threads(void) { return 1; }
#endif
"""


def emit_native_source(
    kernel: Kernel, openmp: bool = False, certificate=None
) -> str:
    """Emit the complete C99 translation unit for one kernel.

    ``openmp=True`` requests ``#pragma omp parallel for`` over the
    first space loop of each partition and over the batched entry's
    problem loop — but a pragma is only *emitted* for an axis the
    parallel-safety verifier CONFIRMED (:mod:`repro.verify.races`
    re-proves intra-partition disjointness, batched-slice
    disjointness and ring safety per kernel; the emitter no longer
    trusts the schedule's independence claim as a comment). An axis
    without a certificate degrades to serial emission — the TU is
    simply pragma-free there, so its content hash differs from the
    proved TU's and the build cache keeps the variants apart. A
    refused ring suppresses the windowed entry outright; the runtime
    falls back to the plain entry. The pragmas are inert unless the
    library is built with ``-fopenmp``.

    ``certificate`` overrides the verifier's own judgement (tests use
    it to force refusals); when ``None`` and ``openmp=True``, the
    memoised certificate is computed on demand.
    """
    if openmp and certificate is None:
        from ..verify.races import parallelism_certificate

        certificate = parallelism_certificate(kernel)

    def _unused_casts(params, body_lines, pad="  "):
        # A shared model marshals every column of its context whether
        # or not this kernel's equations read them all; silence the
        # (correct) -Wunused-parameter so -Wall -Wextra -Werror and
        # sanitizer builds stay noise-free.
        text = "\n".join(body_lines)
        return [
            f"{pad}(void) {p.name};"
            for p in params
            if not re.search(rf"\b{re.escape(p.name)}\b", text)
        ]
    space_omp = bool(openmp) and certificate.space.confirmed
    batch_omp = bool(openmp) and certificate.batch.confirmed
    ring_ok = certificate is None or certificate.ring.status != "refused"
    vt = value_ctype(kernel)
    params = native_param_spec(kernel)
    decl = ", ".join(f"{p.ctext} {p.name}" for p in params)
    lines: List[str] = [
        f"/* native kernel: {kernel.name} "
        f"(schedule {kernel.schedule}) */",
        _HELPERS,
        _THREAD_HELPERS,
    ]
    if certificate is not None:
        lines.insert(1, f"/* parallel-safety: {certificate.summary} */")
    body: List[str] = []
    _emit_body(kernel, body, vt, windowed=False, openmp=space_omp)
    lines.append(f"void {entry_symbol(kernel)}({decl}) {{")
    lines.extend(_unused_casts(params, body))
    lines.extend(body)
    lines.append("}")
    if supports_window(kernel) and ring_ok:
        body = []
        _emit_body(kernel, body, vt, windowed=True, openmp=space_omp)
        lines.append("")
        lines.append(
            f"void {entry_symbol(kernel, windowed=True)}({decl}) {{"
        )
        lines.extend(_unused_casts(params, body))
        lines.extend(body)
        lines.append("}")
    lines.append("")
    _emit_batched_entry(
        kernel, lines, vt, openmp=batch_omp,
        unused_casts=_unused_casts,
    )
    lines.append("")
    return "\n".join(lines)


def _emit_batched_entry(
    kernel: Kernel,
    lines: List[str],
    vt: str,
    openmp: bool,
    unused_casts=None,
) -> None:
    """Emit ``repro_<name>_batched``: a whole map group in one call.

    An outer loop over the ``B`` problems; inside it, locals shadow
    the per-problem entry's formals (``farr`` points at this member's
    padded slice, ``ub_<dim>``/``seq_<s>``/``arg_<a>`` are this
    member's row of the stacked context), so the body below is the
    *same* emission as the per-problem entry, only linearising with
    the padded extents. Each member therefore computes bitwise the
    cells the per-problem loop would — at any thread count, since the
    parallel axis is the problem loop and the per-member nest stays
    serial.
    """
    params = native_batched_param_spec(kernel)
    decl = ", ".join(f"{p.ctext} {p.name}" for p in params)
    pad = "  "
    body: List[str] = []
    tsz = " * ".join(f"pad_{d}" for d in kernel.dims)
    body.append(f"{pad}const long _tsz = {tsz};")
    if openmp:
        body.append(
            f"{pad}#pragma omp parallel for schedule(static)"
        )
    body.append(f"{pad}for (long _b = 0; _b < nprob; _b++) {{")
    inner = pad + "  "
    body.append(f"{inner}{vt}* farr = btab + _b * _tsz;")
    for d in kernel.dims:
        body.append(f"{inner}const long ub_{d} = b_ub_{d}[_b];")
    refs = kernel.referenced_names()
    for s in sorted(refs["seqs"]):
        body.append(
            f"{inner}const long* seq_{s} = "
            f"b_seq_{s} + _b * b_seq_{s}_cols;"
        )
    scalar_kinds = _scalar_kinds(kernel)
    for a in sorted(refs["scalars"]):
        ctext = (
            "long"
            if scalar_kinds.get(a, "scalar_f64") == "scalar_int"
            else "double"
        )
        body.append(f"{inner}const {ctext} arg_{a} = b_arg_{a}[_b];")
    cell = CCellEmitter(
        kernel,
        windowed=False,
        strides=tuple(f"pad_{d}" for d in kernel.dims),
    )
    _emit_body(
        kernel, body, vt, windowed=False, openmp=False,
        cell=cell, pad=inner,
    )
    body.append(f"{pad}}}")
    lines.append(
        f"void {entry_symbol(kernel, batched=True)}({decl}) {{"
    )
    if unused_casts is not None:
        lines.extend(unused_casts(params, body))
    lines.extend(body)
    lines.append("}")


def _emit_body(
    kernel: Kernel,
    lines: List[str],
    vt: str,
    windowed: bool,
    openmp: bool,
    cell: Optional[CCellEmitter] = None,
    pad: str = "  ",
) -> None:
    if cell is None:
        cell = CCellEmitter(kernel, windowed=windowed)
    time_loop = _time_loop(kernel)
    if time_loop is None:
        if windowed:
            raise CodegenError(
                "windowed emission requires a partition-major time loop"
            )
        _emit_nest(
            kernel, kernel.nest.roots, cell, lines, pad, vt,
            mode="compute", openmp=openmp, space_seen=False,
        )
        return
    low = time_loop.lower.c_text()
    high = time_loop.upper.c_text()
    tv = time_loop.var
    lines.append(f"{pad}long _plo = {low};")
    lines.append(f"{pad}long _phi = {high};")
    lines.append(f"{pad}if (part_lo > _plo) _plo = part_lo;")
    lines.append(f"{pad}if (part_hi < _phi) _phi = part_hi;")
    if windowed:
        rows = kernel.window + 1
        # The ring column of a cell is its window_col index (the
        # shared printer's swin addressing — a pure space dimension
        # when one exists), so the ring is as wide as that dimension.
        col_dim = kernel.dims[cell.window_col]
        lines.append(
            f"{pad}const long win_cols = ub_{col_dim} + 1;"
        )
        lines.append(
            f"{pad}/* Section 4.8: stack-resident ring buffer of the "
            f"last {rows} partitions (window {kernel.window}). */"
        )
        lines.append(f"{pad}{vt} swin[{rows} * win_cols];")
        # A replay may start mid-schedule: preload the ring with the
        # table rows of the window partitions preceding part_lo.
        lines.append(f"{pad}long _pre = _plo - {kernel.window};")
        lines.append(f"{pad}if (_pre < ({low})) _pre = {low};")
        lines.append(
            f"{pad}for (long {tv} = _pre; {tv} < _plo; {tv}++) {{"
        )
        _emit_nest(
            kernel, time_loop.body, cell, lines, pad + "  ", vt,
            mode="preload", openmp=False, space_seen=False,
        )
        lines.append(f"{pad}}}")
    lines.append(
        f"{pad}for (long {tv} = _plo; {tv} <= _phi; {tv}++) {{"
    )
    _emit_nest(
        kernel, time_loop.body, cell, lines, pad + "  ", vt,
        mode="compute", openmp=openmp, space_seen=False,
    )
    lines.append(f"{pad}}}")


def _emit_nest(
    kernel: Kernel,
    nodes,
    cell: CCellEmitter,
    lines: List[str],
    pad: str,
    vt: str,
    mode: str,
    openmp: bool,
    space_seen: bool,
) -> None:
    dim_refs = tuple(ir.DimRef(d) for d in kernel.dims)
    for node in nodes:
        if isinstance(node, loopast.Loop):
            low = node.lower.c_text()
            high = node.upper.c_text()
            if openmp and not space_seen:
                # OpenMP's canonical loop form rejects function calls
                # (our min/max helpers) in the controlling predicate:
                # hoist the bounds into loop-invariant temporaries.
                lo_t, hi_t = cell.fresh(), cell.fresh()
                lines.append(f"{pad}const long {lo_t} = {low};")
                lines.append(f"{pad}const long {hi_t} = {high};")
                lines.append(f"{pad}#pragma omp parallel for")
                low, high = lo_t, hi_t
            lines.append(
                f"{pad}for (long {node.var} = {low}; "
                f"{node.var} <= {high}; {node.var}++) {{"
            )
            _emit_nest(
                kernel, node.body, cell, lines, pad + "  ", vt,
                mode, openmp, space_seen=True,
            )
            lines.append(pad + "}")
        elif isinstance(node, loopast.Assign):
            lines.append(
                f"{pad}long {node.var} = {node.value.c_text()};"
            )
            _emit_nest(
                kernel, node.body, cell, lines, pad, vt,
                mode, openmp, space_seen,
            )
        elif isinstance(node, loopast.Guard):
            lines.append(
                f"{pad}if (({loopast.affine_c_text(node.expr)}) % "
                f"{node.divisor} == 0) {{"
            )
            _emit_nest(
                kernel, node.body, cell, lines, pad + "  ", vt,
                mode, openmp, space_seen,
            )
            lines.append(pad + "}")
        elif isinstance(node, loopast.Stmt):
            if mode == "preload":
                ring = cell._table_ref(dim_refs)
                lines.append(
                    f"{pad}{ring} = {cell.linear_ref(dim_refs)};"
                )
                continue
            target = cell.fresh()
            lines.append(f"{pad}{vt} {target};")
            cell.emit_to(kernel.body.cell, target, lines, pad)
            store = cell._table_ref(dim_refs)
            lines.append(f"{pad}{store} = {target};")
            if cell.windowed:
                # Copy the row out: callers (result extraction,
                # whole-table reductions, parity checks) read the
                # full table, not the ring.
                lines.append(
                    f"{pad}{cell.linear_ref(dim_refs)} = {target};"
                )
        else:
            raise CodegenError(f"unknown nest node {node!r}")
