"""CUDA C backend: renders a kernel as ``__global__`` source text.

This is the target-code view of the synthesis (Figures 8 and 10): the
outer space loop is strided across the block's threads (``+ t`` start,
``+= tn`` step) and a ``__syncthreads()`` barrier separates
partitions. The text is what the compiler *would* hand to nvcc on real
hardware; in this reproduction it is emitted for inspection, examples
and tests (no GPU is assumed — see DESIGN.md §2). The cell-expression
printer is shared with the *executable* native C backend
(:mod:`repro.ir.cbackend`) via :mod:`repro.ir.c_expr`.
"""

from __future__ import annotations

from typing import List

from ..lang.errors import CodegenError
from ..polyhedral import loopast
from . import expr as ir
from .c_expr import C_HELPERS, CCellEmitter, ctype_of
from .kernel import Kernel

_HELPERS = C_HELPERS


def _ctype(kind: str) -> str:
    return ctype_of(kind)


class _CudaCell(CCellEmitter):
    """The shared C cell printer, under its historical CUDA name."""


def emit_cuda(kernel: Kernel, windowed: bool = False) -> str:
    """Render the full ``__global__`` kernel (Figure 10 template).

    ``windowed=True`` applies the sliding-window optimisation of
    Section 4.8: the kernel keeps only ``window + 1`` partitions of
    the table in a shared-memory ring buffer (indexed by partition
    modulo the row count and by the strided space coordinate), almost
    eliminating global-memory latency on the recursion's reads. Only
    available when the descent functions are uniform (the paper's
    restriction — ``kernel.window`` is ``None`` otherwise).
    """
    if windowed and kernel.window is None:
        raise CodegenError(
            "the sliding window requires uniform descent functions "
            "(Section 4.8)"
        )
    refs = kernel.referenced_names()
    value_type = _ctype(kernel.body.return_kind)

    params = [f"{value_type}* farr"]
    params += [f"long ub_{d}" for d in kernel.dims]
    if windowed:
        params += ["long win_cols"]
    params += [f"const long* seq_{s}" for s in sorted(refs["seqs"])]
    params += [f"double arg_{a}" for a in sorted(refs["scalars"])]
    for m in sorted(refs["matrices"]):
        params += [
            f"const long* mat_{m}",
            f"const long* rowidx_{m}",
            f"const long* colidx_{m}",
            f"long {m}_cols",
        ]
    for h in sorted(refs["hmms"]):
        params += [
            f"const int* hmm_{h}_isstart",
            f"const int* hmm_{h}_isend",
            f"const double* hmm_{h}_emis",
            f"const long* hmm_{h}_symidx",
            f"long {h}_nsym",
            f"const double* hmm_{h}_tprob",
            f"const long* hmm_{h}_tsrc",
            f"const long* hmm_{h}_ttgt",
            f"const long* hmm_{h}_inoff",
            f"const long* hmm_{h}_inids",
            f"const long* hmm_{h}_outoff",
            f"const long* hmm_{h}_outids",
        ]

    lines: List[str] = [_HELPERS]
    suffix = "_windowed" if windowed else ""
    lines.append(
        f"__global__ void {kernel.name}_kernel{suffix}("
        + ", ".join(params)
        + ") {"
    )
    lines.append("  const int t = threadIdx.x;")
    lines.append("  const int tn = blockDim.x;")
    if windowed:
        rows = kernel.window + 1
        lines.append(
            f"  // Section 4.8: ring buffer of the last {rows} "
            f"partitions (window {kernel.window})."
        )
        lines.append(
            f"  extern __shared__ {value_type} swin[];"
            f"  // [{rows} rows x win_cols]"
        )
    cell = _CudaCell(kernel, windowed=windowed)
    _emit_nest(
        kernel, kernel.nest.roots, cell, lines, "  ",
        value_type=value_type, thread_strided=False, depth=0,
    )
    lines.append("}")
    return "\n".join(lines)


def _emit_nest(
    kernel: Kernel,
    nodes,
    cell: _CudaCell,
    lines: List[str],
    pad: str,
    value_type: str,
    thread_strided: bool,
    depth: int,
) -> None:
    for node in nodes:
        if isinstance(node, loopast.Loop):
            is_time = node.var == kernel.nest.time_var
            # Figure 10: the first space loop is strided over threads.
            stride_this = not is_time and not thread_strided
            low = node.lower.c_text()
            high = node.upper.c_text()
            if stride_this:
                lines.append(
                    f"{pad}for (long {node.var} = ({low}) + t; "
                    f"{node.var} <= {high}; {node.var} += tn) {{"
                )
            else:
                lines.append(
                    f"{pad}for (long {node.var} = {low}; "
                    f"{node.var} <= {high}; {node.var}++) {{"
                )
            _emit_nest(
                kernel, node.body, cell, lines, pad + "  ",
                value_type, thread_strided or stride_this, depth + 1,
            )
            if is_time:
                # Figure 8/10: barrier between partitions.
                lines.append(pad + "  __syncthreads();")
            lines.append(pad + "}")
        elif isinstance(node, loopast.Assign):
            lines.append(
                f"{pad}long {node.var} = {node.value.c_text()};"
            )
            _emit_nest(
                kernel, node.body, cell, lines, pad,
                value_type, thread_strided, depth,
            )
        elif isinstance(node, loopast.Guard):
            lines.append(
                f"{pad}if (({loopast.affine_c_text(node.expr)}) % "
                f"{node.divisor} == 0) {{"
            )
            _emit_nest(
                kernel, node.body, cell, lines, pad + "  ",
                value_type, thread_strided, depth,
            )
            lines.append(pad + "}")
        elif isinstance(node, loopast.Stmt):
            target = cell.fresh()
            lines.append(f"{pad}{value_type} {target};")
            cell.emit_to(kernel.body.cell, target, lines, pad)
            store = cell._table_ref(
                tuple(ir.DimRef(d) for d in kernel.dims)
            )
            lines.append(f"{pad}{store} = {target};")
            if cell.windowed:
                # Results still need to reach global memory: write
                # back the cells of the last `window + 1` partitions
                # (everything an caller could still ask for).
                dims = kernel.dims
                linear = ir.DimRef(dims[0]).name
                text = linear
                for k in range(1, len(dims)):
                    text = (
                        f"({text}) * (ub_{dims[k]} + 1) + {dims[k]}"
                    )
                time_var = kernel.nest.time_var
                root = kernel.nest.roots[0]
                upper = root.upper.c_text()
                lines.append(
                    f"{pad}if ({time_var} >= ({upper}) - "
                    f"{kernel.window}) farr[{text}] = {target};"
                )
        else:
            raise CodegenError(f"unknown nest node {node!r}")
