"""CUDA C backend: renders a kernel as ``__global__`` source text.

This is the target-code view of the synthesis (Figures 8 and 10): the
outer space loop is strided across the block's threads (``+ t`` start,
``+= tn`` step) and a ``__syncthreads()`` barrier separates
partitions. The text is what the compiler *would* hand to nvcc on real
hardware; in this reproduction it is emitted for inspection, examples
and tests (no GPU is assumed — see DESIGN.md §2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..lang.errors import CodegenError
from ..polyhedral import loopast
from . import expr as ir
from .kernel import Kernel

_HELPERS = """\
#define ceild(n, d) (((n) < 0) ? -((-(n)) / (d)) : ((n) + (d) - 1) / (d))
#define floord(n, d) (((n) < 0) ? -((-(n) + (d) - 1) / (d)) : (n) / (d))
"""


def _ctype(kind: str) -> str:
    return {"int": "long", "bool": "int"}.get(kind, "double")


class _CudaCell:
    """Emits the cell expression as C statements."""

    def __init__(self, kernel: Kernel, windowed: bool = False) -> None:
        self.kernel = kernel
        self.windowed = windowed
        self.counter = 0

    def fresh(self) -> str:
        name = f"_t{self.counter}"
        self.counter += 1
        return name

    def inline(self, node: ir.Node) -> Optional[str]:
        if isinstance(node, ir.Const):
            if node.value == float("-inf"):
                return "(-INFINITY)"
            if node.value == float("inf"):
                return "INFINITY"
            if isinstance(node.value, bool):
                return "1" if node.value else "0"
            return repr(node.value)
        if isinstance(node, (ir.DimRef, ir.VarRef)):
            return node.name
        if isinstance(node, ir.ArgRef):
            return f"arg_{node.name}"
        if isinstance(node, ir.Binary):
            left = self.inline(node.left)
            right = self.inline(node.right)
            if left is None or right is None:
                return None
            if node.op == "min":
                return f"min({left}, {right})"
            if node.op == "max":
                return f"max({left}, {right})"
            if node.op == "logaddexp":
                return f"logaddexp({left}, {right})"
            return f"({left} {node.op} {right})"
        if isinstance(node, ir.Log):
            operand = self.inline(node.operand)
            return None if operand is None else f"safelog({operand})"
        if isinstance(node, ir.Select):
            cond = self.inline(node.cond)
            then = self.inline(node.then)
            other = self.inline(node.otherwise)
            if cond is None or then is None or other is None:
                return None
            return f"({cond} ? {then} : {other})"
        if isinstance(node, ir.TableRead):
            return self._table_ref(node.indices)
        if isinstance(node, ir.SeqRead):
            index = self.inline(node.index)
            return None if index is None else f"seq_{node.seq}[{index}]"
        if isinstance(node, ir.MatrixRead):
            row = self.inline(node.row)
            col = self.inline(node.col)
            if row is None or col is None:
                return None
            return (
                f"mat_{node.matrix}[rowidx_{node.matrix}[{row}] * "
                f"{node.matrix}_cols + colidx_{node.matrix}[{col}]]"
            )
        if isinstance(node, ir.StateFlag):
            state = self.inline(node.state)
            if state is None:
                return None
            return f"hmm_{node.hmm}_{node.which}[{state}]"
        if isinstance(node, ir.EmissionRead):
            state = self.inline(node.state)
            symbol = self.inline(node.symbol)
            if state is None or symbol is None:
                return None
            return (
                f"hmm_{node.hmm}_emis[{state} * {node.hmm}_nsym + "
                f"hmm_{node.hmm}_symidx[{symbol}]]"
            )
        if isinstance(node, ir.TransField):
            trans = self.inline(node.trans)
            if trans is None:
                return None
            suffix = {"prob": "tprob", "start": "tsrc", "end": "ttgt"}[
                node.which
            ]
            return f"hmm_{node.hmm}_{suffix}[{trans}]"
        if isinstance(node, (ir.ReduceLoop, ir.RangeReduce)):
            return None
        raise CodegenError(f"cannot render IR node {node!r}")

    def _table_ref(self, indices: Tuple[ir.Node, ...]) -> Optional[str]:
        """Row-major linearised table access.

        Windowed kernels address the shared ring buffer instead: the
        row is the cell's partition modulo the resident row count,
        the column its first space coordinate (Section 4.8).
        """
        rendered = [self.inline(i) for i in indices]
        if any(r is None for r in rendered):
            return None
        dims = self.kernel.dims
        if self.windowed:
            rows = self.kernel.window + 1
            coeffs = self.kernel.schedule.coefficients
            terms = [
                f"({a})*({idx})"
                for a, idx in zip(coeffs, rendered)
                if a != 0
            ]
            partition = " + ".join(terms) if terms else "0"
            row = f"((({partition}) % {rows}) + {rows}) % {rows}"
            return f"swin[({row}) * win_cols + ({rendered[0]})]"
        text = rendered[0]
        for k in range(1, len(dims)):
            text = f"({text}) * (ub_{dims[k]} + 1) + {rendered[k]}"
        return f"farr[{text}]"

    def emit_to(
        self, node: ir.Node, target: str, lines: List[str], pad: str
    ) -> None:
        text = self.inline(node)
        if text is not None:
            lines.append(f"{pad}{target} = {text};")
            return
        if isinstance(node, ir.Select):
            cond = self._force(node.cond, lines, pad)
            lines.append(f"{pad}if ({cond}) {{")
            self.emit_to(node.then, target, lines, pad + "  ")
            lines.append(f"{pad}}} else {{")
            self.emit_to(node.otherwise, target, lines, pad + "  ")
            lines.append(f"{pad}}}")
            return
        if isinstance(node, ir.Binary):
            left = self._force(node.left, lines, pad)
            right = self._force(node.right, lines, pad)
            if node.op in ("min", "max", "logaddexp"):
                lines.append(
                    f"{pad}{target} = {node.op}({left}, {right});"
                )
            else:
                lines.append(
                    f"{pad}{target} = {left} {node.op} {right};"
                )
            return
        if isinstance(node, ir.ReduceLoop):
            self._emit_reduce(node, target, lines, pad)
            return
        if isinstance(node, ir.RangeReduce):
            self._emit_range_reduce(node, target, lines, pad)
            return
        raise CodegenError(f"cannot emit IR node {node!r}")

    def _force(self, node: ir.Node, lines: List[str], pad: str) -> str:
        text = self.inline(node)
        if text is not None:
            return text
        temp = self.fresh()
        lines.append(f"{pad}double {temp};")
        self.emit_to(node, temp, lines, pad)
        return temp

    @staticmethod
    def _reduce_init(node) -> str:
        if node.kind == "sum":
            return "-INFINITY" if node.logspace else "0.0"
        if node.kind == "min":
            return "INFINITY"
        if node.prob and not node.logspace:
            return "0.0"
        return "-INFINITY"

    def _emit_range_reduce(
        self, node: ir.RangeReduce, target: str, lines: List[str],
        pad: str,
    ) -> None:
        lo = self._force(node.lo, lines, pad)
        hi = self._force(node.hi, lines, pad)
        acc = self.fresh()
        lines.append(f"{pad}double {acc} = {self._reduce_init(node)};")
        lines.append(
            f"{pad}for (long {node.var} = {lo}; {node.var} <= {hi}; "
            f"{node.var}++) {{"
        )
        inner = pad + "  "
        body = self._force(node.body, lines, inner)
        if node.kind == "sum" and node.logspace:
            lines.append(f"{inner}{acc} = logaddexp({acc}, {body});")
        elif node.kind == "sum":
            lines.append(f"{inner}{acc} += {body};")
        else:
            lines.append(f"{inner}{acc} = {node.kind}({acc}, {body});")
        lines.append(f"{pad}}}")
        lines.append(f"{pad}{target} = {acc};")

    def _emit_reduce(
        self, node: ir.ReduceLoop, target: str, lines: List[str], pad: str
    ) -> None:
        state = self._force(node.state, lines, pad)
        prefix = f"hmm_{node.hmm}"
        ids = "inids" if node.source == "to" else "outids"
        offsets = "inoff" if node.source == "to" else "outoff"
        acc = self.fresh()
        lines.append(f"{pad}double {acc} = {self._reduce_init(node)};")
        lines.append(
            f"{pad}for (int _e = {prefix}_{offsets}[{state}]; "
            f"_e < {prefix}_{offsets}[{state} + 1]; _e++) {{"
        )
        inner = pad + "  "
        lines.append(f"{inner}int {node.var} = {prefix}_{ids}[_e];")
        body = self._force(node.body, lines, inner)
        if node.kind == "sum" and node.logspace:
            lines.append(f"{inner}{acc} = logaddexp({acc}, {body});")
        elif node.kind == "sum":
            lines.append(f"{inner}{acc} += {body};")
        else:
            lines.append(f"{inner}{acc} = {node.kind}({acc}, {body});")
        lines.append(f"{pad}}}")
        lines.append(f"{pad}{target} = {acc};")


def emit_cuda(kernel: Kernel, windowed: bool = False) -> str:
    """Render the full ``__global__`` kernel (Figure 10 template).

    ``windowed=True`` applies the sliding-window optimisation of
    Section 4.8: the kernel keeps only ``window + 1`` partitions of
    the table in a shared-memory ring buffer (indexed by partition
    modulo the row count and by the strided space coordinate), almost
    eliminating global-memory latency on the recursion's reads. Only
    available when the descent functions are uniform (the paper's
    restriction — ``kernel.window`` is ``None`` otherwise).
    """
    if windowed and kernel.window is None:
        raise CodegenError(
            "the sliding window requires uniform descent functions "
            "(Section 4.8)"
        )
    refs = kernel.referenced_names()
    value_type = _ctype(kernel.body.return_kind)

    params = [f"{value_type}* farr"]
    params += [f"long ub_{d}" for d in kernel.dims]
    if windowed:
        params += ["long win_cols"]
    params += [f"const long* seq_{s}" for s in sorted(refs["seqs"])]
    params += [f"double arg_{a}" for a in sorted(refs["scalars"])]
    for m in sorted(refs["matrices"]):
        params += [
            f"const long* mat_{m}",
            f"const long* rowidx_{m}",
            f"const long* colidx_{m}",
            f"long {m}_cols",
        ]
    for h in sorted(refs["hmms"]):
        params += [
            f"const int* hmm_{h}_isstart",
            f"const int* hmm_{h}_isend",
            f"const double* hmm_{h}_emis",
            f"const long* hmm_{h}_symidx",
            f"long {h}_nsym",
            f"const double* hmm_{h}_tprob",
            f"const long* hmm_{h}_tsrc",
            f"const long* hmm_{h}_ttgt",
            f"const long* hmm_{h}_inoff",
            f"const long* hmm_{h}_inids",
            f"const long* hmm_{h}_outoff",
            f"const long* hmm_{h}_outids",
        ]

    lines: List[str] = [_HELPERS]
    suffix = "_windowed" if windowed else ""
    lines.append(
        f"__global__ void {kernel.name}_kernel{suffix}("
        + ", ".join(params)
        + ") {"
    )
    lines.append("  const int t = threadIdx.x;")
    lines.append("  const int tn = blockDim.x;")
    if windowed:
        rows = kernel.window + 1
        lines.append(
            f"  // Section 4.8: ring buffer of the last {rows} "
            f"partitions (window {kernel.window})."
        )
        lines.append(
            f"  extern __shared__ {value_type} swin[];"
            f"  // [{rows} rows x win_cols]"
        )
    cell = _CudaCell(kernel, windowed=windowed)
    _emit_nest(
        kernel, kernel.nest.roots, cell, lines, "  ",
        value_type=value_type, thread_strided=False, depth=0,
    )
    lines.append("}")
    return "\n".join(lines)


def _emit_nest(
    kernel: Kernel,
    nodes,
    cell: _CudaCell,
    lines: List[str],
    pad: str,
    value_type: str,
    thread_strided: bool,
    depth: int,
) -> None:
    for node in nodes:
        if isinstance(node, loopast.Loop):
            is_time = node.var == kernel.nest.time_var
            # Figure 10: the first space loop is strided over threads.
            stride_this = not is_time and not thread_strided
            low = node.lower.c_text()
            high = node.upper.c_text()
            if stride_this:
                lines.append(
                    f"{pad}for (long {node.var} = ({low}) + t; "
                    f"{node.var} <= {high}; {node.var} += tn) {{"
                )
            else:
                lines.append(
                    f"{pad}for (long {node.var} = {low}; "
                    f"{node.var} <= {high}; {node.var}++) {{"
                )
            _emit_nest(
                kernel, node.body, cell, lines, pad + "  ",
                value_type, thread_strided or stride_this, depth + 1,
            )
            if is_time:
                # Figure 8/10: barrier between partitions.
                lines.append(pad + "  __syncthreads();")
            lines.append(pad + "}")
        elif isinstance(node, loopast.Assign):
            lines.append(
                f"{pad}long {node.var} = {node.value.c_text()};"
            )
            _emit_nest(
                kernel, node.body, cell, lines, pad,
                value_type, thread_strided, depth,
            )
        elif isinstance(node, loopast.Guard):
            lines.append(
                f"{pad}if (({loopast.affine_c_text(node.expr)}) % "
                f"{node.divisor} == 0) {{"
            )
            _emit_nest(
                kernel, node.body, cell, lines, pad + "  ",
                value_type, thread_strided, depth,
            )
            lines.append(pad + "}")
        elif isinstance(node, loopast.Stmt):
            target = cell.fresh()
            lines.append(f"{pad}{value_type} {target};")
            cell.emit_to(kernel.body.cell, target, lines, pad)
            store = cell._table_ref(
                tuple(ir.DimRef(d) for d in kernel.dims)
            )
            lines.append(f"{pad}{store} = {target};")
            if cell.windowed:
                # Results still need to reach global memory: write
                # back the cells of the last `window + 1` partitions
                # (everything an caller could still ask for).
                dims = kernel.dims
                linear = ir.DimRef(dims[0]).name
                text = linear
                for k in range(1, len(dims)):
                    text = (
                        f"({text}) * (ub_{dims[k]} + 1) + {dims[k]}"
                    )
                time_var = kernel.nest.time_var
                root = kernel.nest.roots[0]
                upper = root.upper.c_text()
                lines.append(
                    f"{pad}if ({time_var} >= ({upper}) - "
                    f"{kernel.window}) farr[{text}] = {target};"
                )
        else:
            raise CodegenError(f"unknown nest node {node!r}")


