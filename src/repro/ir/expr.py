"""The low-level intermediate representation (Section 3.3).

The IR abstracts over the massively-parallel target: a kernel is a
loop structure (from the polyhedral generator) whose innermost
statement evaluates one *cell expression* — the function body with
recursive calls replaced by dynamic-programming table reads. Backends
render the same IR as CUDA C text (:mod:`repro.ir.cuda`) or as
executable Python for the simulated device (:mod:`repro.ir.pybackend`).

Kinds: ``int``, ``float``, ``bool``, ``char`` (a raw character code)
and ``prob``. Under the log-space probability representation (chosen
by the compiler for the ``prob`` type, Section 3.2), probability
multiplication lowers to ``+`` and addition to ``logaddexp`` — that
rewriting happens in :mod:`repro.ir.lower`, so the IR itself is
representation-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Node:
    """Base class of IR expressions."""


@dataclass(frozen=True)
class Const(Node):
    value: object
    kind: str  # int | float | bool

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class DimRef(Node):
    """The current cell's coordinate along one recursion dimension."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VarRef(Node):
    """A reduction binder (holds a transition id)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArgRef(Node):
    """A scalar calling parameter (float/int/char constant per run)."""

    name: str
    kind: str

    def __str__(self) -> str:
        return f"arg:{self.name}"


@dataclass(frozen=True)
class Binary(Node):
    """Arithmetic or comparison; ``op`` uses DSL spellings plus
    ``logaddexp`` for log-space probability addition. ``kind`` is the
    result kind — it decides division semantics (int division
    truncates, as in C/CUDA)."""

    op: str
    left: Node
    right: Node
    kind: str = "float"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Log(Node):
    """Natural log — converts a linear operand into log space."""

    operand: Node

    def __str__(self) -> str:
        return f"log({self.operand})"


@dataclass(frozen=True)
class Select(Node):
    """``cond ? then : else`` — the branching if expression."""

    cond: Node
    then: Node
    otherwise: Node

    def __str__(self) -> str:
        return f"({self.cond} ? {self.then} : {self.otherwise})"


@dataclass(frozen=True)
class TableRead(Node):
    """Read a DP table at the given coordinates (a recursive call).

    ``table`` names the callee's table for cross-calls within a
    mutual group (Section 9); empty means the function's own table.
    """

    indices: Tuple[Node, ...]
    table: str = ""

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.indices)
        name = f"farr_{self.table}" if self.table else "farr"
        return f"{name}[{inner}]"


@dataclass(frozen=True)
class SeqRead(Node):
    """The raw character code of ``seq[index]``."""

    seq: str
    index: Node

    def __str__(self) -> str:
        return f"{self.seq}[{self.index}]"


@dataclass(frozen=True)
class MatrixRead(Node):
    """Substitution matrix lookup; operands are character codes."""

    matrix: str
    row: Node
    col: Node

    def __str__(self) -> str:
        return f"{self.matrix}[{self.row}, {self.col}]"


@dataclass(frozen=True)
class StateFlag(Node):
    """``isstart``/``isend`` of a state id."""

    which: str  # "isstart" | "isend"
    hmm: str
    state: Node

    def __str__(self) -> str:
        return f"{self.hmm}.{self.which}({self.state})"


@dataclass(frozen=True)
class EmissionRead(Node):
    """Emission probability of a state for a character code."""

    hmm: str
    state: Node
    symbol: Node

    def __str__(self) -> str:
        return f"{self.hmm}.emission[{self.state}, {self.symbol}]"


@dataclass(frozen=True)
class TransField(Node):
    """A transition attribute: ``prob``, ``start`` or ``end``."""

    which: str  # "prob" | "start" | "end"
    hmm: str
    trans: Node

    def __str__(self) -> str:
        return f"{self.hmm}.{self.which}({self.trans})"


@dataclass(frozen=True)
class ReduceLoop(Node):
    """A bounded reduction over a transition set.

    ``source`` is ``"to"`` (``transitionsto``) or ``"from"``; ``var``
    is bound to each transition id while evaluating ``body``.
    ``logspace`` selects ``logaddexp`` accumulation for sums.
    """

    kind: str  # "sum" | "min" | "max"
    var: str
    source: str  # "to" | "from"
    hmm: str
    state: Node
    body: Node
    logspace: bool = False
    #: The reduction produces a probability: an empty set then means
    #: "no path", whose max is 0 (or -inf in log space).
    prob: bool = False

    def __str__(self) -> str:
        return (
            f"{self.kind}({self.var} in {self.hmm}.{self.source}"
            f"({self.state}) : {self.body})"
        )


@dataclass(frozen=True)
class RangeReduce(Node):
    """A bounded reduction over an inclusive integer range.

    Section 5's looping extension: ``max(k in lo .. hi : body)``.
    Semantics of empty ranges match transition-set reductions: sums
    are 0, a max of probabilities is 0 (no path).
    """

    kind: str  # "sum" | "min" | "max"
    var: str
    lo: Node
    hi: Node
    body: Node
    logspace: bool = False
    prob: bool = False

    def __str__(self) -> str:
        return (
            f"{self.kind}({self.var} in {self.lo} .. {self.hi} : "
            f"{self.body})"
        )


def children(node: Node) -> Tuple[Node, ...]:
    """Direct sub-expressions of an IR node."""
    if isinstance(node, Binary):
        return (node.left, node.right)
    if isinstance(node, Log):
        return (node.operand,)
    if isinstance(node, Select):
        return (node.cond, node.then, node.otherwise)
    if isinstance(node, TableRead):
        return node.indices
    if isinstance(node, SeqRead):
        return (node.index,)
    if isinstance(node, MatrixRead):
        return (node.row, node.col)
    if isinstance(node, StateFlag):
        return (node.state,)
    if isinstance(node, EmissionRead):
        return (node.state, node.symbol)
    if isinstance(node, TransField):
        return (node.trans,)
    if isinstance(node, ReduceLoop):
        return (node.state, node.body)
    if isinstance(node, RangeReduce):
        return (node.lo, node.hi, node.body)
    return ()


def walk(node: Node):
    """Yield ``node`` and all of its descendants, pre-order."""
    yield node
    for child in children(node):
        yield from walk(child)


@dataclass
class OpCounts:
    """Static per-cell operation counts, for the device cost model.

    ``reduce_body`` counts operations *per reduction iteration*; the
    cost model multiplies by the model's mean transition degree.
    """

    arith: int = 0
    compare: int = 0
    select: int = 0
    table_reads: int = 0
    seq_reads: int = 0
    matrix_reads: int = 0
    hmm_reads: int = 0
    special: int = 0  # log / logaddexp (multi-cycle transcendental)
    reduce_body: "OpCounts" = None  # type: ignore[assignment]
    reduce_count: int = 0

    def scaled_total(self, per_iteration: float) -> Dict[str, float]:
        """Flatten into effective per-cell counts, with reductions
        weighted by ``per_iteration`` expected iterations."""
        totals = {
            "arith": float(self.arith),
            "compare": float(self.compare),
            "select": float(self.select),
            "table_reads": float(self.table_reads),
            "seq_reads": float(self.seq_reads),
            "matrix_reads": float(self.matrix_reads),
            "hmm_reads": float(self.hmm_reads),
            "special": float(self.special),
        }
        if self.reduce_body is not None and self.reduce_count:
            inner = self.reduce_body.scaled_total(per_iteration)
            for key, value in inner.items():
                totals[key] += (
                    self.reduce_count * per_iteration * value
                )
            # Accumulator update per iteration.
            totals["arith"] += self.reduce_count * per_iteration
        return totals


def count_ops(node: Node) -> OpCounts:
    """Walk ``node`` and tally static operation counts."""
    counts = OpCounts()
    _count(node, counts)
    return counts


def _count(node: Node, counts: OpCounts) -> None:
    if isinstance(node, Binary):
        if node.op in ("==", "!=", "<", ">", "<=", ">="):
            counts.compare += 1
        elif node.op == "logaddexp":
            counts.special += 1
        else:
            counts.arith += 1
    elif isinstance(node, Log):
        counts.special += 1
    elif isinstance(node, Select):
        counts.select += 1
    elif isinstance(node, TableRead):
        counts.table_reads += 1
    elif isinstance(node, SeqRead):
        counts.seq_reads += 1
    elif isinstance(node, MatrixRead):
        counts.matrix_reads += 1
    elif isinstance(node, (StateFlag, EmissionRead, TransField)):
        counts.hmm_reads += 1
    if isinstance(node, ReduceLoop):
        counts.reduce_count += 1
        body = OpCounts()
        _count(node.body, body)
        if counts.reduce_body is None:
            counts.reduce_body = body
        else:
            _merge(counts.reduce_body, body)
        _count(node.state, counts)
        return
    if isinstance(node, RangeReduce):
        counts.reduce_count += 1
        body = OpCounts()
        _count(node.body, body)
        if counts.reduce_body is None:
            counts.reduce_body = body
        else:
            _merge(counts.reduce_body, body)
        _count(node.lo, counts)
        _count(node.hi, counts)
        return
    for child in children(node):
        _count(child, counts)


def _merge(into: OpCounts, other: OpCounts) -> None:
    into.arith += other.arith
    into.compare += other.compare
    into.select += other.select
    into.table_reads += other.table_reads
    into.seq_reads += other.seq_reads
    into.matrix_reads += other.matrix_reads
    into.hmm_reads += other.hmm_reads
    into.special += other.special
