"""Compiled Python backend for mutual groups (Section 9).

One generated module drives a whole group: a single global time loop
interleaves the member functions' partitions (each shifted by its
schedule offset), with every function's space loops inlined in a
per-partition step function. Cross-calls read the callee's table
directly — all writes from earlier global partitions, by the joint
schedules' compatibility.

The generated entry point::

    kernel(tables, ctxs, global_lo, global_hi)

``tables``/``ctxs`` are name-keyed dicts; the global partition range
is computed by the caller from the domains (the engine knows them).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..lang.errors import CodegenError
from ..polyhedral import loopast
from ..schedule.mutual_rec import MutualSchedule
from .kernel import Kernel
from .pybackend import _PRELUDE, _CellEmitter, bound_py, div_py, affine_py


def emit_group_source(
    kernels: Mapping[str, Kernel],
    mutual: MutualSchedule,
    func_name: str = "kernel",
) -> str:
    """Emit the module source for one mutual group."""
    names = sorted(kernels)
    lines: List[str] = [_PRELUDE, ""]

    for name in names:
        _emit_step(lines, name, kernels[name], names)
        lines.append("")

    lines.append(f"def {func_name}(tables, ctxs, global_lo, global_hi):")
    pad = "    "
    for name in names:
        lines.append(f"{pad}T_{name} = tables['{name}']")
    lines.append(f"{pad}for _gp in range(global_lo, global_hi + 1):")
    inner = pad + "    "
    for name in names:
        offset = mutual[name].offset
        tables_args = ", ".join(f"T_{n}" for n in names)
        lines.append(
            f"{inner}_step_{name}({tables_args}, "
            f"_gp - ({offset}), ctxs['{name}'])"
        )
    lines.append(f"{pad}return tables")
    return "\n".join(lines)


def _emit_step(
    lines: List[str],
    name: str,
    kernel: Kernel,
    group_names: List[str],
) -> None:
    """One function's per-partition step: guard + space loops + cell."""
    roots = kernel.nest.roots
    if len(roots) != 1 or not isinstance(roots[0], loopast.Loop):
        raise CodegenError(
            f"group member {name!r}: unexpected nest shape"
        )
    time_loop = roots[0]
    p = time_loop.var
    tables = ", ".join(f"T_{n}" for n in group_names)
    lines.append(f"def _step_{name}({tables}, {p}, ctx):")
    pad = "    "
    refs = kernel.referenced_names()
    for ub in kernel.ub_params():
        lines.append(f"{pad}{ub} = ctx['{ub}']")
    for seq in sorted(refs["seqs"]):
        lines.append(f"{pad}seq_{seq} = ctx['seq_{seq}']")
    for scalar in sorted(refs["scalars"]):
        lines.append(f"{pad}arg_{scalar} = ctx['arg_{scalar}']")
    for matrix in sorted(refs["matrices"]):
        for piece in ("mat", "rowidx", "colidx"):
            lines.append(
                f"{pad}{piece}_{matrix} = ctx['{piece}_{matrix}']"
            )
    for hmm in sorted(refs["hmms"]):
        for piece in (
            "isstart", "isend", "emis", "symidx", "tprob", "tsrc",
            "ttgt", "inoff", "inids", "outoff", "outids",
        ):
            lines.append(
                f"{pad}hmm_{hmm}_{piece} = ctx['hmm_{hmm}_{piece}']"
            )
    lines.append(
        f"{pad}if {p} < {bound_py(time_loop.lower)} or "
        f"{p} > {bound_py(time_loop.upper)}:"
    )
    lines.append(f"{pad}    return")
    emitter = _CellEmitter(own_table=f"T_{name}")
    _emit_body(kernel, name, time_loop.body, emitter, lines, pad)


def _emit_body(
    kernel: Kernel,
    name: str,
    nodes: Tuple[loopast.Node, ...],
    emitter: _CellEmitter,
    lines: List[str],
    pad: str,
) -> None:
    for node in nodes:
        if isinstance(node, loopast.Loop):
            lines.append(
                f"{pad}for {node.var} in range({bound_py(node.lower)}, "
                f"{bound_py(node.upper)} + 1):"
            )
            _emit_body(kernel, name, node.body, emitter, lines,
                       pad + "    ")
        elif isinstance(node, loopast.Assign):
            lines.append(f"{pad}{node.var} = {div_py(node.value)}")
            _emit_body(kernel, name, node.body, emitter, lines, pad)
        elif isinstance(node, loopast.Guard):
            lines.append(
                f"{pad}if ({affine_py(node.expr)}) % "
                f"{node.divisor} == 0:"
            )
            _emit_body(kernel, name, node.body, emitter, lines,
                       pad + "    ")
        elif isinstance(node, loopast.Stmt):
            target = emitter.fresh()
            emitter.emit_to(kernel.body.cell, target, lines, pad)
            index = ", ".join(kernel.dims)
            lines.append(f"{pad}T_{name}[{index}] = {target}")
        else:
            raise CodegenError(f"unknown nest node {node!r}")


def compile_group(
    kernels: Mapping[str, Kernel],
    mutual: MutualSchedule,
    func_name: str = "kernel",
):
    """Compile the group module; returns ``(callable, source)``."""
    source = emit_group_source(kernels, mutual, func_name)
    namespace: Dict[str, object] = {}
    code = compile(source, "<groupkernel>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated code
    return namespace[func_name], source
