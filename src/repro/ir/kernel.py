"""The compiled kernel: schedule + loop nest + cell expression.

A :class:`Kernel` is the backend-independent product of compiling one
DSL function for one schedule (the program-synthesis template of
Figure 8): iterate the partitions in order, compute every cell of a
partition concurrently, synchronise, continue. Backends turn it into
CUDA C text or executable Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..analysis.affine import Affine
from ..analysis.criteria import schedule_criteria
from ..lang.typecheck import CheckedFunction
from ..lang.types import HmmType, MatrixType, SeqType
from ..polyhedral.codegen import generate_loops
from ..polyhedral.loopast import LoopNest
from ..schedule.schedule import Schedule
from ..schedule.window import window_size
from . import expr as ir
from .lower import LoweredBody, lower_function

#: Prefix of the symbolic upper-bound parameter for each dimension.
UB_PREFIX = "ub_"


@dataclass
class Kernel:
    """One compiled (function, schedule) pair."""

    func: CheckedFunction
    schedule: Schedule
    nest: LoopNest
    body: LoweredBody
    window: Optional[int]

    @property
    def name(self) -> str:
        """The function's name."""
        return self.func.name

    @property
    def dims(self) -> Tuple[str, ...]:
        """The recursion dimensions, in order."""
        return self.func.dim_names

    @property
    def rank(self) -> int:
        """Number of recursion dimensions."""
        return len(self.dims)

    @property
    def logspace(self) -> bool:
        """Does the table hold log-probabilities?"""
        return self.body.logspace

    @property
    def counts(self) -> ir.OpCounts:
        """Static per-cell operation counts."""
        return self.body.counts

    def ub_params(self) -> Tuple[str, ...]:
        """The symbolic bound parameters of the nest, in dim order."""
        return tuple(UB_PREFIX + d for d in self.dims)

    def referenced_names(self) -> Dict[str, Set[str]]:
        """Names of sequences, matrices, models and scalars the cell
        expression touches (drives context preparation).

        Memoised on the instance (same idiom as the cache key's
        ``_cache_source_form``): context preparation asks per problem,
        and a lane-batched map group shares one kernel across every
        member, so the IR walk should run once, not once per member.
        """
        cached = self.__dict__.get("_referenced_names")
        if cached is not None:
            return cached
        seqs: Set[str] = set()
        matrices: Set[str] = set()
        hmms: Set[str] = set()
        scalars: Set[str] = set()
        for node in ir.walk(self.body.cell):
            if isinstance(node, ir.SeqRead):
                seqs.add(node.seq)
            elif isinstance(node, ir.MatrixRead):
                matrices.add(node.matrix)
            elif isinstance(
                node,
                (ir.StateFlag, ir.EmissionRead, ir.TransField,
                 ir.ReduceLoop),
            ):
                hmms.add(node.hmm)
            elif isinstance(node, ir.ArgRef):
                scalars.add(node.name)
        refs = {
            "seqs": seqs,
            "matrices": matrices,
            "hmms": hmms,
            "scalars": scalars,
        }
        self.__dict__["_referenced_names"] = refs
        return refs

    # -- serialisation -------------------------------------------------------
    #
    # A kernel is the unit the persistent compile cache stores: the
    # whole plan (checked function, schedule, nest, lowered body)
    # round-trips through pickle, and the executable callable is
    # rebuilt by re-exec'ing the backend's generated source.

    #: Bump when the pickled layout of Kernel (or anything it
    #: references) changes incompatibly; stale cache entries are then
    #: rejected instead of mis-loaded.
    SERIAL_FORMAT = 1

    def to_payload(self) -> bytes:
        """Serialize the full kernel plan for the persistent cache."""
        import pickle

        return pickle.dumps(
            {"format": Kernel.SERIAL_FORMAT,
             "schedule": self.schedule.to_json(),
             "kernel": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @staticmethod
    def from_payload(data: bytes) -> "Kernel":
        """Rebuild a kernel plan from :meth:`to_payload` output.

        Raises ``ValueError`` on any malformed or version-mismatched
        payload — callers treat that as a cache miss, never a crash.
        """
        import pickle

        try:
            record = pickle.loads(data)
            if record["format"] != Kernel.SERIAL_FORMAT:
                raise ValueError(
                    f"kernel payload format {record['format']!r} != "
                    f"{Kernel.SERIAL_FORMAT}"
                )
            kernel = record["kernel"]
        except ValueError:
            raise
        except Exception as err:
            raise ValueError(f"corrupt kernel payload: {err}") from err
        if not isinstance(kernel, Kernel):
            raise ValueError(
                f"kernel payload holds {type(kernel).__name__}"
            )
        return kernel

    def calling_param_kinds(self) -> Dict[str, str]:
        """Map calling parameter name -> coarse kind."""
        kinds: Dict[str, str] = {}
        for param in self.func.calling_params:
            if isinstance(param.type, SeqType):
                kinds[param.name] = "seq"
            elif isinstance(param.type, MatrixType):
                kinds[param.name] = "matrix"
            elif isinstance(param.type, HmmType):
                kinds[param.name] = "hmm"
            else:
                kinds[param.name] = "scalar"
        return kinds


def build_kernel(
    func: CheckedFunction,
    schedule: Schedule,
    prob_mode: str = "direct",
    time_var: str = "p",
    compute_window: bool = True,
) -> Kernel:
    """Compile ``func`` under ``schedule`` into a kernel.

    The loop nest is generated symbolically over ``ub_<dim>``
    parameters, so one kernel serves every problem size that shares
    the schedule. ``compute_window=False`` skips the sliding-window
    analysis — required for mutual-group members, whose dependences
    live in the *cross* descents (Section 9), not the self descents.
    """
    dims = func.dim_names
    if time_var in dims:
        time_var = "_p"
    bounds = [Affine.variable(UB_PREFIX + d) for d in dims]
    nest = generate_loops(
        dims, bounds, schedule.coefficients, time_var=time_var
    )
    body = lower_function(func, prob_mode)
    window = (
        window_size(schedule, schedule_criteria(func))
        if compute_window
        else None
    )
    return Kernel(func, schedule, nest, body, window)
