"""Lowering DSL bodies to the kernel IR.

Recursive calls become DP-table reads; characters become raw codes;
HMM accesses become array reads over the device layout. The
probability *representation* is chosen here (Section 3.2): ``direct``
keeps probabilities as plain doubles, ``logspace`` converts them to
log space to avoid underflow — multiplications become additions,
additions become ``logaddexp``, and literals/linear operands are
log-converted (constant-folded where possible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..lang import ast
from ..lang.errors import AnalysisError
from ..lang.typecheck import CheckedFunction
from ..lang.types import (
    FloatType,
    IntType,
    ProbType,
    StateType,
    TransitionSetType,
    TransitionType,
)
from . import expr as ir

#: Probability representations the backend understands.
PROB_MODES = ("direct", "logspace")


@dataclass(frozen=True)
class LoweredBody:
    """The cell expression of one kernel, plus its metadata."""

    cell: ir.Node
    return_kind: str  # "int" | "float" | "prob" | "bool"
    logspace: bool
    counts: ir.OpCounts


def lower_function(
    func: CheckedFunction,
    prob_mode: str = "direct",
    span_map: Optional[Dict[int, object]] = None,
) -> LoweredBody:
    """Lower ``func``'s body into a cell expression.

    ``span_map``, when given, is filled with ``id(ir_node) -> span`` of
    the source expression each IR node was lowered from, so IR-level
    analyses (the access verifier) can report caret diagnostics against
    the original text. IR nodes are frozen and carry no span of their
    own; the side map keys on identity, which stays valid as long as
    the returned tree is alive.
    """
    if prob_mode not in PROB_MODES:
        raise ValueError(f"unknown probability mode {prob_mode!r}")
    logspace = prob_mode == "logspace"
    lowerer = _Lowerer(func, logspace, span_map)
    cell = lowerer.lower(func.body)
    return_kind = _kind_name(func.return_type)
    return LoweredBody(
        cell, return_kind, logspace, ir.count_ops(cell)
    )


def _kind_name(t) -> str:
    if isinstance(t, IntType):
        return "int"
    if isinstance(t, ProbType):
        return "prob"
    if isinstance(t, FloatType):
        return "float"
    return "bool"


class _Lowerer:
    def __init__(
        self,
        func: CheckedFunction,
        logspace: bool,
        span_map: Optional[Dict[int, object]] = None,
    ) -> None:
        self.func = func
        self.logspace = logspace
        self.span_map = span_map
        self._dims = set(func.dim_names)
        self._binders: Dict[str, str] = {}  # binder -> hmm param

    # -- type helpers ---------------------------------------------------------

    def _type(self, expr: ast.Expr):
        return self.func.type_of(expr)

    def _is_log(self, expr: ast.Expr) -> bool:
        """Is the lowered value of ``expr`` in log space?"""
        return self.logspace and isinstance(self._type(expr), ProbType)

    def _to_log(self, node: ir.Node, expr: object) -> ir.Node:
        """Convert a linear numeric operand into log space.

        ``expr`` is the source expression when there is one (values
        already in log space pass through) or the ``_LINEAR`` sentinel
        for freshly built linear constants.
        """
        if isinstance(expr, ast.Expr) and self._is_log(expr):
            return node
        if isinstance(node, ir.Const):
            value = float(node.value)
            return ir.Const(
                math.log(value) if value > 0.0 else float("-inf"),
                "float",
            )
        return ir.Log(node)

    # -- dispatch -------------------------------------------------------------

    def lower(self, expr: ast.Expr) -> ir.Node:
        node = self._lower_impl(expr)
        if self.span_map is not None:
            # Children lower (and record) before their parent, so
            # setdefault keeps the most precise span for reused nodes.
            self.span_map.setdefault(id(node), expr.span)
        return node

    def _lower_impl(self, expr: ast.Expr) -> ir.Node:
        if isinstance(expr, ast.IntLit):
            if self._is_log(expr):
                return self._to_log(
                    ir.Const(float(expr.value), "float"), _LINEAR
                )
            if isinstance(self._type(expr), (FloatType, ProbType)):
                return ir.Const(float(expr.value), "float")
            return ir.Const(expr.value, "int")
        if isinstance(expr, ast.FloatLit):
            if self._is_log(expr):
                return self._to_log(
                    ir.Const(expr.value, "float"), _LINEAR
                )
            return ir.Const(expr.value, "float")
        if isinstance(expr, ast.BoolLit):
            return ir.Const(expr.value, "bool")
        if isinstance(expr, ast.CharLit):
            return ir.Const(ord(expr.value), "int")
        if isinstance(expr, ast.Var):
            return self._lower_var(expr)
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, ast.If):
            return ir.Select(
                self.lower(expr.cond),
                self.lower(expr.then_branch),
                self.lower(expr.else_branch),
            )
        if isinstance(expr, ast.Call):
            table = "" if expr.func == self.func.name else expr.func
            return ir.TableRead(
                tuple(self.lower(a) for a in expr.args), table
            )
        if isinstance(expr, ast.SeqIndex):
            return ir.SeqRead(expr.seq, self.lower(expr.index))
        if isinstance(expr, ast.MatrixIndex):
            return ir.MatrixRead(
                expr.matrix, self.lower(expr.row), self.lower(expr.col)
            )
        if isinstance(expr, ast.Field):
            return self._lower_field(expr)
        if isinstance(expr, ast.Emission):
            hmm = self._hmm_param(expr.state)
            return ir.EmissionRead(
                hmm, self.lower(expr.state), self.lower(expr.symbol)
            )
        if isinstance(expr, ast.Reduce):
            return self._lower_reduce(expr)
        raise AnalysisError(
            f"cannot lower expression {expr!r}", expr.span
        )

    def _lower_var(self, expr: ast.Var) -> ir.Node:
        if expr.name in self._dims:
            return ir.DimRef(expr.name)
        if expr.name in self._binders:
            return ir.VarRef(expr.name)
        kind = _kind_name(self._type(expr))
        return ir.ArgRef(expr.name, kind)

    def _lower_binop(self, expr: ast.BinOp) -> ir.Node:
        op = expr.op.value
        prob_result = self.logspace and isinstance(
            self._type(expr), ProbType
        )
        prob_compare = (
            self.logspace
            and expr.op.is_comparison
            and (
                isinstance(self._type(expr.left), ProbType)
                or isinstance(self._type(expr.right), ProbType)
            )
        )
        left = self.lower(expr.left)
        right = self.lower(expr.right)
        if prob_result or prob_compare:
            left = self._to_log(left, expr.left)
            right = self._to_log(right, expr.right)
            if prob_result:
                if op == "*":
                    op = "+"
                elif op == "/":
                    op = "-"
                elif op == "+":
                    op = "logaddexp"
                elif op == "-":
                    raise AnalysisError(
                        "probability subtraction is not representable "
                        "in log space; use prob_mode='direct'",
                        expr.span,
                    )
                # min/max are monotone under log: unchanged.
        kind = "bool" if expr.op.is_comparison else _kind_name(
            self._type(expr)
        )
        return ir.Binary(op, left, right, kind)

    def _hmm_param(self, expr: ast.Expr) -> str:
        t = self._type(expr)
        if isinstance(t, (StateType, TransitionType, TransitionSetType)):
            return t.hmm_param
        raise AnalysisError(
            f"expected a state or transition, got {t}", expr.span
        )

    def _lower_field(self, expr: ast.Field) -> ir.Node:
        subject_type = self._type(expr.subject)
        hmm = self._hmm_param(expr.subject)
        subject = self.lower(expr.subject)
        if isinstance(subject_type, StateType):
            if expr.name in ("isstart", "isend"):
                return ir.StateFlag(expr.name, hmm, subject)
            if expr.name == "index":
                return subject
            raise AnalysisError(
                f"field {expr.name!r} has no kernel lowering here "
                f"(transition sets only appear under reductions)",
                expr.span,
            )
        if expr.name in ("prob", "start", "end"):
            return ir.TransField(expr.name, hmm, subject)
        if expr.name == "index":
            return subject
        raise AnalysisError(f"cannot lower field {expr.name!r}", expr.span)

    def _lower_reduce(self, expr: ast.Reduce) -> ir.Node:
        if isinstance(expr.source, ast.RangeExpr):
            return self._lower_range_reduce(expr)
        if not isinstance(expr.source, ast.Field) or expr.source.name not in (
            "transitionsto",
            "transitionsfrom",
        ):
            raise AnalysisError(
                "reductions must iterate s.transitionsto or "
                "s.transitionsfrom",
                expr.source.span,
            )
        hmm = self._hmm_param(expr.source.subject)
        state = self.lower(expr.source.subject)
        self._binders[expr.var] = hmm
        try:
            body = self.lower(expr.body)
        finally:
            del self._binders[expr.var]
        log_sum = (
            self.logspace
            and expr.kind == ast.ReduceKind.SUM
            and isinstance(self._type(expr), ProbType)
        )
        source = "to" if expr.source.name == "transitionsto" else "from"
        is_prob = isinstance(self._type(expr), ProbType)
        return ir.ReduceLoop(
            expr.kind.value, expr.var, source, hmm, state, body,
            logspace=log_sum, prob=is_prob,
        )

    def _lower_range_reduce(self, expr: ast.Reduce) -> ir.Node:
        source = expr.source
        assert isinstance(source, ast.RangeExpr)
        lo = self.lower(source.lo)
        hi = self.lower(source.hi)
        self._binders[expr.var] = ""  # range binder: plain int
        try:
            body = self.lower(expr.body)
        finally:
            del self._binders[expr.var]
        is_prob = isinstance(self._type(expr), ProbType)
        log_sum = (
            self.logspace
            and expr.kind == ast.ReduceKind.SUM
            and is_prob
        )
        return ir.RangeReduce(
            expr.kind.value, expr.var, lo, hi, body,
            logspace=log_sum, prob=is_prob,
        )


class _AlwaysLinear:
    """Sentinel 'expression' whose value is never already in log space."""

    pass


_LINEAR = _AlwaysLinear()
