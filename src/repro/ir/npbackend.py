"""Vectorised NumPy backend: whole partitions as array operations.

The scalar Python backend walks cells one at a time; this backend
evaluates *an entire partition at once* — the cells of a partition are
independent by construction (that is the whole point of the schedule),
so they map exactly onto NumPy's element-wise lanes. The result is an
order-of-magnitude faster functional simulation for the dense 2-D
recurrences (edit distance, Smith-Waterman, alignment scoring) and,
since reductions vectorise too, for the HMM recurrences of
Figs. 13–15 (forward, Viterbi, profile search, gene finding).

Reductions vectorise because their trip counts are *lane-uniform up
to a mask*: a ``sum(t in s.transitionsto : ...)`` runs a serial
Python loop over the maximum in-degree of the partition's states,
with a per-lane mask ``k < degree(s)`` discarding the lanes whose
transition list is shorter; a ``RangeReduce`` runs over the global
``[min(lo), max(hi)]`` envelope with the analogous per-lane range
mask. Accumulation is ``np.logaddexp`` for log-space sums,
``np.maximum``/``np.minimum`` for max/min, ``+`` for direct sums —
always through ``np.where(mask, update, acc)`` so masked lanes keep
their accumulator untouched.

Eligibility (otherwise the engine falls back to the scalar backend)
is reported as a machine-readable :class:`Eligibility` record:

* two-dimensional kernels with a unit-coefficient pinned dimension
  (the common case; non-unit pins need per-lane divisibility masks);
* no cross-table reads (mutual groups use :func:`emit_vector_group_source`).

Branch semantics: ``np.where`` evaluates both branches eagerly, so
guarded out-of-domain table reads *would* be attempted; all gather
indices are therefore clamped into the table (``_ix``) — the values
read through a clamped index only ever feed discarded lanes. The
whole sweep runs under ``np.errstate(...ignore...)`` because those
discarded lanes may legitimately compute ``inf - inf`` garbage.

The *batched* variant (:func:`emit_batched_source`) generalises the
same code to a table with a leading problem axis ``(B, d0, d1)``:
bounds come from ``(B, 1)``-shaped context arrays, sequences from
padded ``(B, Lmax)`` arrays, and stores go through a per-lane
validity mask so a problem never writes outside its own (possibly
smaller) domain — the functional analogue of the paper's inter-task
parallelism (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..lang.errors import CodegenError
from ..polyhedral import loopast
from . import expr as ir
from .kernel import Kernel
from .pybackend import bound_py, div_py

_PRELUDE = '''\
import numpy as np

_NINF = float("-inf")
_PINF = float("inf")


def _ix(index, ub):
    """Clamp gather indices into the table (see module doc)."""
    return np.clip(index, 0, ub)


def _gather(arr, index):
    """Clamped sequence gather; empty sequences yield dummy zeros
    (only ever read under a guard whose lanes are discarded)."""
    if len(arr) == 0:
        return np.zeros_like(np.asarray(index))
    return arr[np.clip(index, 0, len(arr) - 1)]


def _idiv(a, b):
    return np.trunc(np.asarray(a, dtype=np.float64) / b).astype(np.int64)


def _safelog(x):
    x = np.asarray(x, dtype=np.float64)
    with np.errstate(divide="ignore"):
        return np.where(x > 0.0, np.log(np.maximum(x, 1e-300)), _NINF)
'''

#: Extra helpers of the batched (leading problem axis) variant.
_BATCH_PRELUDE = '''\

def _bread(T, b, i0, i1):
    """Batched table gather: per-problem rows of a (B, d0, d1) table."""
    bb, x0, x1 = np.broadcast_arrays(b, i0, i1)
    return T[bb, x0, x1]


def _bgather(arr, b, index):
    """Batched clamped sequence gather over a padded (B, Lmax) array.

    Clamping is global (to Lmax); a shorter problem's lanes past its
    own length read padding zeros, which only ever feed lanes the
    validity mask (or a guard's np.where) discards."""
    if arr.shape[1] == 0:
        bb, ii = np.broadcast_arrays(b, np.asarray(index))
        return np.zeros_like(ii)
    bb, ii = np.broadcast_arrays(b, np.clip(index, 0, arr.shape[1] - 1))
    return arr[bb, ii]


def _bstore(T, b, i0, i1, valid, cell):
    """Masked batched store: write only the lanes valid for their
    problem (everything else is padding and must stay zero)."""
    bb, x0, x1, vv, cc = np.broadcast_arrays(b, i0, i1, valid, cell)
    T[bb[vv], x0[vv], x1[vv]] = cc[vv]
'''

_ERRSTATE = (
    'np.errstate(invalid="ignore", over="ignore", divide="ignore")'
)

#: Context pieces unpacked per referenced HMM parameter.
_HMM_PIECES = (
    "isstart", "isend", "emis", "symidx", "tprob", "tsrc",
    "ttgt", "inoff", "inids", "outoff", "outids",
)


# -- eligibility --------------------------------------------------------------


@dataclass(frozen=True)
class Eligibility:
    """Machine-readable verdict of the vector-backend eligibility check.

    ``rule`` is a short stable identifier of the *failed* rule
    (``"ok"`` when eligible); ``detail`` is the human sentence the
    engine raises / the ``explain`` subcommand prints.
    """

    ok: bool
    rule: str
    detail: str

    def __bool__(self) -> bool:
        return self.ok


def eligibility(kernel: Kernel) -> Eligibility:
    """Why (or why not) this kernel can use the vectorised backend."""
    if kernel.rank != 2:
        return Eligibility(
            False, "rank",
            f"kernel {kernel.name!r} is {kernel.rank}-dimensional; the "
            f"vector backend evaluates 2-D partition sweeps only",
        )
    for node in ir.walk(kernel.body.cell):
        if isinstance(node, ir.TableRead) and node.table:
            return Eligibility(
                False, "cross-table-read",
                f"kernel {kernel.name!r} reads the table of "
                f"{node.table!r}; mutual groups use the group backend",
            )
    if _nest_shape(kernel) is None:
        return Eligibility(
            False, "nest-shape",
            f"kernel {kernel.name!r} does not lower to a "
            f"time-loop/space-loop nest with a unit-coefficient pinned "
            f"dimension (non-unit pins need per-lane divisibility "
            f"masks)",
        )
    return Eligibility(
        True, "ok",
        f"kernel {kernel.name!r} vectorises: 2-D nest with a "
        f"unit-coefficient pinned dimension"
        + (
            "; reductions run as masked lane-uniform loops"
            if any(
                isinstance(n, (ir.ReduceLoop, ir.RangeReduce))
                for n in ir.walk(kernel.body.cell)
            )
            else ""
        ),
    )


def eligible(kernel: Kernel) -> bool:
    """Can this kernel use the vectorised backend?"""
    return eligibility(kernel).ok


def group_eligibility(kernels: Mapping[str, Kernel]) -> Eligibility:
    """Can a mutual group use the vectorised group backend?

    Every member must individually pass the shape rules (cross-table
    reads are, of course, allowed — they are what makes it a group).
    """
    for name in sorted(kernels):
        kernel = kernels[name]
        if kernel.rank != 2:
            return Eligibility(
                False, "rank",
                f"group member {name!r} is {kernel.rank}-dimensional",
            )
        if _nest_shape(kernel) is None:
            return Eligibility(
                False, "nest-shape",
                f"group member {name!r} does not lower to a vectorisable "
                f"time/space nest",
            )
    return Eligibility(
        True, "ok",
        "every group member lowers to a vectorisable 2-D nest",
    )


def _nest_shape(kernel: Kernel):
    """Recognise ``Loop(p) { Loop(d) { [Assign(e)] Stmt } }``."""
    roots = kernel.nest.roots
    if len(roots) != 1 or not isinstance(roots[0], loopast.Loop):
        return None
    time_loop = roots[0]
    if len(time_loop.body) != 1 or not isinstance(
        time_loop.body[0], loopast.Loop
    ):
        return None
    space_loop = time_loop.body[0]
    inner = space_loop.body
    if (
        len(inner) == 1
        and isinstance(inner[0], loopast.Assign)
        and inner[0].value.divisor == 1
        and len(inner[0].body) == 1
        and isinstance(inner[0].body[0], loopast.Stmt)
    ):
        return time_loop, space_loop, inner[0]
    return None


def bound_np(bound: loopast.Bound) -> str:
    """Render a loop bound array-safely (``min``/``max`` of Python
    break on NumPy operands; fold through np.minimum/np.maximum)."""
    texts = [div_py(t) for t in bound.terms]
    if len(texts) == 1:
        return texts[0]
    fold = "np.minimum" if bound.kind == "min" else "np.maximum"
    expr = texts[0]
    for text in texts[1:]:
        expr = f"{fold}({expr}, {text})"
    return expr


# -- the emitter --------------------------------------------------------------


class _VectorEmitter:
    """Emits the cell expression as NumPy statements over lanes.

    Mirrors the scalar backend's ``_CellEmitter`` (inline / emit_to /
    _force), but every value is an array over the partition's lanes —
    reductions become masked serial loops, selects become ``np.where``.

    ``batch=True`` targets the leading-problem-axis layout: table
    reads go through ``_bread`` with the ``_pb`` batch index column,
    sequence gathers through ``_bgather``.

    ``own_table``/``table_ubs`` serve the mutual-group variant:
    cross-table reads render against the callee's table and are
    clamped with the callee's upper-bound names.
    """

    def __init__(
        self,
        kernel: Kernel,
        batch: bool = False,
        own_table: str = "T",
        table_ubs: Optional[Mapping[str, Mapping[str, str]]] = None,
    ) -> None:
        self.kernel = kernel
        self.batch = batch
        self.own_table = own_table
        self.own_ubs = {dim: f"ub_{dim}" for dim in kernel.dims}
        self.table_ubs = table_ubs or {}
        self.counter = 0

    def fresh(self) -> str:
        name = f"_v{self.counter}"
        self.counter += 1
        return name

    # -- inline expression rendering (None when a reduce is inside) ----

    def inline(self, node: ir.Node) -> Optional[str]:
        if isinstance(node, ir.Const):
            if node.value == float("-inf"):
                return "_NINF"
            if node.value == float("inf"):
                return "_PINF"
            return repr(node.value)
        if isinstance(node, (ir.DimRef, ir.VarRef)):
            return node.name
        if isinstance(node, ir.ArgRef):
            return f"arg_{node.name}"
        if isinstance(node, ir.Binary):
            left = self.inline(node.left)
            right = self.inline(node.right)
            if left is None or right is None:
                return None
            return self._binary_text(node.op, node.kind, left, right)
        if isinstance(node, ir.Log):
            operand = self.inline(node.operand)
            return None if operand is None else f"_safelog({operand})"
        if isinstance(node, ir.Select):
            cond = self.inline(node.cond)
            then = self.inline(node.then)
            other = self.inline(node.otherwise)
            if cond is None or then is None or other is None:
                return None
            return f"np.where({cond}, {then}, {other})"
        if isinstance(node, ir.TableRead):
            return self._table_text(node, self.inline)
        if isinstance(node, ir.SeqRead):
            index = self.inline(node.index)
            if index is None:
                return None
            if self.batch:
                return f"_bgather(seq_{node.seq}, _pb, {index})"
            return f"_gather(seq_{node.seq}, {index})"
        if isinstance(node, ir.MatrixRead):
            row = self.inline(node.row)
            col = self.inline(node.col)
            if row is None or col is None:
                return None
            return (
                f"mat_{node.matrix}[rowidx_{node.matrix}[{row}], "
                f"colidx_{node.matrix}[{col}]]"
            )
        if isinstance(node, ir.StateFlag):
            state = self.inline(node.state)
            if state is None:
                return None
            suffix = "isstart" if node.which == "isstart" else "isend"
            return f"hmm_{node.hmm}_{suffix}[{state}]"
        if isinstance(node, ir.EmissionRead):
            state = self.inline(node.state)
            symbol = self.inline(node.symbol)
            if state is None or symbol is None:
                return None
            return (
                f"hmm_{node.hmm}_emis[{state}, "
                f"hmm_{node.hmm}_symidx[{symbol}]]"
            )
        if isinstance(node, ir.TransField):
            trans = self.inline(node.trans)
            if trans is None:
                return None
            suffix = {"prob": "tprob", "start": "tsrc",
                      "end": "ttgt"}[node.which]
            return f"hmm_{node.hmm}_{suffix}[{trans}]"
        if isinstance(node, (ir.ReduceLoop, ir.RangeReduce)):
            return None
        raise CodegenError(
            f"vector backend cannot render {node!r}"
        )

    def _table_text(self, node: ir.TableRead, render) -> Optional[str]:
        if node.table:
            table = f"T_{node.table}"
            ubs = self.table_ubs.get(node.table, self.own_ubs)
        else:
            table = self.own_table
            ubs = self.own_ubs
        indices = []
        for dim, index in zip(self.kernel.dims, node.indices):
            text = render(index)
            if text is None:
                return None
            indices.append(f"_ix({text}, {ubs[dim]})")
        if self.batch:
            return f"_bread({table}, _pb, {', '.join(indices)})"
        return f"{table}[{', '.join(indices)}]"

    @staticmethod
    def _binary_text(op: str, kind: str, left: str, right: str) -> str:
        if op == "min":
            return f"np.minimum({left}, {right})"
        if op == "max":
            return f"np.maximum({left}, {right})"
        if op == "logaddexp":
            return f"np.logaddexp({left}, {right})"
        if op == "/":
            if kind == "int":
                return f"_idiv({left}, {right})"
            return f"({left} / {right})"
        return f"({left} {op} {right})"

    # -- statement emission --------------------------------------------------

    def emit_to(
        self, node: ir.Node, target: str, lines: List[str], pad: str
    ) -> None:
        text = self.inline(node)
        if text is not None:
            lines.append(f"{pad}{target} = {text}")
            return
        if isinstance(node, ir.Select):
            # np.where is eager, so both branches fully evaluate —
            # exactly the existing vector-backend branch semantics.
            cond = self._force(node.cond, lines, pad)
            then = self._force(node.then, lines, pad)
            other = self._force(node.otherwise, lines, pad)
            lines.append(
                f"{pad}{target} = np.where({cond}, {then}, {other})"
            )
            return
        if isinstance(node, ir.Binary):
            left = self._force(node.left, lines, pad)
            right = self._force(node.right, lines, pad)
            text = self._binary_text(node.op, node.kind, left, right)
            lines.append(f"{pad}{target} = {text}")
            return
        if isinstance(node, ir.Log):
            operand = self._force(node.operand, lines, pad)
            lines.append(f"{pad}{target} = _safelog({operand})")
            return
        if isinstance(node, ir.ReduceLoop):
            self._emit_reduce(node, target, lines, pad)
            return
        if isinstance(node, ir.RangeReduce):
            self._emit_range_reduce(node, target, lines, pad)
            return
        if isinstance(node, ir.TableRead):
            text = self._table_text(
                node, lambda n: self._force(n, lines, pad)
            )
            lines.append(f"{pad}{target} = {text}")
            return
        raise CodegenError(f"cannot emit IR node {node!r}")

    def _force(self, node: ir.Node, lines: List[str], pad: str) -> str:
        """Render inline, or spill to a temporary."""
        text = self.inline(node)
        if text is not None:
            return text
        temp = self.fresh()
        self.emit_to(node, temp, lines, pad)
        return temp

    @staticmethod
    def _reduce_init(node) -> str:
        if node.kind == "sum":
            return "_NINF" if node.logspace else "0.0"
        if node.kind == "min":
            return "_PINF"
        if node.prob and not node.logspace:
            # max over an empty set of path probabilities is 0.
            return "0.0"
        return "_NINF"

    def _reduce_update(self, node, acc: str, body: str) -> str:
        if node.kind == "sum" and node.logspace:
            return f"np.logaddexp({acc}, {body})"
        if node.kind == "sum":
            return f"{acc} + {body}"
        if node.kind == "min":
            return f"np.minimum({acc}, {body})"
        return f"np.maximum({acc}, {body})"

    def _emit_reduce(
        self, node: ir.ReduceLoop, target: str, lines: List[str],
        pad: str,
    ) -> None:
        """Transition reduce: serial loop over the max in/out-degree.

        The CSR offset arrays give every lane's transition count; the
        loop runs to the *maximum* count (lane-uniform, from the
        bindings, never from cell data) and the mask ``k < degree``
        discards the lanes whose list is shorter.
        """
        state = self._force(node.state, lines, pad)
        prefix = f"hmm_{node.hmm}"
        ids = f"{prefix}_{'inids' if node.source == 'to' else 'outids'}"
        offsets = (
            f"{prefix}_{'inoff' if node.source == 'to' else 'outoff'}"
        )
        base = self.fresh()
        deg = self.fresh()
        acc = self.fresh()
        lines.append(f"{pad}{base} = {offsets}[{state}]")
        lines.append(
            f"{pad}{deg} = {offsets}[{state} + 1] - {base}"
        )
        lines.append(f"{pad}{acc} = {self._reduce_init(node)}")
        step = self.fresh()
        lines.append(
            f"{pad}for {step} in range(int(np.max({deg}))):"
        )
        inner = pad + "    "
        lines.append(
            f"{inner}{node.var} = {ids}["
            f"np.clip({base} + {step}, 0, {ids}.size - 1)]"
        )
        body = self._force(node.body, lines, inner)
        lines.append(
            f"{inner}{acc} = np.where({step} < {deg}, "
            f"{self._reduce_update(node, acc, body)}, {acc})"
        )
        lines.append(f"{pad}{target} = {acc}")

    def _emit_range_reduce(
        self, node: ir.RangeReduce, target: str, lines: List[str],
        pad: str,
    ) -> None:
        """Range reduce: serial loop over the global bound envelope,
        with the per-lane range mask selecting the live lanes."""
        lo = self._force(node.lo, lines, pad)
        hi = self._force(node.hi, lines, pad)
        acc = self.fresh()
        lines.append(f"{pad}{acc} = {self._reduce_init(node)}")
        lines.append(
            f"{pad}for {node.var} in range(int(np.min({lo})), "
            f"int(np.max({hi})) + 1):"
        )
        inner = pad + "    "
        body = self._force(node.body, lines, inner)
        lines.append(
            f"{inner}{acc} = np.where("
            f"({node.var} >= {lo}) & ({node.var} <= {hi}), "
            f"{self._reduce_update(node, acc, body)}, {acc})"
        )
        lines.append(f"{pad}{target} = {acc}")


# -- module emission ----------------------------------------------------------


def _unpack_ctx(
    kernel: Kernel, lines: List[str], pad: str, ctx: str = "ctx"
) -> None:
    refs = kernel.referenced_names()
    for ub in kernel.ub_params():
        lines.append(f"{pad}{ub} = {ctx}['{ub}']")
    for seq in sorted(refs["seqs"]):
        lines.append(f"{pad}seq_{seq} = {ctx}['seq_{seq}']")
    for scalar in sorted(refs["scalars"]):
        lines.append(f"{pad}arg_{scalar} = {ctx}['arg_{scalar}']")
    for matrix in sorted(refs["matrices"]):
        for piece in ("mat", "rowidx", "colidx"):
            lines.append(
                f"{pad}{piece}_{matrix} = {ctx}['{piece}_{matrix}']"
            )
    for hmm in sorted(refs["hmms"]):
        for piece in _HMM_PIECES:
            lines.append(
                f"{pad}hmm_{hmm}_{piece} = {ctx}['hmm_{hmm}_{piece}']"
            )


def emit_vector_source(
    kernel: Kernel, func_name: str = "kernel"
) -> str:
    """Emit the vectorised module source (single problem)."""
    shape = _nest_shape(kernel)
    if shape is None:
        verdict = eligibility(kernel)
        raise CodegenError(
            f"kernel shape not eligible for the vector backend "
            f"[{verdict.rule}]: {verdict.detail}"
        )
    time_loop, space_loop, assign = shape
    lines: List[str] = [_PRELUDE, ""]
    lines.append(f"def {func_name}(T, ctx, part_lo=None, part_hi=None):")
    pad = "    "
    _unpack_ctx(kernel, lines, pad)

    p = time_loop.var
    lines.append(f"{pad}_plo = {bound_py(time_loop.lower)}")
    lines.append(f"{pad}_phi = {bound_py(time_loop.upper)}")
    lines.append(f"{pad}if part_lo is not None and part_lo > _plo:")
    lines.append(f"{pad}    _plo = part_lo")
    lines.append(f"{pad}if part_hi is not None and part_hi < _phi:")
    lines.append(f"{pad}    _phi = part_hi")
    lines.append(f"{pad}with {_ERRSTATE}:")
    pad = pad + "    "
    lines.append(f"{pad}for {p} in range(_plo, _phi + 1):")
    inner = pad + "    "
    lines.append(f"{inner}_lo = {bound_py(space_loop.lower)}")
    lines.append(f"{inner}_hi = {bound_py(space_loop.upper)}")
    lines.append(f"{inner}if _lo > _hi:")
    lines.append(f"{inner}    continue")
    lines.append(
        f"{inner}{space_loop.var} = np.arange(_lo, _hi + 1)"
    )
    lines.append(
        f"{inner}{assign.var} = {div_py(assign.value)}"
    )
    emitter = _VectorEmitter(kernel)
    emitter.emit_to(kernel.body.cell, "_cell", lines, inner)
    store = ", ".join(kernel.dims)
    lines.append(f"{inner}T[{store}] = _cell")
    lines.append("    return T")
    return "\n".join(lines)


def emit_batched_source(
    kernel: Kernel, func_name: str = "kernel"
) -> str:
    """Emit the lane-batched module source.

    The generated kernel fills a ``(B, d0max, d1max)`` table — one
    padded problem per leading row. Per-problem bounds come from
    ``(B, 1)``-shaped ``ub_*``/``arg_*`` context arrays and padded
    ``(B, Lmax)`` sequences; every store is masked by the per-lane
    validity ``(space in own range) & (partition in own range)``, so
    padding cells are never written. ``part_lo``/``part_hi`` clamp
    the *global* partition loop (the supervisor's replay unit); each
    problem's own range is narrower or equal and enforced by the mask.
    """
    shape = _nest_shape(kernel)
    if shape is None:
        verdict = eligibility(kernel)
        raise CodegenError(
            f"kernel shape not eligible for the batched vector "
            f"backend [{verdict.rule}]: {verdict.detail}"
        )
    time_loop, space_loop, assign = shape
    lines: List[str] = [_PRELUDE, _BATCH_PRELUDE, ""]
    lines.append(f"def {func_name}(T, ctx, part_lo=None, part_hi=None):")
    pad = "    "
    lines.append(f"{pad}_pb = np.arange(T.shape[0]).reshape(-1, 1)")
    _unpack_ctx(kernel, lines, pad)

    p = time_loop.var
    lines.append(f"{pad}with {_ERRSTATE}:")
    pad = pad + "    "
    lines.append(f"{pad}_bplo = {bound_np(time_loop.lower)}")
    lines.append(f"{pad}_bphi = {bound_np(time_loop.upper)}")
    lines.append(f"{pad}_plo = int(np.min(_bplo))")
    lines.append(f"{pad}_phi = int(np.max(_bphi))")
    lines.append(f"{pad}if part_lo is not None and part_lo > _plo:")
    lines.append(f"{pad}    _plo = part_lo")
    lines.append(f"{pad}if part_hi is not None and part_hi < _phi:")
    lines.append(f"{pad}    _phi = part_hi")
    lines.append(f"{pad}for {p} in range(_plo, _phi + 1):")
    inner = pad + "    "
    lines.append(f"{inner}_lo = {bound_np(space_loop.lower)}")
    lines.append(f"{inner}_hi = {bound_np(space_loop.upper)}")
    lines.append(f"{inner}_lo_g = int(np.min(_lo))")
    lines.append(f"{inner}_hi_g = int(np.max(_hi))")
    lines.append(f"{inner}if _lo_g > _hi_g:")
    lines.append(f"{inner}    continue")
    lines.append(
        f"{inner}{space_loop.var} = "
        f"np.arange(_lo_g, _hi_g + 1).reshape(1, -1)"
    )
    lines.append(
        f"{inner}{assign.var} = {div_py(assign.value)}"
    )
    lines.append(
        f"{inner}_valid = ({space_loop.var} >= _lo) "
        f"& ({space_loop.var} <= _hi) "
        f"& ({p} >= _bplo) & ({p} <= _bphi)"
    )
    emitter = _VectorEmitter(kernel, batch=True)
    emitter.emit_to(kernel.body.cell, "_cell", lines, inner)
    store = ", ".join(kernel.dims)
    lines.append(f"{inner}_bstore(T, _pb, {store}, _valid, _cell)")
    lines.append("    return T")
    return "\n".join(lines)


def emit_vector_group_source(
    kernels: Mapping[str, Kernel],
    mutual,
    func_name: str = "kernel",
) -> str:
    """Emit the vectorised module for a mutual group (Section 9).

    Mirrors :mod:`repro.ir.groupbackend`: one global time loop, one
    vectorised space sweep per member per global partition. Each
    member unpacks its context into member-suffixed names so the
    cross-table clamps use the *callee's* bounds.
    """
    verdict = group_eligibility(kernels)
    if not verdict.ok:
        raise CodegenError(
            f"group not eligible for the vector backend "
            f"[{verdict.rule}]: {verdict.detail}"
        )
    names = sorted(kernels)
    lines: List[str] = [_PRELUDE, ""]
    for name in names:
        _emit_vector_step(lines, name, kernels[name], names)
        lines.append("")
    lines.append(f"def {func_name}(tables, ctxs, global_lo, global_hi):")
    pad = "    "
    for name in names:
        lines.append(f"{pad}T_{name} = tables['{name}']")
    lines.append(f"{pad}with {_ERRSTATE}:")
    pad = pad + "    "
    lines.append(f"{pad}for _gp in range(global_lo, global_hi + 1):")
    inner = pad + "    "
    for name in names:
        offset = mutual[name].offset
        tables_args = ", ".join(f"T_{n}" for n in names)
        lines.append(
            f"{inner}_step_{name}({tables_args}, "
            f"_gp - ({offset}), ctxs['{name}'])"
        )
    lines.append("    return tables")
    return "\n".join(lines)


def _emit_vector_step(
    lines: List[str],
    name: str,
    kernel: Kernel,
    group_names: List[str],
) -> None:
    """One member's vectorised per-partition step function.

    Group members share loop dimensions by construction of the joint
    schedule; every member's table is clamped with its *own* bounds
    (``ub_<dim>`` is the member's — cross reads use the caller's
    unpacked values, which agree because the group shares domains)."""
    shape = _nest_shape(kernel)
    assert shape is not None  # guarded by group_eligibility
    time_loop, space_loop, assign = shape
    p = time_loop.var
    tables = ", ".join(f"T_{n}" for n in group_names)
    lines.append(f"def _step_{name}({tables}, {p}, ctx):")
    pad = "    "
    _unpack_ctx(kernel, lines, pad)
    lines.append(
        f"{pad}if {p} < {bound_py(time_loop.lower)} or "
        f"{p} > {bound_py(time_loop.upper)}:"
    )
    lines.append(f"{pad}    return")
    lines.append(f"{pad}_lo = {bound_py(space_loop.lower)}")
    lines.append(f"{pad}_hi = {bound_py(space_loop.upper)}")
    lines.append(f"{pad}if _lo > _hi:")
    lines.append(f"{pad}    return")
    lines.append(f"{pad}{space_loop.var} = np.arange(_lo, _hi + 1)")
    lines.append(f"{pad}{assign.var} = {div_py(assign.value)}")
    emitter = _VectorEmitter(kernel, own_table=f"T_{name}")
    emitter.emit_to(kernel.body.cell, "_cell", lines, pad)
    store = ", ".join(kernel.dims)
    lines.append(f"{pad}T_{name}[{store}] = _cell")


def _compile(source: str, tag: str, func_name: str):
    namespace: Dict[str, object] = {}
    code = compile(source, tag, "exec")
    exec(code, namespace)  # noqa: S102 - our own generated code
    return namespace[func_name]


def compile_vector_kernel(
    kernel: Kernel, func_name: str = "kernel"
):
    """Compile the vector source; returns ``(callable, source)``."""
    source = emit_vector_source(kernel, func_name)
    run = _compile(source, f"<npkernel:{kernel.name}>", func_name)
    return run, source


def compile_batched_kernel(
    kernel: Kernel, func_name: str = "kernel"
):
    """Compile the lane-batched source; returns ``(callable, source)``."""
    source = emit_batched_source(kernel, func_name)
    run = _compile(source, f"<npbatched:{kernel.name}>", func_name)
    return run, source


def compile_vector_group(
    kernels: Mapping[str, Kernel],
    mutual,
    func_name: str = "kernel",
):
    """Compile the vector group module; returns ``(callable, source)``."""
    source = emit_vector_group_source(kernels, mutual, func_name)
    run = _compile(source, "<npgroupkernel>", func_name)
    return run, source
