"""Vectorised NumPy backend: whole partitions as array operations.

The scalar Python backend walks cells one at a time; this backend
evaluates *an entire partition at once* — the cells of a partition are
independent by construction (that is the whole point of the schedule),
so they map exactly onto NumPy's element-wise lanes. The result is an
order-of-magnitude faster functional simulation for the dense 2-D
recurrences (edit distance, Smith-Waterman, alignment scoring).

Eligibility (otherwise the engine falls back to the scalar backend):

* two-dimensional kernels with a unit-coefficient pinned dimension
  (the common case; non-unit pins need per-lane divisibility masks);
* no reductions in the cell expression (transition/range loops have
  data-dependent trip counts per lane).

Branch semantics: ``np.where`` evaluates both branches eagerly, so
guarded out-of-domain table reads *would* be attempted; all gather
indices are therefore clamped into the table (``_ix``) — the values
read through a clamped index only ever feed discarded lanes.
"""

from __future__ import annotations

from typing import Dict, List

from ..lang.errors import CodegenError
from ..polyhedral import loopast
from . import expr as ir
from .kernel import Kernel
from .pybackend import bound_py, div_py

_PRELUDE = '''\
import numpy as np

_NINF = float("-inf")


def _ix(index, ub):
    """Clamp gather indices into the table (see module doc)."""
    return np.clip(index, 0, ub)


def _gather(arr, index):
    """Clamped sequence gather; empty sequences yield dummy zeros
    (only ever read under a guard whose lanes are discarded)."""
    if len(arr) == 0:
        return np.zeros_like(np.asarray(index))
    return arr[np.clip(index, 0, len(arr) - 1)]


def _idiv(a, b):
    return np.trunc(np.asarray(a, dtype=np.float64) / b).astype(np.int64)


def _safelog(x):
    x = np.asarray(x, dtype=np.float64)
    with np.errstate(divide="ignore"):
        return np.where(x > 0.0, np.log(np.maximum(x, 1e-300)), _NINF)
'''


def eligible(kernel: Kernel) -> bool:
    """Can this kernel use the vectorised backend?"""
    if kernel.rank != 2:
        return False
    for node in ir.walk(kernel.body.cell):
        if isinstance(node, (ir.ReduceLoop, ir.RangeReduce)):
            return False
        if isinstance(node, ir.TableRead) and node.table:
            return False  # mutual groups use the group backend
    shape = _nest_shape(kernel)
    return shape is not None


def _nest_shape(kernel: Kernel):
    """Recognise ``Loop(p) { Loop(d) { [Assign(e)] Stmt } }``."""
    roots = kernel.nest.roots
    if len(roots) != 1 or not isinstance(roots[0], loopast.Loop):
        return None
    time_loop = roots[0]
    if len(time_loop.body) != 1 or not isinstance(
        time_loop.body[0], loopast.Loop
    ):
        return None
    space_loop = time_loop.body[0]
    inner = space_loop.body
    if (
        len(inner) == 1
        and isinstance(inner[0], loopast.Assign)
        and inner[0].value.divisor == 1
        and len(inner[0].body) == 1
        and isinstance(inner[0].body[0], loopast.Stmt)
    ):
        return time_loop, space_loop, inner[0]
    return None


class _VectorEmitter:
    """Renders the cell expression over vector lanes."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.ubs = {
            dim: f"ub_{dim}" for dim in kernel.dims
        }

    def render(self, node: ir.Node) -> str:
        if isinstance(node, ir.Const):
            if node.value == float("-inf"):
                return "_NINF"
            return repr(node.value)
        if isinstance(node, (ir.DimRef, ir.VarRef)):
            return node.name
        if isinstance(node, ir.ArgRef):
            return f"arg_{node.name}"
        if isinstance(node, ir.Binary):
            left = self.render(node.left)
            right = self.render(node.right)
            if node.op == "min":
                return f"np.minimum({left}, {right})"
            if node.op == "max":
                return f"np.maximum({left}, {right})"
            if node.op == "logaddexp":
                return f"np.logaddexp({left}, {right})"
            if node.op == "/":
                if node.kind == "int":
                    return f"_idiv({left}, {right})"
                return f"({left} / {right})"
            return f"({left} {node.op} {right})"
        if isinstance(node, ir.Log):
            return f"_safelog({self.render(node.operand)})"
        if isinstance(node, ir.Select):
            return (
                f"np.where({self.render(node.cond)}, "
                f"{self.render(node.then)}, "
                f"{self.render(node.otherwise)})"
            )
        if isinstance(node, ir.TableRead):
            indices = [
                f"_ix({self.render(index)}, {self.ubs[dim]})"
                for dim, index in zip(self.kernel.dims, node.indices)
            ]
            return f"T[{', '.join(indices)}]"
        if isinstance(node, ir.SeqRead):
            index = self.render(node.index)
            return f"_gather(seq_{node.seq}, {index})"
        if isinstance(node, ir.MatrixRead):
            row = self.render(node.row)
            col = self.render(node.col)
            return (
                f"mat_{node.matrix}[rowidx_{node.matrix}[{row}], "
                f"colidx_{node.matrix}[{col}]]"
            )
        if isinstance(node, ir.StateFlag):
            suffix = "isstart" if node.which == "isstart" else "isend"
            return f"hmm_{node.hmm}_{suffix}[{self.render(node.state)}]"
        if isinstance(node, ir.EmissionRead):
            return (
                f"hmm_{node.hmm}_emis[{self.render(node.state)}, "
                f"hmm_{node.hmm}_symidx[{self.render(node.symbol)}]]"
            )
        if isinstance(node, ir.TransField):
            suffix = {"prob": "tprob", "start": "tsrc",
                      "end": "ttgt"}[node.which]
            return f"hmm_{node.hmm}_{suffix}[{self.render(node.trans)}]"
        raise CodegenError(
            f"vector backend cannot render {node!r}"
        )


def emit_vector_source(
    kernel: Kernel, func_name: str = "kernel"
) -> str:
    """Emit the vectorised module source."""
    shape = _nest_shape(kernel)
    if shape is None:
        raise CodegenError(
            "kernel shape not eligible for the vector backend"
        )
    time_loop, space_loop, assign = shape
    refs = kernel.referenced_names()
    lines: List[str] = [_PRELUDE, ""]
    lines.append(f"def {func_name}(T, ctx, part_lo=None, part_hi=None):")
    pad = "    "
    for ub in kernel.ub_params():
        lines.append(f"{pad}{ub} = ctx['{ub}']")
    for seq in sorted(refs["seqs"]):
        lines.append(f"{pad}seq_{seq} = ctx['seq_{seq}']")
    for scalar in sorted(refs["scalars"]):
        lines.append(f"{pad}arg_{scalar} = ctx['arg_{scalar}']")
    for matrix in sorted(refs["matrices"]):
        for piece in ("mat", "rowidx", "colidx"):
            lines.append(
                f"{pad}{piece}_{matrix} = ctx['{piece}_{matrix}']"
            )
    for hmm in sorted(refs["hmms"]):
        for piece in (
            "isstart", "isend", "emis", "symidx", "tprob", "tsrc",
            "ttgt", "inoff", "inids", "outoff", "outids",
        ):
            lines.append(
                f"{pad}hmm_{hmm}_{piece} = ctx['hmm_{hmm}_{piece}']"
            )

    p = time_loop.var
    lines.append(f"{pad}_plo = {bound_py(time_loop.lower)}")
    lines.append(f"{pad}_phi = {bound_py(time_loop.upper)}")
    lines.append(f"{pad}if part_lo is not None and part_lo > _plo:")
    lines.append(f"{pad}    _plo = part_lo")
    lines.append(f"{pad}if part_hi is not None and part_hi < _phi:")
    lines.append(f"{pad}    _phi = part_hi")
    lines.append(f"{pad}for {p} in range(_plo, _phi + 1):")
    inner = pad + "    "
    lines.append(
        f"{inner}_lo = {bound_py(space_loop.lower)}"
    )
    lines.append(
        f"{inner}_hi = {bound_py(space_loop.upper)}"
    )
    lines.append(f"{inner}if _lo > _hi:")
    lines.append(f"{inner}    continue")
    lines.append(
        f"{inner}{space_loop.var} = np.arange(_lo, _hi + 1)"
    )
    lines.append(
        f"{inner}{assign.var} = {div_py(assign.value)}"
    )
    emitter = _VectorEmitter(kernel)
    lines.append(
        f"{inner}_cell = {emitter.render(kernel.body.cell)}"
    )
    store = ", ".join(kernel.dims)
    lines.append(f"{inner}T[{store}] = _cell")
    lines.append(f"{pad}return T")
    return "\n".join(lines)


def compile_vector_kernel(
    kernel: Kernel, func_name: str = "kernel"
):
    """Compile the vector source; returns ``(callable, source)``."""
    source = emit_vector_source(kernel, func_name)
    namespace: Dict[str, object] = {}
    code = compile(source, f"<npkernel:{kernel.name}>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated code
    return namespace[func_name], source
