"""Python backend: compile a kernel into executable Python source.

The generated function fills the dynamic-programming table exactly as
the synthesised GPU program would — partition by partition, cells
within a partition in arbitrary order — so it serves as the
*functional* half of the simulated device (timing is analytic, see
:mod:`repro.gpu.timing`). Generating real source (rather than
interpreting the IR) is what makes paper-scale workloads feasible.

The generated module expects a context dict prepared by the engine:

======================  ====================================
``ub_<dim>``            inclusive upper bound of a dimension
``seq_<param>``         int64 character-code array
``arg_<param>``         scalar calling parameter
``mat_<param>``         matrix score table (2-D int64)
``rowidx_/colidx_<p>``  char code -> dense index tables
``hmm_<p>_...``         model arrays (see HmmArrays)
======================  ====================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.affine import Affine
from ..lang.errors import CodegenError
from ..polyhedral import loopast
from . import expr as ir
from .kernel import Kernel

_PRELUDE = '''\
from math import exp, inf, log


def _log(x):
    return log(x) if x > 0.0 else -inf


def _logaddexp(a, b):
    if a == -inf:
        return b
    if b == -inf:
        return a
    m = a if a > b else b
    return m + log(exp(a - m) + exp(b - m))


def _idiv(a, b):
    return int(a / b)
'''


def affine_py(affine: Affine) -> str:
    """Render an affine function as a Python expression."""
    parts: List[str] = []
    for dim, coeff in affine.coeffs:
        if coeff == 1:
            term = dim
        elif coeff == -1:
            term = f"-{dim}"
        else:
            term = f"{coeff}*{dim}"
        if parts and not term.startswith("-"):
            parts.append(f"+ {term}")
        else:
            parts.append(term)
    if affine.const != 0 or not parts:
        if parts and affine.const > 0:
            parts.append(f"+ {affine.const}")
        else:
            parts.append(str(affine.const))
    return " ".join(parts)


def div_py(div: loopast.Div) -> str:
    """Render a ceil/floor division as a Python expression."""
    num = affine_py(div.numerator)
    if div.divisor == 1:
        return f"({num})"
    if div.mode == "ceil":
        return f"(-((-({num})) // {div.divisor}))"
    return f"(({num}) // {div.divisor})"


def bound_py(bound: loopast.Bound) -> str:
    """Render a loop bound as a Python expression."""
    texts = [div_py(t) for t in bound.terms]
    if len(texts) == 1:
        return texts[0]
    return f"{bound.kind}({', '.join(texts)})"


class _CellEmitter:
    """Emits the cell expression as Python statements.

    ``own_table`` is the Python name of the function's own DP table;
    cross-table reads (mutual groups) render as ``T_<callee>``.
    """

    def __init__(
        self, own_table: str = "T", sanitize: bool = False
    ) -> None:
        self.own_table = own_table
        self.sanitize = sanitize
        self.counter = 0

    def _table_name(self, node) -> str:
        return f"T_{node.table}" if node.table else self.own_table

    def fresh(self) -> str:
        name = f"_t{self.counter}"
        self.counter += 1
        return name

    # -- inline expression rendering (None when a reduce is inside) ----

    def inline(self, node: ir.Node) -> Optional[str]:
        if isinstance(node, ir.Const):
            if node.value == float("-inf"):
                return "(-inf)"
            if node.value == float("inf"):
                return "inf"
            return repr(node.value)
        if isinstance(node, (ir.DimRef, ir.VarRef)):
            return node.name
        if isinstance(node, ir.ArgRef):
            return f"arg_{node.name}"
        if isinstance(node, ir.Binary):
            left = self.inline(node.left)
            right = self.inline(node.right)
            if left is None or right is None:
                return None
            return self._binary_text(node.op, node.kind, left, right)
        if isinstance(node, ir.Log):
            operand = self.inline(node.operand)
            return None if operand is None else f"_log({operand})"
        if isinstance(node, ir.Select):
            cond = self.inline(node.cond)
            then = self.inline(node.then)
            other = self.inline(node.otherwise)
            if cond is None or then is None or other is None:
                return None
            return f"({then} if {cond} else {other})"
        if isinstance(node, ir.TableRead):
            indices = [self.inline(i) for i in node.indices]
            if any(i is None for i in indices):
                return None
            return self._table_read_text(node, indices)
        if isinstance(node, ir.SeqRead):
            index = self.inline(node.index)
            if index is None:
                return None
            if self.sanitize:
                return f"_san.sread(seq_{node.seq}, {index})"
            return f"seq_{node.seq}[{index}]"
        if isinstance(node, ir.MatrixRead):
            row = self.inline(node.row)
            col = self.inline(node.col)
            if row is None or col is None:
                return None
            return (
                f"mat_{node.matrix}[rowidx_{node.matrix}[{row}], "
                f"colidx_{node.matrix}[{col}]]"
            )
        if isinstance(node, ir.StateFlag):
            state = self.inline(node.state)
            if state is None:
                return None
            suffix = "isstart" if node.which == "isstart" else "isend"
            return f"hmm_{node.hmm}_{suffix}[{state}]"
        if isinstance(node, ir.EmissionRead):
            state = self.inline(node.state)
            symbol = self.inline(node.symbol)
            if state is None or symbol is None:
                return None
            return (
                f"hmm_{node.hmm}_emis[{state}, "
                f"hmm_{node.hmm}_symidx[{symbol}]]"
            )
        if isinstance(node, ir.TransField):
            trans = self.inline(node.trans)
            if trans is None:
                return None
            suffix = {"prob": "tprob", "start": "tsrc", "end": "ttgt"}[
                node.which
            ]
            return f"hmm_{node.hmm}_{suffix}[{trans}]"
        if isinstance(node, (ir.ReduceLoop, ir.RangeReduce)):
            return None
        raise CodegenError(f"cannot render IR node {node!r}")

    def _table_read_text(self, node, indices: List[str]) -> str:
        name = self._table_name(node)
        if self.sanitize:
            own = "True" if not node.table else "False"
            return (
                f"_san.tread({name}, ({', '.join(indices)},), "
                f"own={own})"
            )
        return f"{name}[{', '.join(indices)}]"

    @staticmethod
    def _binary_text(op: str, kind: str, left: str, right: str) -> str:
        if op == "min":
            return f"min({left}, {right})"
        if op == "max":
            return f"max({left}, {right})"
        if op == "logaddexp":
            return f"_logaddexp({left}, {right})"
        if op == "/":
            if kind == "int":
                return f"_idiv({left}, {right})"
            return f"({left} / {right})"
        return f"({left} {op} {right})"

    # -- statement emission --------------------------------------------------

    def emit_to(
        self, node: ir.Node, target: str, lines: List[str], pad: str
    ) -> None:
        text = self.inline(node)
        if text is not None:
            lines.append(f"{pad}{target} = {text}")
            return
        if isinstance(node, ir.Select):
            cond = self._force(node.cond, lines, pad)
            lines.append(f"{pad}if {cond}:")
            self.emit_to(node.then, target, lines, pad + "    ")
            lines.append(f"{pad}else:")
            self.emit_to(node.otherwise, target, lines, pad + "    ")
            return
        if isinstance(node, ir.Binary):
            left = self._force(node.left, lines, pad)
            right = self._force(node.right, lines, pad)
            text = self._binary_text(node.op, node.kind, left, right)
            lines.append(f"{pad}{target} = {text}")
            return
        if isinstance(node, ir.Log):
            operand = self._force(node.operand, lines, pad)
            lines.append(f"{pad}{target} = _log({operand})")
            return
        if isinstance(node, ir.ReduceLoop):
            self._emit_reduce(node, target, lines, pad)
            return
        if isinstance(node, ir.RangeReduce):
            self._emit_range_reduce(node, target, lines, pad)
            return
        if isinstance(node, ir.TableRead):
            indices = [self._force(i, lines, pad) for i in node.indices]
            lines.append(
                f"{pad}{target} = "
                f"{self._table_read_text(node, indices)}"
            )
            return
        raise CodegenError(f"cannot emit IR node {node!r}")

    def _force(self, node: ir.Node, lines: List[str], pad: str) -> str:
        """Render inline, or spill to a temporary."""
        text = self.inline(node)
        if text is not None:
            return text
        temp = self.fresh()
        self.emit_to(node, temp, lines, pad)
        return temp

    @staticmethod
    def _reduce_init(node) -> str:
        if node.kind == "sum":
            return "-inf" if node.logspace else "0.0"
        if node.kind == "min":
            return "inf"
        if node.prob and not node.logspace:
            # max over an empty set of path probabilities is 0.
            return "0.0"
        return "-inf"

    def _reduce_update(self, node, acc: str, body: str) -> str:
        if node.kind == "sum" and node.logspace:
            return f"_logaddexp({acc}, {body})"
        if node.kind == "sum":
            return f"{acc} + {body}"
        if node.kind == "min":
            return f"min({acc}, {body})"
        return f"max({acc}, {body})"

    def _emit_range_reduce(
        self, node: ir.RangeReduce, target: str, lines: List[str],
        pad: str,
    ) -> None:
        lo = self._force(node.lo, lines, pad)
        hi = self._force(node.hi, lines, pad)
        acc = self.fresh()
        lines.append(f"{pad}{acc} = {self._reduce_init(node)}")
        lines.append(
            f"{pad}for {node.var} in range({lo}, {hi} + 1):"
        )
        inner = pad + "    "
        body = self._force(node.body, lines, inner)
        lines.append(f"{inner}{acc} = {self._reduce_update(node, acc, body)}")
        lines.append(f"{pad}{target} = {acc}")

    def _emit_reduce(
        self, node: ir.ReduceLoop, target: str, lines: List[str], pad: str
    ) -> None:
        state = self._force(node.state, lines, pad)
        prefix = f"hmm_{node.hmm}"
        table = "inids" if node.source == "to" else "outids"
        offsets = "inoff" if node.source == "to" else "outoff"
        ids = (
            f"{prefix}_{table}[{prefix}_{offsets}[{state}]:"
            f"{prefix}_{offsets}[{state} + 1]]"
        )
        acc = self.fresh()
        lines.append(f"{pad}{acc} = {self._reduce_init(node)}")
        lines.append(f"{pad}for {node.var} in {ids}:")
        inner = pad + "    "
        body = self._force(node.body, lines, inner)
        lines.append(f"{inner}{acc} = {self._reduce_update(node, acc, body)}")
        lines.append(f"{pad}{target} = {acc}")


def emit_kernel_source(
    kernel: Kernel, func_name: str = "kernel", sanitize: bool = False
) -> str:
    """Emit the full Python module source for one kernel.

    The generated function takes optional ``part_lo``/``part_hi``
    arguments that clamp the outer time loop to a partition range —
    the execution supervisor uses this to replay only the failed
    span of the schedule after a device fault. With both left at
    ``None`` the kernel runs every partition, exactly as before.

    With ``sanitize`` the emitted code routes every table/sequence
    access and every cell write through a
    :class:`~repro.verify.sanitizer.TableSanitizer` taken from
    ``ctx['_san']``, and announces each partition at its barrier.
    """
    refs = kernel.referenced_names()
    lines: List[str] = [_PRELUDE, ""]
    lines.append(f"def {func_name}(T, ctx, part_lo=None, part_hi=None):")
    pad = "    "
    if sanitize:
        lines.append(f"{pad}_san = ctx['_san']")
    for ub in kernel.ub_params():
        lines.append(f"{pad}{ub} = ctx['{ub}']")
    for seq in sorted(refs["seqs"]):
        lines.append(f"{pad}seq_{seq} = ctx['seq_{seq}']")
    for scalar in sorted(refs["scalars"]):
        lines.append(f"{pad}arg_{scalar} = ctx['arg_{scalar}']")
    for matrix in sorted(refs["matrices"]):
        for piece in ("mat", "rowidx", "colidx"):
            lines.append(
                f"{pad}{piece}_{matrix} = ctx['{piece}_{matrix}']"
            )
    for hmm in sorted(refs["hmms"]):
        for piece in (
            "isstart", "isend", "emis", "symidx", "tprob", "tsrc",
            "ttgt", "inoff", "inids", "outoff", "outids",
        ):
            lines.append(
                f"{pad}hmm_{hmm}_{piece} = ctx['hmm_{hmm}_{piece}']"
            )
    emitter = _CellEmitter(sanitize=sanitize)
    roots = kernel.nest.roots
    if (
        len(roots) == 1
        and isinstance(roots[0], loopast.Loop)
        and roots[0].var == kernel.nest.time_var
    ):
        time_loop = roots[0]
        lines.append(f"{pad}_plo = {bound_py(time_loop.lower)}")
        lines.append(f"{pad}_phi = {bound_py(time_loop.upper)}")
        lines.append(f"{pad}if part_lo is not None and part_lo > _plo:")
        lines.append(f"{pad}    _plo = part_lo")
        lines.append(f"{pad}if part_hi is not None and part_hi < _phi:")
        lines.append(f"{pad}    _phi = part_hi")
        lines.append(f"{pad}for {time_loop.var} in range(_plo, _phi + 1):")
        if sanitize:
            lines.append(f"{pad}    _san.barrier({time_loop.var})")
        _emit_nest(kernel, time_loop.body, emitter, lines, pad + "    ")
        if sanitize:
            lines.append(f"{pad}_san.finish(T)")
    elif sanitize:
        raise CodegenError(
            "the sanitizer requires a partition-major time loop; "
            "this kernel's nest has no time dimension"
        )
    else:
        _emit_nest(kernel, roots, emitter, lines, pad)
    lines.append(f"{pad}return T")
    return "\n".join(lines)


def _emit_nest(
    kernel: Kernel,
    nodes: Tuple[loopast.Node, ...],
    emitter: _CellEmitter,
    lines: List[str],
    pad: str,
) -> None:
    for node in nodes:
        if isinstance(node, loopast.Loop):
            lines.append(
                f"{pad}for {node.var} in range({bound_py(node.lower)}, "
                f"{bound_py(node.upper)} + 1):"
            )
            _emit_nest(kernel, node.body, emitter, lines, pad + "    ")
        elif isinstance(node, loopast.Assign):
            lines.append(f"{pad}{node.var} = {div_py(node.value)}")
            _emit_nest(kernel, node.body, emitter, lines, pad)
        elif isinstance(node, loopast.Guard):
            lines.append(
                f"{pad}if ({affine_py(node.expr)}) % {node.divisor} == 0:"
            )
            _emit_nest(kernel, node.body, emitter, lines, pad + "    ")
        elif isinstance(node, loopast.Stmt):
            target = emitter.fresh()
            emitter.emit_to(kernel.body.cell, target, lines, pad)
            index = ", ".join(kernel.dims)
            if emitter.sanitize:
                lines.append(
                    f"{pad}_san.twrite(T, ({index},), {target})"
                )
            else:
                lines.append(f"{pad}T[{index}] = {target}")
        else:
            raise CodegenError(f"unknown nest node {node!r}")


def compile_kernel(
    kernel: Kernel, func_name: str = "kernel", sanitize: bool = False
):
    """Compile the generated source; returns ``(callable, source)``."""
    source = emit_kernel_source(kernel, func_name, sanitize=sanitize)
    namespace: Dict[str, object] = {}
    code = compile(source, f"<kernel:{kernel.name}>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated code
    return namespace[func_name], source
