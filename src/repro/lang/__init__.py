"""The host DSL: lexer, parser, AST, type system and type checker."""

from .ast import Program, FuncDef, Expr
from .errors import (
    AnalysisError,
    CodegenError,
    DslError,
    LexError,
    ParseError,
    RuntimeDslError,
    ScheduleError,
    TypeCheckError,
)
from .parser import parse_expr, parse_function, parse_program
from .source import SourceText, Span
from .typecheck import (
    CheckedFunction,
    CheckedParam,
    CheckedProgram,
    check_function,
    check_program,
)

__all__ = [
    "Program",
    "FuncDef",
    "Expr",
    "DslError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "AnalysisError",
    "ScheduleError",
    "CodegenError",
    "RuntimeDslError",
    "parse_expr",
    "parse_function",
    "parse_program",
    "SourceText",
    "Span",
    "CheckedFunction",
    "CheckedParam",
    "CheckedProgram",
    "check_function",
    "check_program",
]
