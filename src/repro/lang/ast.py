"""Abstract syntax tree for the recursion DSL.

The base language follows Figure 6 of the paper: pure first-order
functions built from arithmetic, comparisons, ``min``/``max``,
``if .. then .. else``, sequence indexing and recursive calls. Domain
extensions (Section 5) contribute matrix lookups (``m[a, b]``), HMM
field accesses (``t.start``, ``s.emission[c]`` ...) and bounded
reductions (``sum(t in s.transitionsto : e)``).

Nodes are plain frozen dataclasses; every node carries a source
:class:`~repro.lang.source.Span`. Construction helpers for synthetic
trees live in :mod:`repro.lang.build`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from .source import Span, SYNTHETIC


# ---------------------------------------------------------------------------
# Type expressions (surface syntax; resolved by the type checker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeExpr:
    """A surface-syntax type, e.g. ``int``, ``seq[en]``, ``index[s]``.

    ``name`` is the head (``int``, ``seq``, ``index``, ``char``,
    ``matrix``, ``hmm``, ``state``, ``transition``, ``float``, ``prob``,
    ``bool``); ``args`` are the bracketed references, which name an
    alphabet (for ``seq``/``char``, possibly ``*`` for "any"), a
    sequence parameter (for ``index``), an HMM parameter (for
    ``state``/``transition``) or two alphabets (for ``matrix``).
    """

    name: str
    args: Tuple[str, ...] = ()
    span: Span = SYNTHETIC

    @property
    def argument(self) -> Optional[str]:
        """The single bracketed reference, when there is exactly one."""
        return self.args[0] if len(self.args) == 1 else None

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}[{', '.join(self.args)}]"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for all expressions."""

    span: Span = field(default=SYNTHETIC, kw_only=True)


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatLit(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class CharLit(Expr):
    """A character literal, written ``'a'``."""

    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class StrLit(Expr):
    """A string literal; used in script statements (``load``/``let``)."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


class BinOpKind(Enum):
    """Binary operators of Figure 6 (plus ``<=``/``>=`` for symmetry)."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    MIN = "min"
    MAX = "max"

    @property
    def is_comparison(self) -> bool:
        """Is this one of the six comparison operators?"""
        return self in (
            BinOpKind.LT,
            BinOpKind.GT,
            BinOpKind.LE,
            BinOpKind.GE,
            BinOpKind.EQ,
            BinOpKind.NE,
        )

    @property
    def is_arithmetic(self) -> bool:
        """Is this an arithmetic (or min/max) operator?"""
        return self in (
            BinOpKind.ADD,
            BinOpKind.SUB,
            BinOpKind.MUL,
            BinOpKind.DIV,
            BinOpKind.MIN,
            BinOpKind.MAX,
        )


@dataclass(frozen=True)
class BinOp(Expr):
    op: BinOpKind
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class If(Expr):
    """``if cond then then_branch else else_branch``."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr

    def __str__(self) -> str:
        # Self-parenthesised so the rendering stays faithful inside
        # operator operands (the else-branch is greedy otherwise).
        return (
            f"(if {self.cond} then {self.then_branch} "
            f"else {self.else_branch})"
        )


@dataclass(frozen=True)
class Call(Expr):
    """A call ``f(e1, ..., en)``.

    Inside a recursive function body, calls to the enclosing function
    pass only the *recursive* parameters; calling parameters are
    implicit (they are invariant over a run). At script level, calls
    pass all parameters.
    """

    func: str
    args: Tuple[Expr, ...]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.func}({args})"


@dataclass(frozen=True)
class SeqIndex(Expr):
    """Sequence element access ``s[e]``; sequences are immutable."""

    seq: str
    index: Expr

    def __str__(self) -> str:
        return f"{self.seq}[{self.index}]"


@dataclass(frozen=True)
class MatrixIndex(Expr):
    """Substitution-matrix lookup ``m[a, b]`` (Section 5.1)."""

    matrix: str
    row: Expr
    col: Expr

    def __str__(self) -> str:
        return f"{self.matrix}[{self.row}, {self.col}]"


@dataclass(frozen=True)
class Field(Expr):
    """HMM field access (Section 5.2): ``t.start``, ``s.isend`` ...

    Valid field names: ``start``, ``end``, ``isstart``, ``isend``,
    ``prob``, ``transitionsto``, ``transitionsfrom``, ``index``.
    """

    subject: Expr
    name: str

    def __str__(self) -> str:
        return f"{self.subject}.{self.name}"


@dataclass(frozen=True)
class Emission(Expr):
    """Emission probability lookup ``s.emission[c]`` (Section 5.2)."""

    state: Expr
    symbol: Expr

    def __str__(self) -> str:
        return f"{self.state}.emission[{self.symbol}]"


@dataclass(frozen=True)
class RangeExpr(Expr):
    """An inclusive integer range ``lo .. hi`` (Section 5's looping
    extension): only valid as the source of a reduction, e.g.
    ``max(k in i+1 .. j-1 : ...)``."""

    lo: Expr
    hi: Expr

    def __str__(self) -> str:
        return f"{self.lo} .. {self.hi}"


class ReduceKind(Enum):
    """The reduction operators: sum, min and max."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class Reduce(Expr):
    """Bounded reduction ``sum(v in set : body)`` (Section 5.2).

    ``source`` must denote a finite set known to the extension — for
    HMMs, a transition set (``s.transitionsto``/``s.transitionsfrom``)
    or the model's state set.
    """

    kind: ReduceKind
    var: str
    source: Expr
    body: Expr

    def __str__(self) -> str:
        return f"{self.kind.value}({self.var} in {self.source} : {self.body})"


@dataclass(frozen=True)
class Len(Expr):
    """Sequence length ``|s|``; used at script level to seed indices."""

    seq: str

    def __str__(self) -> str:
        return f"|{self.seq}|"


@dataclass(frozen=True)
class Placeholder(Expr):
    """The ``_`` hole in a ``map`` statement's call template."""

    def __str__(self) -> str:
        return "_"


# ---------------------------------------------------------------------------
# Declarations and statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A function parameter: surface type plus name."""

    type: TypeExpr
    name: str
    span: Span = SYNTHETIC

    def __str__(self) -> str:
        return f"{self.type} {self.name}"


@dataclass(frozen=True)
class Stmt:
    """Base class for top-level statements."""

    span: Span = field(default=SYNTHETIC, kw_only=True)


@dataclass(frozen=True)
class AlphabetDecl(Stmt):
    """``alphabet en = "abc..."`` — declares a finite character set."""

    name: str
    chars: str


@dataclass(frozen=True)
class FuncDef(Stmt):
    """``<type> f(<params>) = <expr>``."""

    return_type: TypeExpr
    name: str
    params: Tuple[Param, ...]
    body: Expr

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.return_type} {self.name}({params}) = {self.body}"


@dataclass(frozen=True)
class MatrixRow:
    """One ``row <char> : v1 v2 ...`` line of a matrix declaration."""

    char: str
    values: Tuple[int, ...]
    span: Span = SYNTHETIC


@dataclass(frozen=True)
class MatrixDecl(Stmt):
    """Substitution matrix declaration (Section 5.1).

    ::

        matrix cost[en, en] {
          header a b c
          default 1
          row a : 0 1 1
          row b : 1 0 1
          row c : 1 1 0
        }
    """

    name: str
    row_alphabet: str
    col_alphabet: str
    header: Tuple[str, ...]
    default: Optional[int]
    rows: Tuple[MatrixRow, ...]


@dataclass(frozen=True)
class StateDecl:
    """One state of an HMM declaration.

    ``kind`` is ``"start"``, ``"end"`` or ``"emit"``; start/end states
    are silent. ``emissions`` maps characters to probabilities.
    """

    name: str
    kind: str
    emissions: Tuple[Tuple[str, float], ...] = ()
    span: Span = SYNTHETIC


@dataclass(frozen=True)
class TransDecl:
    """One ``trans a -> b : p`` line of an HMM declaration."""

    source: str
    target: str
    prob: float
    span: Span = SYNTHETIC


@dataclass(frozen=True)
class HmmDecl(Stmt):
    """Hidden Markov Model declaration (Section 5.2)."""

    name: str
    alphabet: str
    states: Tuple[StateDecl, ...]
    transitions: Tuple[TransDecl, ...]


@dataclass(frozen=True)
class ScheduleDecl(Stmt):
    """``schedule f : <affine expr>`` — a user-specified schedule.

    Section 4.5: users may provide a schedule, which the compiler then
    verifies against the dependence criteria instead of searching.
    The expression must be affine in the recursive parameters of ``f``.
    """

    func: str
    expr: Expr


@dataclass(frozen=True)
class LetStmt(Stmt):
    """``let x = <expr>`` — bind a script-level value."""

    name: str
    value: Expr


@dataclass(frozen=True)
class LoadStmt(Stmt):
    """``load db = fasta("path")`` — load a sequence collection."""

    name: str
    format: str
    path: str


@dataclass(frozen=True)
class PrintStmt(Stmt):
    """``print <expr>`` — evaluate and print a script expression."""

    value: Expr


@dataclass(frozen=True)
class MapStmt(Stmt):
    """``map out = f(..., _, ...) over db`` — the map primitive.

    Applies the call template once per element of ``db``, with ``_``
    (and ``|_|``) standing for the element. This is the inter-task
    parallel primitive: each problem is assigned to a multiprocessor.
    """

    name: str
    template: Call
    over: str


@dataclass(frozen=True)
class Program:
    """A full script: an ordered sequence of statements."""

    statements: Tuple[Stmt, ...]

    def functions(self) -> Tuple[FuncDef, ...]:
        """All function definitions, in order."""
        return tuple(s for s in self.statements if isinstance(s, FuncDef))

    def function(self, name: str) -> FuncDef:
        """Look a function definition up by name."""
        for stmt in self.statements:
            if isinstance(stmt, FuncDef) and stmt.name == name:
                return stmt
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------


def children(expr: Expr) -> Tuple[Expr, ...]:
    """The direct sub-expressions of ``expr``, in evaluation order."""
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, If):
        return (expr.cond, expr.then_branch, expr.else_branch)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, SeqIndex):
        return (expr.index,)
    if isinstance(expr, MatrixIndex):
        return (expr.row, expr.col)
    if isinstance(expr, Field):
        return (expr.subject,)
    if isinstance(expr, Emission):
        return (expr.state, expr.symbol)
    if isinstance(expr, Reduce):
        return (expr.source, expr.body)
    if isinstance(expr, RangeExpr):
        return (expr.lo, expr.hi)
    return ()


def walk(expr: Expr):
    """Yield ``expr`` and all its descendants, pre-order."""
    yield expr
    for child in children(expr):
        yield from walk(child)


def find_calls(expr: Expr, func: str) -> Tuple[Call, ...]:
    """All calls to ``func`` anywhere inside ``expr``."""
    return tuple(
        e for e in walk(expr) if isinstance(e, Call) and e.func == func
    )
