"""Diagnostic exception hierarchy for the DSL compiler.

All user-facing failures derive from :class:`DslError` and carry a
:class:`~repro.lang.source.Span` where available, so the runtime can
render caret diagnostics against the original source.
"""

from __future__ import annotations

from typing import Optional

from .source import Span, SourceText


class DslError(Exception):
    """Base class for all errors raised by the DSL pipeline."""

    def __init__(self, message: str, span: Optional[Span] = None) -> None:
        super().__init__(message)
        self.message = message
        self.span = span

    def render(self, source: Optional[SourceText] = None) -> str:
        """Render the error, with a source caret when possible."""
        if source is not None and self.span is not None:
            return source.render(self.span, self.message)
        return self.message


class LexError(DslError):
    """Raised when the lexer meets a character it cannot tokenise."""


class ParseError(DslError):
    """Raised when the token stream does not match the grammar."""


class TypeCheckError(DslError):
    """Raised when a well-formed program violates the type system."""


class AnalysisError(DslError):
    """Raised when dependency analysis cannot handle a construct.

    Typical causes: non-affine descent functions, mutually recursive
    functions, or recursion through an unsupported expression form.
    """


class ScheduleError(DslError):
    """Raised when no valid schedule exists or a user schedule is invalid."""


class CodegenError(DslError):
    """Raised when polyhedral code generation fails."""


class RuntimeDslError(DslError):
    """Raised for execution-time failures (bad input data, overflow...)."""


class VerificationError(DslError):
    """The independent verifier rejected a program or schedule.

    Raised by the engine's verify hook and the service's admission
    control when a :mod:`repro.verify` pass produces error-severity
    diagnostics. Permanent: a rejected program stays rejected until
    its text changes.
    """


class SanitizerError(DslError):
    """The runtime sanitizer observed a memory-safety violation.

    Poison reads, intra-partition read/write overlap, out-of-bounds
    accesses or unwritten cells found while executing with
    sanitization enabled — deterministic codegen/schedule bugs, never
    retried. When a fault injector is active the same observations
    are classified as :class:`repro.resilience.faults.CellCorruption`
    (device faults) instead, so the resilience layer handles them.
    """


class NativeBuildError(DslError):
    """The native backend could not produce a loadable shared object.

    Raised when the system compiler rejects the emitted C99, when the
    build toolchain disappears mid-run, or when the segfault-guarded
    subprocess probe of a freshly built (or cache-restored) ``.so``
    dies before ``dlopen`` succeeds in-process. Subclassing
    :class:`DslError` makes it *permanent* to the supervision and
    serving layers: a kernel whose native build fails will fail the
    same way on every retry — it is a toolchain/codegen problem, not
    a transient device fault.
    """


class BackendDivergenceError(DslError):
    """Two independent backends disagree on the same kernel.

    Raised by the divergence oracle when a suspect partition range,
    re-executed cleanly on both the primary and the reference backend,
    still mismatches — i.e. the discrepancy is deterministic and the
    generated code is wrong, not the (simulated) hardware. Subclassing
    :class:`DslError` makes it *permanent* to the serving layer: a
    compiler bug is never retried.
    """
