"""Tokeniser for the recursion DSL.

Produces a flat list of :class:`Token` with spans. Comments start with
``//`` or ``#`` and run to end of line. The ``|`` character only occurs
as the sequence-length bars ``|s|``, so it is lexed as a plain symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from .errors import LexError
from .source import Position, Span


class TokenKind(Enum):
    """Lexical classes produced by the tokeniser."""

    INT = "int-literal"
    FLOAT = "float-literal"
    NAME = "name"
    KEYWORD = "keyword"
    STRING = "string"
    CHAR = "char"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "if",
        "then",
        "else",
        "min",
        "max",
        "sum",
        "in",
        "true",
        "false",
        "alphabet",
        "matrix",
        "hmm",
        "state",
        "trans",
        "emits",
        "header",
        "default",
        "row",
        "let",
        "load",
        "print",
        "map",
        "over",
        "schedule",
    }
)

#: Multi-character symbols, longest first so maximal munch works.
_SYMBOLS2 = ("==", "!=", "<=", ">=", "->", "..")
_SYMBOLS1 = "+-*/<>=(),[]{}:.|_"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    def is_symbol(self, text: str) -> bool:
        """Is this token the given symbol?"""
        return self.kind == TokenKind.SYMBOL and self.text == text

    def is_keyword(self, text: str) -> bool:
        """Is this token the given keyword?"""
        return self.kind == TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        if self.kind == TokenKind.EOF:
            return "end of input"
        return repr(self.text)


class _Cursor:
    """Mutable scan state over the source text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.offset = 0
        self.line = 1
        self.column = 1

    @property
    def at_end(self) -> bool:
        return self.offset >= len(self.text)

    def peek(self, ahead: int = 0) -> str:
        i = self.offset + ahead
        return self.text[i] if i < len(self.text) else ""

    def position(self) -> Position:
        return Position(self.line, self.column, self.offset)

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.at_end:
                return
            if self.text[self.offset] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.offset += 1


def tokenize(text: str) -> List[Token]:
    """Tokenise ``text``; raises :class:`LexError` on bad input."""
    cursor = _Cursor(text)
    tokens: List[Token] = []
    while True:
        _skip_trivia(cursor)
        if cursor.at_end:
            pos = cursor.position()
            tokens.append(Token(TokenKind.EOF, "", Span(pos, pos)))
            return tokens
        tokens.append(_next_token(cursor))


def _skip_trivia(cursor: _Cursor) -> None:
    while not cursor.at_end:
        ch = cursor.peek()
        if ch in " \t\r\n":
            cursor.advance()
        elif ch == "#" or (ch == "/" and cursor.peek(1) == "/"):
            while not cursor.at_end and cursor.peek() != "\n":
                cursor.advance()
        else:
            return


def _next_token(cursor: _Cursor) -> Token:
    start = cursor.position()
    ch = cursor.peek()

    if ch.isdigit():
        return _lex_number(cursor, start)
    if ch.isalpha():
        return _lex_word(cursor, start)
    if ch == '"':
        return _lex_string(cursor, start)
    if ch == "'":
        return _lex_char(cursor, start)

    two = ch + cursor.peek(1)
    if two in _SYMBOLS2:
        cursor.advance(2)
        return Token(TokenKind.SYMBOL, two, Span(start, cursor.position()))
    if ch in _SYMBOLS1:
        cursor.advance()
        return Token(TokenKind.SYMBOL, ch, Span(start, cursor.position()))

    raise LexError(
        f"unexpected character {ch!r}", Span(start, cursor.position())
    )


def _lex_number(cursor: _Cursor, start: Position) -> Token:
    text = []
    is_float = False
    while cursor.peek().isdigit():
        text.append(cursor.peek())
        cursor.advance()
    if cursor.peek() == "." and cursor.peek(1).isdigit():
        is_float = True
        text.append(".")
        cursor.advance()
        while cursor.peek().isdigit():
            text.append(cursor.peek())
            cursor.advance()
    if cursor.peek() in "eE" and (
        cursor.peek(1).isdigit()
        or (cursor.peek(1) in "+-" and cursor.peek(2).isdigit())
    ):
        is_float = True
        text.append(cursor.peek())
        cursor.advance()
        if cursor.peek() in "+-":
            text.append(cursor.peek())
            cursor.advance()
        while cursor.peek().isdigit():
            text.append(cursor.peek())
            cursor.advance()
    kind = TokenKind.FLOAT if is_float else TokenKind.INT
    return Token(kind, "".join(text), Span(start, cursor.position()))


def _lex_word(cursor: _Cursor, start: Position) -> Token:
    text = []
    while cursor.peek().isalnum() or cursor.peek() == "_":
        text.append(cursor.peek())
        cursor.advance()
    word = "".join(text)
    kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.NAME
    return Token(kind, word, Span(start, cursor.position()))


def _lex_string(cursor: _Cursor, start: Position) -> Token:
    cursor.advance()  # opening quote
    text = []
    while True:
        if cursor.at_end or cursor.peek() == "\n":
            raise LexError(
                "unterminated string literal", Span(start, cursor.position())
            )
        ch = cursor.peek()
        if ch == '"':
            cursor.advance()
            return Token(
                TokenKind.STRING, "".join(text), Span(start, cursor.position())
            )
        text.append(ch)
        cursor.advance()


def _lex_char(cursor: _Cursor, start: Position) -> Token:
    cursor.advance()  # opening quote
    if cursor.at_end:
        raise LexError(
            "unterminated character literal", Span(start, cursor.position())
        )
    ch = cursor.peek()
    cursor.advance()
    if cursor.peek() != "'":
        raise LexError(
            "character literal must contain exactly one character",
            Span(start, cursor.position()),
        )
    cursor.advance()
    return Token(TokenKind.CHAR, ch, Span(start, cursor.position()))
