"""Recursive-descent parser for the recursion DSL.

Operator precedence, loosest binding first::

    if .. then .. else
    comparisons           == != < > <= >=     (non-associative)
    min / max             (left-associative, as in Figure 7)
    + -                   (left-associative)
    * /                   (left-associative)
    unary -
    postfix               s[e]  m[a, b]  x.field  x.emission[e]
    primary               literal, name, call, (e), |s|, sum(v in s : e)

The parenthesisation of Figure 7 — ``(d(i-1,j) min d(i,j-1)) + 1`` —
fixes ``min``/``max`` looser than the additive operators.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize
from .source import Span

#: Field names accepted after ``.`` (HMM extension, Section 5.2).
FIELD_NAMES = frozenset(
    {"start", "end", "isstart", "isend", "prob", "transitionsto",
     "transitionsfrom", "index"}
)

_COMPARISONS = {
    "==": ast.BinOpKind.EQ,
    "!=": ast.BinOpKind.NE,
    "<": ast.BinOpKind.LT,
    ">": ast.BinOpKind.GT,
    "<=": ast.BinOpKind.LE,
    ">=": ast.BinOpKind.GE,
}

#: Type heads that take no bracketed argument.
_SIMPLE_TYPES = frozenset({"int", "float", "prob", "bool", "hmm"})
#: Type heads that take bracketed argument(s).
_BRACKET_TYPES = frozenset(
    {"seq", "index", "char", "matrix", "state", "transition"}
)


def parse_program(text: str) -> ast.Program:
    """Parse a full DSL script."""
    return _Parser(tokenize(text)).program()


def parse_expr(text: str) -> ast.Expr:
    """Parse a single expression (used by tests and the schedule API)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_eof()
    return expr


def parse_function(text: str) -> ast.FuncDef:
    """Parse a single function definition."""
    parser = _Parser(tokenize(text))
    stmt = parser.statement()
    parser.expect_eof()
    if not isinstance(stmt, ast.FuncDef):
        raise ParseError("expected a function definition", stmt.span)
    return stmt


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[i]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != TokenKind.EOF:
            self._pos += 1
        return token

    def check_symbol(self, text: str) -> bool:
        return self.peek().is_symbol(text)

    def check_keyword(self, text: str) -> bool:
        return self.peek().is_keyword(text)

    def accept_symbol(self, text: str) -> Optional[Token]:
        if self.check_symbol(text):
            return self.advance()
        return None

    def accept_keyword(self, text: str) -> Optional[Token]:
        if self.check_keyword(text):
            return self.advance()
        return None

    def expect_symbol(self, text: str) -> Token:
        if not self.check_symbol(text):
            raise ParseError(
                f"expected {text!r}, found {self.peek()}", self.peek().span
            )
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.check_keyword(text):
            raise ParseError(
                f"expected {text!r}, found {self.peek()}", self.peek().span
            )
        return self.advance()

    def expect_name(self, what: str = "name") -> Token:
        if self.peek().kind != TokenKind.NAME:
            raise ParseError(
                f"expected {what}, found {self.peek()}", self.peek().span
            )
        return self.advance()

    def expect_int(self) -> int:
        negative = self.accept_symbol("-") is not None
        token = self.peek()
        if token.kind != TokenKind.INT:
            raise ParseError(
                f"expected integer, found {token}", token.span
            )
        self.advance()
        value = int(token.text)
        return -value if negative else value

    def expect_float(self) -> float:
        negative = self.accept_symbol("-") is not None
        token = self.peek()
        if token.kind not in (TokenKind.FLOAT, TokenKind.INT):
            raise ParseError(f"expected number, found {token}", token.span)
        self.advance()
        value = float(token.text)
        return -value if negative else value

    def expect_eof(self) -> None:
        if self.peek().kind != TokenKind.EOF:
            raise ParseError(
                f"unexpected trailing input: {self.peek()}", self.peek().span
            )

    # -- statements ---------------------------------------------------------

    def program(self) -> ast.Program:
        statements: List[ast.Stmt] = []
        while self.peek().kind != TokenKind.EOF:
            statements.append(self.statement())
        return ast.Program(tuple(statements))

    def statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_keyword("alphabet"):
            return self._alphabet_decl()
        if token.is_keyword("matrix"):
            return self._matrix_decl()
        if token.is_keyword("hmm"):
            return self._hmm_decl()
        if token.is_keyword("let"):
            return self._let_stmt()
        if token.is_keyword("load"):
            return self._load_stmt()
        if token.is_keyword("print"):
            return self._print_stmt()
        if token.is_keyword("map"):
            return self._map_stmt()
        if token.is_keyword("schedule"):
            return self._schedule_decl()
        return self._func_def()

    def _alphabet_decl(self) -> ast.AlphabetDecl:
        start = self.expect_keyword("alphabet")
        name = self.expect_name("alphabet name")
        self.expect_symbol("=")
        chars = self.peek()
        if chars.kind != TokenKind.STRING:
            raise ParseError(
                f"expected string of characters, found {chars}", chars.span
            )
        self.advance()
        if len(set(chars.text)) != len(chars.text):
            raise ParseError(
                "alphabet contains duplicate characters", chars.span
            )
        return ast.AlphabetDecl(
            name.text, chars.text, span=Span.merge(start.span, chars.span)
        )

    def _type_expr(self) -> ast.TypeExpr:
        token = self.peek()
        head = token.text
        if token.kind == TokenKind.NAME and head in _SIMPLE_TYPES:
            self.advance()
            return ast.TypeExpr(head, span=token.span)
        if token.is_keyword("hmm") or token.is_keyword("state"):
            # 'hmm' and 'state' are keywords but also type heads.
            self.advance()
        elif token.kind == TokenKind.NAME and head in _BRACKET_TYPES:
            self.advance()
        elif token.is_keyword("matrix"):
            self.advance()
        else:
            raise ParseError(f"expected a type, found {token}", token.span)

        if head == "hmm" and not self.check_symbol("["):
            return ast.TypeExpr("hmm", span=token.span)
        if head in _SIMPLE_TYPES:
            return ast.TypeExpr(head, span=token.span)

        self.expect_symbol("[")
        args: List[str] = []
        while True:
            arg = self.peek()
            if arg.is_symbol("*"):
                self.advance()
                args.append("*")
            else:
                args.append(self.expect_name("type argument").text)
            if not self.accept_symbol(","):
                break
        end = self.expect_symbol("]")
        return ast.TypeExpr(
            head, tuple(args), span=Span.merge(token.span, end.span)
        )

    def _func_def(self) -> ast.FuncDef:
        return_type = self._type_expr()
        name = self.expect_name("function name")
        self.expect_symbol("(")
        params: List[ast.Param] = []
        if not self.check_symbol(")"):
            while True:
                ptype = self._type_expr()
                pname = self.expect_name("parameter name")
                params.append(
                    ast.Param(
                        ptype,
                        pname.text,
                        span=Span.merge(ptype.span, pname.span),
                    )
                )
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        self.expect_symbol("=")
        body = self.expression()
        return ast.FuncDef(
            return_type,
            name.text,
            tuple(params),
            body,
            span=Span.merge(return_type.span, body.span),
        )

    def _matrix_decl(self) -> ast.MatrixDecl:
        start = self.expect_keyword("matrix")
        name = self.expect_name("matrix name")
        self.expect_symbol("[")
        row_alpha = self.expect_name("alphabet").text
        self.expect_symbol(",")
        col_alpha = self.expect_name("alphabet").text
        self.expect_symbol("]")
        self.expect_symbol("{")
        header: Tuple[str, ...] = ()
        default: Optional[int] = None
        rows: List[ast.MatrixRow] = []
        while not self.check_symbol("}"):
            if self.accept_keyword("header"):
                header = tuple(self._char_list())
            elif self.accept_keyword("default"):
                default = self.expect_int()
            elif self.check_keyword("row"):
                row_tok = self.advance()
                char = self._one_char()
                self.expect_symbol(":")
                values: List[int] = []
                while (
                    self.peek().kind == TokenKind.INT
                    or self.check_symbol("-")
                ):
                    values.append(self.expect_int())
                rows.append(
                    ast.MatrixRow(char, tuple(values), span=row_tok.span)
                )
            else:
                raise ParseError(
                    f"expected 'header', 'default' or 'row', found "
                    f"{self.peek()}",
                    self.peek().span,
                )
        end = self.expect_symbol("}")
        return ast.MatrixDecl(
            name.text,
            row_alpha,
            col_alpha,
            header,
            default,
            tuple(rows),
            span=Span.merge(start.span, end.span),
        )

    def _char_list(self) -> List[str]:
        chars: List[str] = []
        while self.peek().kind in (TokenKind.CHAR, TokenKind.NAME):
            chars.append(self._one_char())
        return chars

    def _one_char(self) -> str:
        token = self.peek()
        if token.kind == TokenKind.CHAR:
            self.advance()
            return token.text
        if token.kind == TokenKind.NAME and len(token.text) == 1:
            self.advance()
            return token.text
        raise ParseError(f"expected a character, found {token}", token.span)

    def _hmm_decl(self) -> ast.HmmDecl:
        start = self.expect_keyword("hmm")
        name = self.expect_name("model name")
        self.expect_symbol("[")
        alphabet = self.expect_name("alphabet").text
        self.expect_symbol("]")
        self.expect_symbol("{")
        states: List[ast.StateDecl] = []
        transitions: List[ast.TransDecl] = []
        while not self.check_symbol("}"):
            if self.check_keyword("state"):
                states.append(self._state_decl())
            elif self.check_keyword("trans"):
                transitions.append(self._trans_decl())
            else:
                raise ParseError(
                    f"expected 'state' or 'trans', found {self.peek()}",
                    self.peek().span,
                )
        end = self.expect_symbol("}")
        return ast.HmmDecl(
            name.text,
            alphabet,
            tuple(states),
            tuple(transitions),
            span=Span.merge(start.span, end.span),
        )

    def _state_decl(self) -> ast.StateDecl:
        start = self.expect_keyword("state")
        name = self.expect_name("state name")
        if self.accept_symbol(":"):
            kind = self.peek()
            if kind.text not in ("start", "end"):
                raise ParseError(
                    f"expected 'start' or 'end', found {kind}", kind.span
                )
            self.advance()
            return ast.StateDecl(name.text, kind.text, span=start.span)
        self.expect_keyword("emits")
        self.expect_symbol("{")
        emissions: List[Tuple[str, float]] = []
        while not self.check_symbol("}"):
            char = self._one_char()
            self.expect_symbol(":")
            prob = self.expect_float()
            emissions.append((char, prob))
            self.accept_symbol(",")
        self.expect_symbol("}")
        return ast.StateDecl(
            name.text, "emit", tuple(emissions), span=start.span
        )

    def _trans_decl(self) -> ast.TransDecl:
        start = self.expect_keyword("trans")
        source = self.expect_name("state name").text
        self.expect_symbol("->")
        target = self.expect_name("state name").text
        self.expect_symbol(":")
        prob = self.expect_float()
        return ast.TransDecl(source, target, prob, span=start.span)

    def _let_stmt(self) -> ast.LetStmt:
        start = self.expect_keyword("let")
        name = self.expect_name("variable name")
        self.expect_symbol("=")
        value = self.expression()
        return ast.LetStmt(
            name.text, value, span=Span.merge(start.span, value.span)
        )

    def _load_stmt(self) -> ast.LoadStmt:
        start = self.expect_keyword("load")
        name = self.expect_name("variable name")
        self.expect_symbol("=")
        fmt = self.expect_name("format name")
        self.expect_symbol("(")
        path = self.peek()
        if path.kind != TokenKind.STRING:
            raise ParseError(f"expected a path string, found {path}",
                             path.span)
        self.advance()
        end = self.expect_symbol(")")
        return ast.LoadStmt(
            name.text, fmt.text, path.text,
            span=Span.merge(start.span, end.span),
        )

    def _print_stmt(self) -> ast.PrintStmt:
        start = self.expect_keyword("print")
        value = self.expression()
        return ast.PrintStmt(value, span=Span.merge(start.span, value.span))

    def _map_stmt(self) -> ast.MapStmt:
        start = self.expect_keyword("map")
        name = self.expect_name("result name")
        self.expect_symbol("=")
        func = self.expect_name("function name")
        self.expect_symbol("(")
        args: List[ast.Expr] = []
        if not self.check_symbol(")"):
            while True:
                args.append(self.expression())
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        self.expect_keyword("over")
        over = self.expect_name("collection name")
        template = ast.Call(func.text, tuple(args), span=func.span)
        return ast.MapStmt(
            name.text, template, over.text,
            span=Span.merge(start.span, over.span),
        )

    def _schedule_decl(self) -> ast.ScheduleDecl:
        start = self.expect_keyword("schedule")
        func = self.expect_name("function name")
        self.expect_symbol(":")
        expr = self.expression()
        return ast.ScheduleDecl(
            func.text, expr, span=Span.merge(start.span, expr.span)
        )

    # -- expressions ----------------------------------------------------

    def expression(self) -> ast.Expr:
        if self.check_keyword("if"):
            return self._if_expr()
        return self._comparison()

    def _if_expr(self) -> ast.If:
        start = self.expect_keyword("if")
        cond = self.expression()
        self.expect_keyword("then")
        then_branch = self.expression()
        self.expect_keyword("else")
        else_branch = self.expression()
        return ast.If(
            cond,
            then_branch,
            else_branch,
            span=Span.merge(start.span, else_branch.span),
        )

    def _comparison(self) -> ast.Expr:
        left = self._min_max()
        token = self.peek()
        if token.kind == TokenKind.SYMBOL and token.text in _COMPARISONS:
            self.advance()
            right = self._min_max()
            return ast.BinOp(
                _COMPARISONS[token.text],
                left,
                right,
                span=Span.merge(left.span, right.span),
            )
        return left

    def _is_reduction_start(self) -> bool:
        """True when the cursor sits on ``min/max/sum ( NAME in ...``."""
        return (
            self.peek(1).is_symbol("(")
            and self.peek(2).kind == TokenKind.NAME
            and self.peek(3).is_keyword("in")
        )

    def _min_max(self) -> ast.Expr:
        left = self._additive()
        while True:
            if self.check_keyword("min") and not self._is_reduction_start():
                op = ast.BinOpKind.MIN
            elif self.check_keyword("max") and not self._is_reduction_start():
                op = ast.BinOpKind.MAX
            else:
                return left
            self.advance()
            right = self._additive()
            left = ast.BinOp(
                op, left, right, span=Span.merge(left.span, right.span)
            )

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self.accept_symbol("+"):
                op = ast.BinOpKind.ADD
            elif self.accept_symbol("-"):
                op = ast.BinOpKind.SUB
            else:
                return left
            right = self._multiplicative()
            left = ast.BinOp(
                op, left, right, span=Span.merge(left.span, right.span)
            )

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            if self.accept_symbol("*"):
                op = ast.BinOpKind.MUL
            elif self.accept_symbol("/"):
                op = ast.BinOpKind.DIV
            else:
                return left
            right = self._unary()
            left = ast.BinOp(
                op, left, right, span=Span.merge(left.span, right.span)
            )

    def _unary(self) -> ast.Expr:
        minus = self.accept_symbol("-")
        if minus is not None:
            operand = self._unary()
            zero = ast.IntLit(0, span=minus.span)
            return ast.BinOp(
                ast.BinOpKind.SUB,
                zero,
                operand,
                span=Span.merge(minus.span, operand.span),
            )
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self.check_symbol("."):
                expr = self._field_access(expr)
            elif self.check_symbol("[") and isinstance(expr, ast.Var):
                expr = self._bracket_access(expr)
            else:
                return expr

    def _field_access(self, subject: ast.Expr) -> ast.Expr:
        self.expect_symbol(".")
        name = self.peek()
        if name.kind not in (TokenKind.NAME, TokenKind.KEYWORD):
            raise ParseError(f"expected field name, found {name}", name.span)
        self.advance()
        if name.text == "emission":
            self.expect_symbol("[")
            symbol = self.expression()
            end = self.expect_symbol("]")
            return ast.Emission(
                subject, symbol, span=Span.merge(subject.span, end.span)
            )
        if name.text not in FIELD_NAMES:
            raise ParseError(
                f"unknown field {name.text!r} (expected one of "
                f"{', '.join(sorted(FIELD_NAMES))} or emission)",
                name.span,
            )
        return ast.Field(
            subject, name.text, span=Span.merge(subject.span, name.span)
        )

    def _bracket_access(self, var: ast.Var) -> ast.Expr:
        self.expect_symbol("[")
        first = self.expression()
        if self.accept_symbol(","):
            second = self.expression()
            end = self.expect_symbol("]")
            return ast.MatrixIndex(
                var.name, first, second,
                span=Span.merge(var.span, end.span),
            )
        end = self.expect_symbol("]")
        return ast.SeqIndex(
            var.name, first, span=Span.merge(var.span, end.span)
        )

    def _primary(self) -> ast.Expr:
        token = self.peek()

        if token.kind == TokenKind.INT:
            self.advance()
            return ast.IntLit(int(token.text), span=token.span)
        if token.kind == TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(float(token.text), span=token.span)
        if token.kind == TokenKind.CHAR:
            self.advance()
            return ast.CharLit(token.text, span=token.span)
        if token.kind == TokenKind.STRING:
            self.advance()
            return ast.StrLit(token.text, span=token.span)
        if token.is_keyword("true") or token.is_keyword("false"):
            self.advance()
            return ast.BoolLit(token.text == "true", span=token.span)
        if token.is_symbol("_"):
            self.advance()
            return ast.Placeholder(span=token.span)
        if token.is_symbol("|"):
            return self._length()
        if token.is_symbol("("):
            self.advance()
            expr = self.expression()
            self.expect_symbol(")")
            return expr
        if (
            token.is_keyword("sum")
            or token.is_keyword("min")
            or token.is_keyword("max")
        ):
            return self._reduction(token.text)
        if token.kind == TokenKind.NAME:
            self.advance()
            if self.check_symbol("("):
                return self._call(token)
            return ast.Var(token.text, span=token.span)

        raise ParseError(f"expected an expression, found {token}", token.span)

    def _length(self) -> ast.Len:
        start = self.expect_symbol("|")
        target = self.peek()
        if target.is_symbol("_"):
            self.advance()
            name = "_"
        else:
            name = self.expect_name("sequence name").text
        end = self.expect_symbol("|")
        return ast.Len(name, span=Span.merge(start.span, end.span))

    def _reduction(self, kind_text: str) -> ast.Reduce:
        start = self.advance()  # sum/min/max keyword
        self.expect_symbol("(")
        var = self.expect_name("reduction variable")
        self.expect_keyword("in")
        source = self.expression()
        if self.check_symbol(".."):
            dots = self.advance()
            hi = self.expression()
            source = ast.RangeExpr(
                source, hi, span=Span.merge(source.span, hi.span)
            )
        self.expect_symbol(":")
        body = self.expression()
        end = self.expect_symbol(")")
        return ast.Reduce(
            ast.ReduceKind(kind_text),
            var.text,
            source,
            body,
            span=Span.merge(start.span, end.span),
        )

    def _call(self, name: Token) -> ast.Call:
        self.expect_symbol("(")
        args: List[ast.Expr] = []
        if not self.check_symbol(")"):
            while True:
                args.append(self.expression())
                if not self.accept_symbol(","):
                    break
        end = self.expect_symbol(")")
        return ast.Call(
            name.text, tuple(args), span=Span.merge(name.span, end.span)
        )
