"""Source locations and spans for diagnostics.

Every token and AST node carries a :class:`Span` so that later phases
(type checking, dependency analysis, scheduling) can report errors that
point back at the user's DSL text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Position:
    """A single point in a source file (1-based line, 1-based column)."""

    line: int
    column: int
    offset: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open range of source text, ``[start, end)``."""

    start: Position
    end: Position

    @staticmethod
    def point(line: int, column: int, offset: int) -> "Span":
        """A zero-width span at one position."""
        pos = Position(line, column, offset)
        return Span(pos, pos)

    @staticmethod
    def merge(first: "Span", last: "Span") -> "Span":
        """The smallest span covering both arguments."""
        return Span(first.start, last.end)

    def __str__(self) -> str:
        return str(self.start)


#: Span used for synthetic nodes that have no source text (e.g. nodes
#: produced by desugaring or by programmatic AST construction).
SYNTHETIC = Span.point(0, 0, 0)


class SourceText:
    """A piece of DSL source plus helpers for rendering diagnostics."""

    def __init__(self, text: str, name: str = "<dsl>") -> None:
        self.text = text
        self.name = name
        self._line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def line(self, number: int) -> str:
        """Return the 1-based ``number``-th line without its newline."""
        if number < 1 or number > len(self._line_starts):
            return ""
        start = self._line_starts[number - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    def render(self, span: Span, message: str) -> str:
        """Render ``message`` with a caret pointing at ``span``."""
        if span.start.line < 1:
            return message
        source_line = self.line(span.start.line)
        caret_col = max(span.start.column - 1, 0)
        width = 1
        if span.end.line == span.start.line:
            width = max(span.end.column - span.start.column, 1)
        pointer = " " * caret_col + "^" * width
        return (
            f"{self.name}:{span.start}: {message}\n"
            f"    {source_line}\n"
            f"    {pointer}"
        )
