"""Type checker for the recursion DSL.

The checker resolves surface types against the declaration environment
(alphabets, matrices, models), classifies parameters into *calling*
and *recursive* (Section 3.2), and types every expression of every
function body. Its output, :class:`CheckedProgram`, is the input of
dependency analysis and code generation.

Restrictions enforced here, straight from the paper:

* only self-recursive calls — no mutual recursion, no helper calls
  (Section 3.1 / Section 9 future work);
* recursive calls pass exactly the recursive parameters;
* sequences are immutable and only queried by index;
* script-only forms (string literals, ``|s|``, ``_``) may not appear
  inside function bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ast
from .errors import TypeCheckError
from .types import (
    BOOL,
    FLOAT,
    INT,
    PROB,
    BoolType,
    CharType,
    FloatType,
    HmmType,
    IndexType,
    IntType,
    MatrixType,
    ProbType,
    SeqType,
    StateType,
    TransitionSetType,
    TransitionType,
    Type,
    alphabets_compatible,
    unify_numeric,
    widens_to,
)


@dataclass(frozen=True)
class CheckedParam:
    """A resolved function parameter."""

    name: str
    type: Type

    @property
    def is_recursive(self) -> bool:
        """Does this parameter span a recursion dimension?"""
        return self.type.is_recursive

    def __str__(self) -> str:
        return f"{self.type} {self.name}"


@dataclass
class CheckedFunction:
    """A type-checked function, with per-expression types.

    ``recursive_params`` (in declaration order) are the dimensions of
    the recursion domain; ``calling_params`` are run-invariant.
    """

    definition: ast.FuncDef
    name: str
    return_type: Type
    params: Tuple[CheckedParam, ...]
    _expr_types: Dict[int, Type] = field(default_factory=dict, repr=False)

    @property
    def body(self) -> ast.Expr:
        """The function's body expression."""
        return self.definition.body

    @property
    def recursive_params(self) -> Tuple[CheckedParam, ...]:
        """Parameters that span recursion dimensions."""
        return tuple(p for p in self.params if p.is_recursive)

    @property
    def calling_params(self) -> Tuple[CheckedParam, ...]:
        """Run-invariant parameters."""
        return tuple(p for p in self.params if not p.is_recursive)

    @property
    def dim_names(self) -> Tuple[str, ...]:
        """Names of the recursion dimensions, in order."""
        return tuple(p.name for p in self.recursive_params)

    def param(self, name: str) -> CheckedParam:
        """Look a parameter up by name."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def type_of(self, expr: ast.Expr) -> Type:
        """The checked type of an expression in this function's body."""
        return self._expr_types[id(expr)]


@dataclass
class CheckedProgram:
    """A fully checked script."""

    program: ast.Program
    alphabets: Dict[str, str]
    matrices: Dict[str, ast.MatrixDecl]
    hmms: Dict[str, ast.HmmDecl]
    functions: Dict[str, CheckedFunction]
    schedules: Dict[str, ast.Expr]

    def function(self, name: str) -> CheckedFunction:
        """Look a checked function up by name."""
        if name not in self.functions:
            raise TypeCheckError(f"unknown function {name!r}")
        return self.functions[name]


def check_program(program: ast.Program) -> CheckedProgram:
    """Check a whole script, in statement order.

    Function signatures are collected before bodies are checked, so
    mutually recursive groups type-check (their *scheduling* is the
    separate Section 9 extension in :mod:`repro.schedule.mutual_rec`;
    the single-function pipeline rejects cross-calls at analysis
    time).
    """
    checker = _ProgramChecker()
    # Pass 1: data declarations and function signatures.
    for stmt in program.statements:
        if isinstance(stmt, ast.FuncDef):
            checker.declare_signature(stmt)
        elif not isinstance(stmt, ast.ScheduleDecl):
            checker.check_statement(stmt)
    # Pass 2: function bodies (cross-references now resolvable) and
    # schedule declarations.
    for stmt in program.statements:
        if isinstance(stmt, (ast.FuncDef, ast.ScheduleDecl)):
            checker.check_statement(stmt)
    return CheckedProgram(
        program,
        checker.alphabets,
        checker.matrices,
        checker.hmms,
        checker.functions,
        checker.schedules,
    )


def check_function(
    func: ast.FuncDef, alphabets: Optional[Dict[str, str]] = None
) -> CheckedFunction:
    """Check a single function against a set of alphabets.

    Convenience entry point used heavily by tests and by the
    programmatic API: matrix/HMM parameters are permitted, with their
    concrete declarations supplied at run time.
    """
    checker = _ProgramChecker()
    checker.alphabets = dict(alphabets or {})
    return checker.check_funcdef(func)


class _ProgramChecker:
    def __init__(self) -> None:
        self.alphabets: Dict[str, str] = {}
        self.matrices: Dict[str, ast.MatrixDecl] = {}
        self.hmms: Dict[str, ast.HmmDecl] = {}
        self.functions: Dict[str, CheckedFunction] = {}
        self.schedules: Dict[str, ast.Expr] = {}

    def check_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.AlphabetDecl):
            self._declare(self.alphabets, stmt.name, stmt.chars, stmt)
        elif isinstance(stmt, ast.MatrixDecl):
            self._check_matrix(stmt)
            self._declare(self.matrices, stmt.name, stmt, stmt)
        elif isinstance(stmt, ast.HmmDecl):
            self._check_hmm(stmt)
            self._declare(self.hmms, stmt.name, stmt, stmt)
        elif isinstance(stmt, ast.FuncDef):
            if stmt.name not in self.functions:
                self.declare_signature(stmt)
            self.check_body(self.functions[stmt.name])
        elif isinstance(stmt, ast.ScheduleDecl):
            if stmt.func not in self.functions:
                raise TypeCheckError(
                    f"schedule for unknown function {stmt.func!r}", stmt.span
                )
            self.schedules[stmt.func] = stmt.expr
        # let/load/print/map are checked dynamically by the runtime.

    def _declare(self, table, name: str, value, stmt: ast.Stmt) -> None:
        if name in table:
            raise TypeCheckError(f"{name!r} is declared twice", stmt.span)
        table[name] = value

    # -- declarations -------------------------------------------------------

    def _alphabet(self, name: str, span) -> str:
        if name not in self.alphabets:
            raise TypeCheckError(f"unknown alphabet {name!r}", span)
        return self.alphabets[name]

    def _check_matrix(self, decl: ast.MatrixDecl) -> None:
        rows = self._alphabet(decl.row_alphabet, decl.span)
        cols = self._alphabet(decl.col_alphabet, decl.span)
        header = decl.header or tuple(cols)
        for ch in header:
            if ch not in cols:
                raise TypeCheckError(
                    f"matrix {decl.name!r}: header character {ch!r} is not "
                    f"in alphabet {decl.col_alphabet!r}",
                    decl.span,
                )
        seen = set()
        for row in decl.rows:
            if row.char not in rows:
                raise TypeCheckError(
                    f"matrix {decl.name!r}: row character {row.char!r} is "
                    f"not in alphabet {decl.row_alphabet!r}",
                    row.span,
                )
            if row.char in seen:
                raise TypeCheckError(
                    f"matrix {decl.name!r}: duplicate row {row.char!r}",
                    row.span,
                )
            seen.add(row.char)
            if len(row.values) != len(header):
                raise TypeCheckError(
                    f"matrix {decl.name!r}: row {row.char!r} has "
                    f"{len(row.values)} values but the header has "
                    f"{len(header)} columns",
                    row.span,
                )
        if decl.default is None:
            missing = set(rows) - seen
            if missing:
                raise TypeCheckError(
                    f"matrix {decl.name!r}: no default and missing rows for "
                    f"{sorted(missing)}",
                    decl.span,
                )

    def _check_hmm(self, decl: ast.HmmDecl) -> None:
        alphabet = self._alphabet(decl.alphabet, decl.span)
        names = set()
        start_count = 0
        end_count = 0
        for state in decl.states:
            if state.name in names:
                raise TypeCheckError(
                    f"hmm {decl.name!r}: duplicate state {state.name!r}",
                    state.span,
                )
            names.add(state.name)
            start_count += state.kind == "start"
            end_count += state.kind == "end"
            for char, prob in state.emissions:
                if char not in alphabet:
                    raise TypeCheckError(
                        f"hmm {decl.name!r}: state {state.name!r} emits "
                        f"{char!r} which is not in alphabet "
                        f"{decl.alphabet!r}",
                        state.span,
                    )
                if prob < 0.0:
                    raise TypeCheckError(
                        f"hmm {decl.name!r}: negative emission probability "
                        f"for {char!r} in state {state.name!r}",
                        state.span,
                    )
        if start_count != 1 or end_count != 1:
            raise TypeCheckError(
                f"hmm {decl.name!r}: needs exactly one start and one end "
                f"state (found {start_count} start, {end_count} end)",
                decl.span,
            )
        for trans in decl.transitions:
            for endpoint in (trans.source, trans.target):
                if endpoint not in names:
                    raise TypeCheckError(
                        f"hmm {decl.name!r}: transition references unknown "
                        f"state {endpoint!r}",
                        trans.span,
                    )
            if trans.prob < 0.0:
                raise TypeCheckError(
                    f"hmm {decl.name!r}: negative transition probability",
                    trans.span,
                )

    # -- functions ----------------------------------------------------------

    def declare_signature(self, func: ast.FuncDef) -> CheckedFunction:
        """Resolve a function's parameters and return type (pass 1)."""
        if func.name in self.functions:
            raise TypeCheckError(
                f"function {func.name!r} is defined twice", func.span
            )
        params = self._resolve_params(func)
        return_type = self._resolve_return_type(func.return_type)
        checked = CheckedFunction(func, func.name, return_type, params)
        if not checked.recursive_params:
            raise TypeCheckError(
                f"function {func.name!r} has no recursive parameters; the "
                f"recursion domain would be empty",
                func.span,
            )
        self.functions[func.name] = checked
        return checked

    def check_body(self, checked: CheckedFunction) -> CheckedFunction:
        """Type-check a declared function's body (pass 2)."""
        func = checked.definition
        body_checker = _BodyChecker(self, checked)
        body_type = body_checker.check(
            func.body, expected=checked.return_type
        )
        if not widens_to(body_type, checked.return_type):
            raise TypeCheckError(
                f"function {func.name!r} declares return type "
                f"{checked.return_type} but its body has type "
                f"{body_type}",
                func.body.span,
            )
        return checked

    def check_funcdef(self, func: ast.FuncDef) -> CheckedFunction:
        """Declare and check one function (the standalone entry)."""
        return self.check_body(self.declare_signature(func))

    def _resolve_return_type(self, texpr: ast.TypeExpr) -> Type:
        resolved = {
            "int": INT,
            "float": FLOAT,
            "prob": PROB,
            "bool": BOOL,
        }.get(texpr.name)
        if resolved is None:
            raise TypeCheckError(
                f"functions must return int, float, prob or bool, "
                f"not {texpr}",
                texpr.span,
            )
        return resolved

    def _resolve_params(
        self, func: ast.FuncDef
    ) -> Tuple[CheckedParam, ...]:
        params: List[CheckedParam] = []
        by_name: Dict[str, Type] = {}
        for param in func.params:
            if param.name in by_name:
                raise TypeCheckError(
                    f"duplicate parameter {param.name!r}", param.span
                )
            ptype = self._resolve_param_type(param, by_name)
            if not (ptype.is_calling or ptype.is_recursive):
                raise TypeCheckError(
                    f"type {ptype} is neither calling nor recursive and "
                    f"cannot be a parameter",
                    param.span,
                )
            by_name[param.name] = ptype
            params.append(CheckedParam(param.name, ptype))
        return tuple(params)

    def _resolve_param_type(
        self, param: ast.Param, earlier: Dict[str, Type]
    ) -> Type:
        texpr = param.type
        name = texpr.name
        span = texpr.span
        if name == "int":
            return INT
        if name == "float":
            return FLOAT
        if name == "prob":
            return PROB
        if name == "bool":
            raise TypeCheckError(
                "bool is neither a calling nor a recursive type", span
            )
        if name == "hmm":
            return HmmType()
        if name in ("seq", "char"):
            alphabet = self._resolve_alphabet_ref(texpr)
            return SeqType(alphabet) if name == "seq" else CharType(alphabet)
        if name == "matrix":
            if len(texpr.args) != 2:
                raise TypeCheckError(
                    "matrix types take two alphabets: matrix[rows, cols]",
                    span,
                )
            row = self._resolve_alphabet_name(texpr.args[0], span)
            col = self._resolve_alphabet_name(texpr.args[1], span)
            return MatrixType(row, col)
        if name == "index":
            referee = self._resolve_param_ref(texpr, earlier, SeqType, span)
            return IndexType(referee)
        if name in ("state", "transition"):
            referee = self._resolve_param_ref(texpr, earlier, HmmType, span)
            if name == "state":
                return StateType(referee)
            return TransitionType(referee)
        raise TypeCheckError(f"unknown type {texpr}", span)

    def _resolve_alphabet_ref(self, texpr: ast.TypeExpr) -> Optional[str]:
        if len(texpr.args) != 1:
            raise TypeCheckError(
                f"{texpr.name} types take one alphabet argument", texpr.span
            )
        return self._resolve_alphabet_name(texpr.args[0], texpr.span)

    def _resolve_alphabet_name(self, name: str, span) -> Optional[str]:
        if name == "*":
            return None
        self._alphabet(name, span)
        return name

    def _resolve_param_ref(
        self, texpr: ast.TypeExpr, earlier: Dict[str, Type], want, span
    ) -> str:
        if len(texpr.args) != 1 or texpr.args[0] == "*":
            raise TypeCheckError(
                f"{texpr.name} types take one parameter reference", span
            )
        referee = texpr.args[0]
        if referee not in earlier:
            raise TypeCheckError(
                f"{texpr} refers to {referee!r}, which is not an earlier "
                f"parameter",
                span,
            )
        if not isinstance(earlier[referee], want):
            raise TypeCheckError(
                f"{texpr} must refer to a {want.__name__.replace('Type', '').lower()} "
                f"parameter, but {referee!r} has type {earlier[referee]}",
                span,
            )
        return referee


class _BodyChecker:
    """Types the body of one function."""

    def __init__(
        self, program: _ProgramChecker, func: CheckedFunction
    ) -> None:
        self._program = program
        self._func = func
        self._scope: Dict[str, Type] = {
            p.name: p.type for p in func.params
        }

    def check(
        self, expr: ast.Expr, expected: Optional[Type] = None
    ) -> Type:
        result = self._check(expr, expected)
        self._func._expr_types[id(expr)] = result
        return result

    def _check(self, expr: ast.Expr, expected: Optional[Type]) -> Type:
        if isinstance(expr, ast.IntLit):
            if expected is not None and isinstance(
                expected, (FloatType, ProbType)
            ):
                return expected
            return INT
        if isinstance(expr, ast.FloatLit):
            if isinstance(expected, ProbType):
                return PROB
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.CharLit):
            return CharType(None)
        if isinstance(expr, ast.Var):
            return self._check_var(expr)
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr, expected)
        if isinstance(expr, ast.If):
            return self._check_if(expr, expected)
        if isinstance(expr, ast.Call):
            return self._check_call(expr)
        if isinstance(expr, ast.SeqIndex):
            return self._check_seq_index(expr)
        if isinstance(expr, ast.MatrixIndex):
            return self._check_matrix_index(expr)
        if isinstance(expr, ast.Field):
            return self._check_field(expr)
        if isinstance(expr, ast.Emission):
            return self._check_emission(expr)
        if isinstance(expr, ast.Reduce):
            return self._check_reduce(expr, expected)
        if isinstance(expr, (ast.StrLit, ast.Len, ast.Placeholder)):
            raise TypeCheckError(
                f"{expr} is only allowed in script statements, not in "
                f"function bodies",
                expr.span,
            )
        raise TypeCheckError(f"unsupported expression {expr!r}", expr.span)

    def _check_var(self, expr: ast.Var) -> Type:
        if expr.name not in self._scope:
            raise TypeCheckError(f"unknown variable {expr.name!r}", expr.span)
        return self._scope[expr.name]

    def _check_binop(
        self, expr: ast.BinOp, expected: Optional[Type]
    ) -> Type:
        if expr.op.is_comparison:
            left = self.check(expr.left)
            right = self.check(expr.right)
            if left.is_numeric and right.is_numeric:
                return BOOL
            if isinstance(left, CharType) and isinstance(right, CharType):
                if expr.op not in (ast.BinOpKind.EQ, ast.BinOpKind.NE):
                    raise TypeCheckError(
                        "characters only support == and !=", expr.span
                    )
                if not alphabets_compatible(left.alphabet, right.alphabet):
                    raise TypeCheckError(
                        f"cannot compare characters from alphabets "
                        f"{left.alphabet!r} and {right.alphabet!r}",
                        expr.span,
                    )
                return BOOL
            if isinstance(left, StateType) and isinstance(right, StateType):
                if expr.op in (ast.BinOpKind.EQ, ast.BinOpKind.NE):
                    return BOOL
            raise TypeCheckError(
                f"cannot compare {left} with {right}", expr.span
            )
        # Arithmetic (including min/max).
        numeric_expected = (
            expected
            if isinstance(expected, (IntType, FloatType, ProbType))
            else None
        )
        left = self.check(expr.left, numeric_expected)
        right = self.check(expr.right, numeric_expected)
        result = unify_numeric(left, right)
        if result is None:
            raise TypeCheckError(
                f"operator {expr.op.value!r} needs numeric operands, got "
                f"{left} and {right}",
                expr.span,
            )
        return result

    def _check_if(self, expr: ast.If, expected: Optional[Type]) -> Type:
        cond = self.check(expr.cond)
        if not isinstance(cond, BoolType):
            raise TypeCheckError(
                f"if-condition must be bool, got {cond}", expr.cond.span
            )
        then_type = self.check(expr.then_branch, expected)
        else_type = self.check(expr.else_branch, expected)
        if then_type == else_type:
            return then_type
        unified = unify_numeric(then_type, else_type)
        if unified is None:
            raise TypeCheckError(
                f"if-branches have incompatible types {then_type} and "
                f"{else_type}",
                expr.span,
            )
        return unified

    def _check_call(self, expr: ast.Call) -> Type:
        if expr.func == self._func.name:
            callee = self._func
        elif expr.func in self._program.functions:
            # A cross-call: well-typed here; whether the *group* can
            # be scheduled is decided by the mutual-recursion analysis
            # (Section 9 / repro.schedule.mutual_rec) — the
            # single-function pipeline rejects it at analysis time.
            callee = self._program.functions[expr.func]
        else:
            raise TypeCheckError(
                f"call to unknown function {expr.func!r} inside "
                f"{self._func.name!r}",
                expr.span,
            )
        recursive = callee.recursive_params
        if len(expr.args) != len(recursive):
            raise TypeCheckError(
                f"recursive call passes {len(expr.args)} arguments but "
                f"{callee.name!r} has {len(recursive)} recursive "
                f"parameters ({', '.join(p.name for p in recursive)})",
                expr.span,
            )
        for arg, param in zip(expr.args, recursive):
            arg_type = self.check(arg, param.type)
            if not self._argument_matches(arg_type, param.type):
                raise TypeCheckError(
                    f"recursive argument for {param.name!r} has type "
                    f"{arg_type}, expected {param.type}",
                    arg.span,
                )
        return callee.return_type

    def _argument_matches(self, arg: Type, param: Type) -> bool:
        if isinstance(param, (IntType, IndexType)):
            return isinstance(arg, (IntType, IndexType))
        if isinstance(param, StateType):
            return isinstance(arg, StateType)
        if isinstance(param, TransitionType):
            return isinstance(arg, TransitionType)
        return arg == param

    def _check_seq_index(self, expr: ast.SeqIndex) -> Type:
        seq_type = self._scope.get(expr.seq)
        if not isinstance(seq_type, SeqType):
            raise TypeCheckError(
                f"{expr.seq!r} is not a sequence parameter", expr.span
            )
        index_type = self.check(expr.index)
        if not isinstance(index_type, (IntType, IndexType)):
            raise TypeCheckError(
                f"sequence index must be an int or index, got {index_type}",
                expr.index.span,
            )
        return CharType(seq_type.alphabet)

    def _check_matrix_index(self, expr: ast.MatrixIndex) -> Type:
        matrix_type = self._scope.get(expr.matrix)
        if not isinstance(matrix_type, MatrixType):
            raise TypeCheckError(
                f"{expr.matrix!r} is not a matrix parameter", expr.span
            )
        row = self.check(expr.row)
        col = self.check(expr.col)
        for got, want, which in (
            (row, matrix_type.row_alphabet, "row"),
            (col, matrix_type.col_alphabet, "column"),
        ):
            if not isinstance(got, CharType):
                raise TypeCheckError(
                    f"matrix {which} subscript must be a character, got "
                    f"{got}",
                    expr.span,
                )
            if not alphabets_compatible(got.alphabet, want):
                raise TypeCheckError(
                    f"matrix {which} subscript has alphabet "
                    f"{got.alphabet!r}, expected {want!r}",
                    expr.span,
                )
        return INT

    def _check_field(self, expr: ast.Field) -> Type:
        subject = self.check(expr.subject)
        if isinstance(subject, StateType):
            if expr.name in ("isstart", "isend"):
                return BOOL
            if expr.name in ("transitionsto", "transitionsfrom"):
                return TransitionSetType(subject.hmm_param)
            if expr.name == "index":
                return INT
            raise TypeCheckError(
                f"states have no field {expr.name!r} (expected isstart, "
                f"isend, transitionsto, transitionsfrom or index)",
                expr.span,
            )
        if isinstance(subject, TransitionType):
            if expr.name in ("start", "end"):
                return StateType(subject.hmm_param)
            if expr.name == "prob":
                return PROB
            if expr.name == "index":
                return INT
            raise TypeCheckError(
                f"transitions have no field {expr.name!r} (expected start, "
                f"end, prob or index)",
                expr.span,
            )
        raise TypeCheckError(
            f"type {subject} has no fields", expr.span
        )

    def _check_emission(self, expr: ast.Emission) -> Type:
        state = self.check(expr.state)
        if not isinstance(state, StateType):
            raise TypeCheckError(
                f"emission lookup needs a state, got {state}",
                expr.state.span,
            )
        symbol = self.check(expr.symbol)
        if not isinstance(symbol, CharType):
            raise TypeCheckError(
                f"emission lookup needs a character, got {symbol}",
                expr.symbol.span,
            )
        return PROB

    def _check_reduce(
        self, expr: ast.Reduce, expected: Optional[Type]
    ) -> Type:
        if isinstance(expr.source, ast.RangeExpr):
            binder_type: Type = self._check_range(expr.source)
        else:
            source = self.check(expr.source)
            if not isinstance(source, TransitionSetType):
                raise TypeCheckError(
                    f"reductions iterate over transition sets "
                    f"(s.transitionsto / s.transitionsfrom) or integer "
                    f"ranges (lo .. hi), got {source}",
                    expr.source.span,
                )
            binder_type = TransitionType(source.hmm_param)
        if expr.var in self._scope:
            raise TypeCheckError(
                f"reduction variable {expr.var!r} shadows an existing "
                f"binding",
                expr.span,
            )
        self._scope[expr.var] = binder_type
        try:
            body = self.check(expr.body, expected)
        finally:
            del self._scope[expr.var]
        if not body.is_numeric:
            raise TypeCheckError(
                f"reduction body must be numeric, got {body}", expr.body.span
            )
        return body

    def _check_range(self, expr: ast.RangeExpr) -> Type:
        """Range bounds must be integers; the binder is an int."""
        for bound in (expr.lo, expr.hi):
            bound_type = self.check(bound)
            if not isinstance(bound_type, (IntType, IndexType)):
                raise TypeCheckError(
                    f"range bounds must be integers, got {bound_type}",
                    bound.span,
                )
        self._func._expr_types[id(expr)] = INT
        return INT
