"""The DSL type system (Section 3.2 of the paper).

Primitive types: integers, characters, sequences, indices on
sequences, floats, probabilities, booleans and alphabets. The HMM
extension adds model, state and transition types; the substitution
matrix extension adds a matrix type.

Every type carries two *classifications* (Section 3.2):

* **calling** — must be instantiated before a run begins and stays
  constant over the run (sequences, models, matrices...);
* **recursive** — varies between recursive calls and therefore spans a
  dimension of the recursion domain (indices, states, transitions);
  integers are *both*: the initial value of an integer parameter fixes
  the extent of its dimension.

Every recursive type defines a mapping from its values onto an initial
segment of the naturals, which is what makes tabulation and the
polyhedral analysis possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Type:
    """Base class of all resolved types."""

    @property
    def is_calling(self) -> bool:
        """May this type appear as an invariant (calling) parameter?"""
        return False

    @property
    def is_recursive(self) -> bool:
        """May this type appear as a recursive parameter?"""
        return False

    @property
    def is_numeric(self) -> bool:
        """Participates in arithmetic and comparisons."""
        return False


@dataclass(frozen=True)
class IntType(Type):
    """Machine integers. Both calling and recursive (Section 3.2)."""

    @property
    def is_calling(self) -> bool:
        """See :class:`Type`: usable as a calling parameter."""
        return True

    @property
    def is_recursive(self) -> bool:
        """See :class:`Type`: usable as a recursive parameter."""
        return True

    @property
    def is_numeric(self) -> bool:
        """Participates in arithmetic and comparisons."""
        return True

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE double-precision floats."""

    @property
    def is_calling(self) -> bool:
        """See :class:`Type`: usable as a calling parameter."""
        return True

    @property
    def is_numeric(self) -> bool:
        """Participates in arithmetic and comparisons."""
        return True

    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class ProbType(Type):
    """Probabilities.

    A distinct high-level type so the backend may pick a low-level
    representation (plain float, log-space, extended exponent); see
    Section 3.2 of the paper and :mod:`repro.ir.lower`.
    """

    @property
    def is_calling(self) -> bool:
        """See :class:`Type`: usable as a calling parameter."""
        return True

    @property
    def is_numeric(self) -> bool:
        """Participates in arithmetic and comparisons."""
        return True

    def __str__(self) -> str:
        return "prob"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class CharType(Type):
    """A character drawn from ``alphabet`` (``None`` = any alphabet)."""

    alphabet: Optional[str] = None

    @property
    def is_calling(self) -> bool:
        """See :class:`Type`: usable as a calling parameter."""
        return True

    def __str__(self) -> str:
        return f"char[{self.alphabet or '*'}]"


@dataclass(frozen=True)
class SeqType(Type):
    """An immutable sequence over ``alphabet`` (``None`` = any).

    Sequences are queried by index only; no other operations exist
    (Section 3.1).
    """

    alphabet: Optional[str] = None

    @property
    def is_calling(self) -> bool:
        """See :class:`Type`: usable as a calling parameter."""
        return True

    def __str__(self) -> str:
        return f"seq[{self.alphabet or '*'}]"


@dataclass(frozen=True)
class IndexType(Type):
    """An index into the sequence parameter named ``seq_param``.

    Indices are the workhorse recursive type: an index on a sequence
    of length ``n`` ranges over ``0..n`` (inclusive — position 0 is
    "before the first character", matching Figure 7 where ``i == 0``
    is the base case and ``s[i-1]`` reads the current character).
    """

    seq_param: str

    @property
    def is_recursive(self) -> bool:
        """See :class:`Type`: usable as a recursive parameter."""
        return True

    @property
    def is_numeric(self) -> bool:
        """Participates in arithmetic and comparisons."""
        return True

    def __str__(self) -> str:
        return f"index[{self.seq_param}]"


@dataclass(frozen=True)
class MatrixType(Type):
    """A substitution matrix over two alphabets (Section 5.1)."""

    row_alphabet: Optional[str]
    col_alphabet: Optional[str]

    @property
    def is_calling(self) -> bool:
        """See :class:`Type`: usable as a calling parameter."""
        return True

    def __str__(self) -> str:
        return (
            f"matrix[{self.row_alphabet or '*'}, {self.col_alphabet or '*'}]"
        )


@dataclass(frozen=True)
class HmmType(Type):
    """A Hidden Markov Model (Section 5.2)."""

    @property
    def is_calling(self) -> bool:
        """See :class:`Type`: usable as a calling parameter."""
        return True

    def __str__(self) -> str:
        return "hmm"


@dataclass(frozen=True)
class StateType(Type):
    """A state of the HMM parameter named ``hmm_param``.

    States carry an arbitrary total order mapping them to naturals
    (Section 5.2), which is what lets them act as a recursion
    dimension.
    """

    hmm_param: str

    @property
    def is_recursive(self) -> bool:
        """See :class:`Type`: usable as a recursive parameter."""
        return True

    def __str__(self) -> str:
        return f"state[{self.hmm_param}]"


@dataclass(frozen=True)
class TransitionType(Type):
    """A transition of the HMM parameter named ``hmm_param``."""

    hmm_param: str

    @property
    def is_recursive(self) -> bool:
        """See :class:`Type`: usable as a recursive parameter."""
        return True

    def __str__(self) -> str:
        return f"transition[{self.hmm_param}]"


@dataclass(frozen=True)
class TransitionSetType(Type):
    """The set of transitions into/out of a state; expression-only.

    Only consumed by reductions (``sum(t in s.transitionsto : ...)``).
    """

    hmm_param: str

    def __str__(self) -> str:
        return f"transitionset[{self.hmm_param}]"


INT = IntType()
FLOAT = FloatType()
PROB = ProbType()
BOOL = BoolType()


def alphabets_compatible(a: Optional[str], b: Optional[str]) -> bool:
    """Two alphabet references unify when equal or either is ``*``."""
    return a is None or b is None or a == b


def unify_numeric(a: Type, b: Type) -> Optional[Type]:
    """The result type of an arithmetic operation on ``a`` and ``b``.

    Numeric types form the widening chain ``int < float < prob``
    (indices behave as ints). ``prob`` dominates because any
    computation touching a probability must use the representation the
    backend chose for probabilities (e.g. log-space, Section 3.2).
    """
    if not (a.is_numeric and b.is_numeric):
        return None
    if isinstance(a, ProbType) or isinstance(b, ProbType):
        return PROB
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        return FLOAT
    return INT


def widens_to(source: Type, target: Type) -> bool:
    """May a value of ``source`` be used where ``target`` is expected?"""
    if source == target:
        return True
    order = {"int": 0, "float": 1, "prob": 2}
    if isinstance(source, IndexType):
        source = INT
    s = order.get(str(source).split("[")[0], None)
    t = order.get(str(target), None)
    if s is None or t is None:
        return False
    return s <= t
