"""Polyhedral code generation: polyhedra, loop ASTs, CLooG-style gen."""

from .codegen import (
    STMT_NAME,
    TIME_VAR,
    generate_for_domain,
    generate_loops,
    scattering_polyhedron,
)
from .loopast import (
    Assign,
    Bound,
    Div,
    Guard,
    Loop,
    LoopNest,
    Stmt,
    emit_c,
    emit_c_inlined,
    iterate,
)
from .polyhedron import Constraint, Polyhedron

__all__ = [
    "STMT_NAME",
    "TIME_VAR",
    "generate_for_domain",
    "generate_loops",
    "scattering_polyhedron",
    "Assign",
    "Bound",
    "Div",
    "Guard",
    "Loop",
    "LoopNest",
    "Stmt",
    "emit_c",
    "emit_c_inlined",
    "iterate",
    "Constraint",
    "Polyhedron",
]
