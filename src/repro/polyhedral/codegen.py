"""CLooG-style loop generation from a domain and a schedule.

Section 4.3 of the paper: the recursion domain is a polyhedron, the
schedule an affine *scattering* function, and code generation produces
a loop nest whose outermost loop runs over the time-step partitions
and whose inner loops enumerate each partition's cells.

The generator builds the target polyhedron over ``(t, x1, ..., xn)``
with the scattering equality ``t == S(x)``, then emits one level per
dimension, outside-in:

* a dimension pinned by the equality (the last dimension with a
  non-zero schedule coefficient) becomes an assignment, with a
  divisibility guard when its coefficient is not ±1;
* every other dimension becomes a loop whose bounds come from
  projecting away all inner dimensions (equality substitution first,
  then Fourier–Motzkin — exact for box-plus-one-equality systems).

For the edit distance with ``S = x + y`` this reproduces Figure 9
token for token.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis.affine import Affine
from ..analysis.domain import Domain
from ..lang.errors import CodegenError
from .loopast import Assign, Bound, Div, Guard, Loop, LoopNest, Node, Stmt
from .polyhedron import Constraint, Polyhedron

#: Name of the time (partition) dimension in generated nests.
TIME_VAR = "p"
#: Name of the generated statement (CLooG convention).
STMT_NAME = "S1"


def scattering_polyhedron(
    dims: Sequence[str],
    upper_bounds: Sequence[Affine],
    coefficients: Sequence[int],
    time_var: str = TIME_VAR,
) -> Polyhedron:
    """The target polyhedron: domain box plus ``t == S(x)``."""
    if len(dims) != len(upper_bounds) or len(dims) != len(coefficients):
        raise ValueError("dims, bounds and coefficients must align")
    poly = Polyhedron.box(list(zip(dims, upper_bounds)))
    poly = poly.with_dim(time_var, front=True)
    schedule = Affine.of(dict(zip(dims, coefficients)))
    equality = Constraint(
        Affine.variable(time_var) - schedule, is_equality=True
    )
    return poly.with_constraint(equality)


def generate_loops(
    dims: Sequence[str],
    upper_bounds: Sequence[Affine],
    coefficients: Sequence[int],
    time_var: str = TIME_VAR,
    stmt_name: str = STMT_NAME,
) -> LoopNest:
    """Generate the loop nest for one schedule.

    ``upper_bounds`` are inclusive upper bounds per dimension, affine
    in symbolic parameters (or constants). The time loop is outermost;
    space dimensions keep their declaration order; the last dimension
    with a non-zero coefficient is pinned by the scattering equality.
    """
    dims = tuple(dims)
    if time_var in dims:
        raise CodegenError(
            f"time variable {time_var!r} collides with a dimension"
        )
    coefficients = tuple(coefficients)
    poly = scattering_polyhedron(
        dims, upper_bounds, coefficients, time_var
    )

    pinned = _pinned_dim(dims, coefficients)
    order = (time_var,) + dims
    body: Tuple[Node, ...] = (
        Stmt(stmt_name, tuple(Affine.variable(d) for d in dims)),
    )

    # Build the nest inside-out.
    for level in range(len(order) - 1, -1, -1):
        var = order[level]
        inner = [
            d for d in order[level + 1:]
        ]
        if var == pinned:
            body = _pin(var, dims, coefficients, time_var, body)
        elif var == time_var and pinned is None:
            # Zero schedule: a single partition.
            zero = Div(Affine.constant(0), 1, "floor")
            body = (
                Loop(var, Bound("max", (zero,)), Bound("min", (zero,)), body),
            )
        else:
            body = (_loop_for(poly, var, inner, pinned, body),)

    return LoopNest(body, time_var, dims)


def generate_for_domain(
    domain: Domain,
    coefficients: Sequence[int],
    time_var: str = TIME_VAR,
    stmt_name: str = STMT_NAME,
) -> LoopNest:
    """Generate loops for a concrete (numeric) domain."""
    bounds = [Affine.constant(e - 1) for e in domain.extents]
    return generate_loops(
        domain.dims, bounds, coefficients, time_var, stmt_name
    )


def _pinned_dim(
    dims: Tuple[str, ...], coefficients: Tuple[int, ...]
) -> Optional[str]:
    for dim, coeff in reversed(list(zip(dims, coefficients))):
        if coeff != 0:
            return dim
    return None


def _pin(
    var: str,
    dims: Tuple[str, ...],
    coefficients: Tuple[int, ...],
    time_var: str,
    body: Tuple[Node, ...],
) -> Tuple[Node, ...]:
    """Emit ``var = (t - sum others) / a_var`` with guards as needed."""
    table = dict(zip(dims, coefficients))
    a = table[var]
    numerator = Affine.variable(time_var)
    for dim, coeff in table.items():
        if dim == var or coeff == 0:
            continue
        numerator = numerator - Affine.variable(dim).scale(coeff)
    if a < 0:
        numerator = -numerator
        a = -a
    node: Tuple[Node, ...] = (
        Assign(var, Div(numerator, a, "floor"), body),
    )
    if a != 1:
        node = (Guard(numerator, a, node),)
    return node


def _loop_for(
    poly: Polyhedron,
    var: str,
    inner: List[str],
    pinned: Optional[str],
    body: Tuple[Node, ...],
) -> Loop:
    """A loop for ``var``: project away inner dims, read the bounds."""
    # Eliminate the pinned dimension first (equality substitution is
    # exact), then the remaining box dimensions.
    elimination_order = sorted(
        inner, key=lambda d: (d != pinned,)
    )
    projected = poly.eliminate_all(elimination_order)
    lowers, uppers = projected.bounds_for(var)
    if not lowers or not uppers:
        raise CodegenError(
            f"could not derive finite bounds for dimension {var!r}"
        )
    lower = Bound(
        "max",
        tuple(
            Div(num, div, "ceil") for div, num in _dedup(lowers)
        ),
    )
    upper = Bound(
        "min",
        tuple(
            Div(num, div, "floor") for div, num in _dedup(uppers)
        ),
    )
    return Loop(var, lower, upper, body)


def _dedup(
    bounds: List[Tuple[int, Affine]]
) -> List[Tuple[int, Affine]]:
    seen = []
    for item in bounds:
        if item not in seen:
            seen.append(item)
    return seen
