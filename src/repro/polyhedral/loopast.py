"""Loop-nest AST produced by polyhedral code generation.

The generator (:mod:`repro.polyhedral.codegen`) emits a nest of
:class:`Loop`, :class:`Assign`, :class:`Guard` and :class:`Stmt`
nodes. Two consumers exist:

* :func:`emit_c` renders CLooG-style C text (Figure 9 of the paper);
* :func:`iterate` enumerates the iterations in execution order, which
  drives both the test oracle and the simulated-GPU backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple

from ..analysis.affine import Affine


def _ceil_div(num: int, div: int) -> int:
    return -((-num) // div)


def _floor_div(num: int, div: int) -> int:
    return num // div


@dataclass(frozen=True)
class Div:
    """``ceil(numerator / divisor)`` or ``floor(numerator / divisor)``.

    ``divisor`` is always positive; negative divisors are normalised
    away at construction sites.
    """

    numerator: Affine
    divisor: int
    mode: str  # "ceil" | "floor"

    def __post_init__(self) -> None:
        if self.divisor <= 0:
            raise ValueError("divisor must be positive")
        if self.mode not in ("ceil", "floor"):
            raise ValueError(f"bad mode {self.mode!r}")

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate at a concrete environment."""
        value = self.numerator.evaluate(env)
        if self.divisor == 1:
            return value
        if self.mode == "ceil":
            return _ceil_div(value, self.divisor)
        return _floor_div(value, self.divisor)

    def c_text(self) -> str:
        """Render as CLooG-style C text."""
        inner = affine_c_text(self.numerator)
        if self.divisor == 1:
            return inner
        helper = "ceild" if self.mode == "ceil" else "floord"
        return f"{helper}({inner},{self.divisor})"

    def __str__(self) -> str:
        return self.c_text()


@dataclass(frozen=True)
class Bound:
    """A loop bound: ``max`` of lower terms or ``min`` of upper terms."""

    kind: str  # "max" (lower bound) | "min" (upper bound)
    terms: Tuple[Div, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("max", "min"):
            raise ValueError(f"bad bound kind {self.kind!r}")
        if not self.terms:
            raise ValueError("a bound needs at least one term")

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate at a concrete environment."""
        values = [term.evaluate(env) for term in self.terms]
        return max(values) if self.kind == "max" else min(values)

    def c_text(self) -> str:
        """Render as CLooG-style C text."""
        if len(self.terms) == 1:
            return self.terms[0].c_text()
        texts = [t.c_text() for t in self.terms]
        out = texts[0]
        for text in texts[1:]:
            out = f"{self.kind}({out},{text})"
        return out

    def __str__(self) -> str:
        return self.c_text()


@dataclass(frozen=True)
class Node:
    """Base class of loop-nest nodes."""


@dataclass(frozen=True)
class Stmt(Node):
    """A statement instance, e.g. ``S1(i, p - i)``."""

    name: str
    args: Tuple[Affine, ...]

    def c_text(self) -> str:
        """Render as CLooG-style C text."""
        args = ",".join(affine_c_text(a) for a in self.args)
        return f"{self.name}({args});"


@dataclass(frozen=True)
class Loop(Node):
    """``for (var = lower; var <= upper; var += step) body``."""

    var: str
    lower: Bound
    upper: Bound
    body: Tuple[Node, ...]
    step: int = 1


@dataclass(frozen=True)
class Assign(Node):
    """``var = value; body`` — a dimension pinned by an equality."""

    var: str
    value: Div
    body: Tuple[Node, ...]


@dataclass(frozen=True)
class Guard(Node):
    """``if (expr % divisor == 0) body`` — a divisibility guard."""

    expr: Affine
    divisor: int
    body: Tuple[Node, ...]


@dataclass(frozen=True)
class LoopNest:
    """A whole generated nest, with its dimension order."""

    roots: Tuple[Node, ...]
    time_var: str
    space_vars: Tuple[str, ...]

    def c_text(self) -> str:
        """The whole nest as CLooG-style C text."""
        return emit_c(self.roots)

    def iterations(
        self, params: Mapping[str, int]
    ) -> Iterator[Tuple[str, Dict[str, int]]]:
        """Enumerate (statement, environment) in order."""
        return iterate(self.roots, dict(params))


# ---------------------------------------------------------------------------
# C emission (CLooG style, Figure 9)
# ---------------------------------------------------------------------------


def affine_c_text(affine: Affine) -> str:
    """Render an affine expression the way CLooG prints it.

    Positive terms print before negative ones, so differences read
    ``p-m`` rather than ``-m+p`` (matching Figure 9).
    """
    parts: List[str] = []
    ordered = sorted(affine.coeffs, key=lambda item: item[1] < 0)
    for dim, coeff in ordered:
        if coeff == 1:
            term = dim
        elif coeff == -1:
            term = f"-{dim}"
        else:
            term = f"{coeff}*{dim}"
        if parts and not term.startswith("-"):
            parts.append(f"+{term}")
        else:
            parts.append(term)
    if affine.const != 0 or not parts:
        if parts and affine.const > 0:
            parts.append(f"+{affine.const}")
        else:
            parts.append(str(affine.const))
    return "".join(parts)


def emit_c(roots: Tuple[Node, ...], indent: int = 0) -> str:
    """Render a nest (or subtree) as CLooG-style C text."""
    lines: List[str] = []
    _emit_c(roots, indent, lines)
    return "\n".join(lines)


def _emit_c(nodes: Tuple[Node, ...], depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    for node in nodes:
        if isinstance(node, Stmt):
            lines.append(pad + node.c_text())
        elif isinstance(node, Loop):
            step = f"{node.var}+={node.step}" if node.step != 1 else (
                f"{node.var}++"
            )
            lines.append(
                pad
                + f"for ({node.var}={node.lower.c_text()};"
                + f"{node.var}<={node.upper.c_text()};{step}) {{"
            )
            _emit_c(node.body, depth + 1, lines)
            lines.append(pad + "}")
        elif isinstance(node, Assign):
            lines.append(
                pad + f"{node.var} = {node.value.c_text()};"
            )
            _emit_c(node.body, depth, lines)
        elif isinstance(node, Guard):
            lines.append(
                pad
                + f"if (({affine_c_text(node.expr)})%{node.divisor}==0) {{"
            )
            _emit_c(node.body, depth + 1, lines)
            lines.append(pad + "}")
        else:
            raise TypeError(f"unknown node {node!r}")


def emit_c_inlined(roots: Tuple[Node, ...]) -> str:
    """C text with unit-divisor assignments substituted into uses.

    This matches Figure 9 exactly: the pinned dimension ``j = p - i``
    disappears and the statement reads ``S1(i,p-i)``.
    """
    lines: List[str] = []
    _emit_inlined(roots, 0, {}, lines)
    return "\n".join(lines)


def _subst(affine: Affine, bindings: Mapping[str, Affine]) -> Affine:
    return affine.substitute(dict(bindings))


def _emit_inlined(
    nodes: Tuple[Node, ...],
    depth: int,
    bindings: Dict[str, Affine],
    lines: List[str],
) -> None:
    pad = "  " * depth
    for node in nodes:
        if isinstance(node, Stmt):
            args = ",".join(
                affine_c_text(_subst(a, bindings)) for a in node.args
            )
            lines.append(pad + f"{node.name}({args});")
        elif isinstance(node, Loop):
            lower = Bound(
                node.lower.kind,
                tuple(
                    Div(_subst(t.numerator, bindings), t.divisor, t.mode)
                    for t in node.lower.terms
                ),
            )
            upper = Bound(
                node.upper.kind,
                tuple(
                    Div(_subst(t.numerator, bindings), t.divisor, t.mode)
                    for t in node.upper.terms
                ),
            )
            step = f"{node.var}+={node.step}" if node.step != 1 else (
                f"{node.var}++"
            )
            lines.append(
                pad
                + f"for ({node.var}={lower.c_text()};"
                + f"{node.var}<={upper.c_text()};{step}) {{"
            )
            _emit_inlined(node.body, depth + 1, bindings, lines)
            lines.append(pad + "}")
        elif isinstance(node, Assign):
            if node.value.divisor == 1:
                bindings = dict(bindings)
                bindings[node.var] = _subst(
                    node.value.numerator, bindings
                )
                _emit_inlined(node.body, depth, bindings, lines)
            else:
                lines.append(pad + f"{node.var} = {node.value.c_text()};")
                _emit_inlined(node.body, depth, bindings, lines)
        elif isinstance(node, Guard):
            lines.append(
                pad
                + f"if (({affine_c_text(_subst(node.expr, bindings))})"
                + f"%{node.divisor}==0) {{"
            )
            _emit_inlined(node.body, depth + 1, bindings, lines)
            lines.append(pad + "}")
        else:
            raise TypeError(f"unknown node {node!r}")


# ---------------------------------------------------------------------------
# Enumeration (the execution semantics of the nest)
# ---------------------------------------------------------------------------


def iterate(
    nodes: Tuple[Node, ...], env: Dict[str, int]
) -> Iterator[Tuple[str, Dict[str, int]]]:
    """Yield ``(statement name, environment)`` in execution order."""
    for node in nodes:
        if isinstance(node, Stmt):
            values = dict(env)
            yield node.name, values
        elif isinstance(node, Loop):
            lower = node.lower.evaluate(env)
            upper = node.upper.evaluate(env)
            value = lower
            while value <= upper:
                env[node.var] = value
                yield from iterate(node.body, env)
                value += node.step
            env.pop(node.var, None)
        elif isinstance(node, Assign):
            env[node.var] = node.value.evaluate(env)
            yield from iterate(node.body, env)
            env.pop(node.var, None)
        elif isinstance(node, Guard):
            if node.expr.evaluate(env) % node.divisor == 0:
                yield from iterate(node.body, env)
        else:
            raise TypeError(f"unknown node {node!r}")
