"""Integer polyhedra and Fourier–Motzkin projection.

The polyhedral model (Section 4.3): the recursion domain is a convex
polyhedron, the schedule an affine transformation of it, and code
generation iterates the transformed polyhedron. This module provides
the small polyhedral library the code generator sits on — constraints
are affine inequalities ``e >= 0`` / equalities ``e == 0`` over named
dimensions and symbolic parameters.

Fourier–Motzkin elimination over rationals is exact for the *rational*
shadow; for the structures the generator builds (a box plus one
scattering equality) the integer projection coincides with it, which
the test-suite checks by enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterable, List, Optional, Sequence, Tuple

from ..analysis.affine import Affine


@dataclass(frozen=True)
class Constraint:
    """``expr >= 0`` (inequality) or ``expr == 0`` (equality)."""

    expr: Affine
    is_equality: bool = False

    def normalised(self) -> "Constraint":
        """Divide through by the gcd of all coefficients.

        For inequalities the constant may round down (integer
        tightening: ``2x - 3 >= 0`` becomes ``x - 2 >= 0`` ... it is
        ``x >= 3/2`` i.e. ``x >= 2``); for equalities a non-divisible
        constant makes the constraint unsatisfiable, which the caller
        detects via :meth:`Polyhedron.is_trivially_empty`.
        """
        coeffs = [c for _, c in self.expr.coeffs]
        if not coeffs:
            return self
        g = 0
        for c in coeffs:
            g = gcd(g, abs(c))
        if g <= 1:
            return self
        if self.is_equality:
            if self.expr.const % g != 0:
                return self  # unsatisfiable; kept as-is for detection
            new_const = self.expr.const // g
        else:
            # floor division tightens e >= 0 correctly for integers.
            new_const = self.expr.const // g
        return Constraint(
            Affine(
                tuple((d, c // g) for d, c in self.expr.coeffs), new_const
            ),
            self.is_equality,
        )

    def __str__(self) -> str:
        op = "==" if self.is_equality else ">="
        return f"{self.expr} {op} 0"


@dataclass(frozen=True)
class Polyhedron:
    """A conjunction of constraints over ``dims`` (and free parameters).

    ``dims`` are the dimensions that projection and enumeration range
    over; any other name appearing in a constraint is a symbolic
    parameter.
    """

    dims: Tuple[str, ...]
    constraints: Tuple[Constraint, ...]

    @staticmethod
    def box(bounds: Sequence[Tuple[str, Affine]]) -> "Polyhedron":
        """``0 <= dim <= ub`` for each ``(dim, ub)`` (ub inclusive)."""
        constraints: List[Constraint] = []
        for dim, upper in bounds:
            constraints.append(Constraint(Affine.variable(dim)))
            constraints.append(
                Constraint(upper - Affine.variable(dim))
            )
        return Polyhedron(
            tuple(d for d, _ in bounds), tuple(constraints)
        )

    def with_constraint(self, constraint: Constraint) -> "Polyhedron":
        """A copy with one more constraint."""
        return Polyhedron(self.dims, self.constraints + (constraint,))

    def with_dim(self, dim: str, front: bool = False) -> "Polyhedron":
        """A copy with an extra dimension (front or back)."""
        if dim in self.dims:
            return self
        dims = (dim,) + self.dims if front else self.dims + (dim,)
        return Polyhedron(dims, self.constraints)

    @property
    def equalities(self) -> Tuple[Constraint, ...]:
        """The equality constraints."""
        return tuple(c for c in self.constraints if c.is_equality)

    @property
    def inequalities(self) -> Tuple[Constraint, ...]:
        """The inequality constraints."""
        return tuple(c for c in self.constraints if not c.is_equality)

    def is_trivially_empty(self) -> bool:
        """Detect constant-infeasible constraints (after elimination)."""
        for c in self.constraints:
            if c.expr.is_constant:
                if c.is_equality and c.expr.const != 0:
                    return True
                if not c.is_equality and c.expr.const < 0:
                    return True
        return False

    def eliminate(self, dim: str) -> "Polyhedron":
        """Project ``dim`` away (Fourier–Motzkin).

        Equalities involving ``dim`` are used as substitutions first
        (exact); remaining inequalities are combined pairwise.
        """
        if dim not in self.dims:
            raise ValueError(f"{dim!r} is not a dimension of {self.dims}")
        remaining = tuple(d for d in self.dims if d != dim)

        equality = self._equality_with(dim)
        if equality is not None:
            substituted = self._substitute_equality(dim, equality)
            return Polyhedron(remaining, substituted)

        lowers: List[Tuple[int, Affine]] = []  # a*dim >= -e  (a > 0)
        uppers: List[Tuple[int, Affine]] = []  # a*dim <= e   (a > 0)
        others: List[Constraint] = []
        for con in self.constraints:
            coeff = con.expr.coefficient(dim)
            rest = con.expr - Affine.variable(dim).scale(coeff)
            if coeff == 0:
                others.append(con)
            elif coeff > 0:
                lowers.append((coeff, rest))
            else:
                uppers.append((-coeff, rest))
        for a, lower_rest in lowers:
            for b, upper_rest in uppers:
                # a*dim + lr >= 0 and -b*dim + ur >= 0
                # => b*lr + a*ur >= 0
                combined = lower_rest.scale(b) + upper_rest.scale(a)
                others.append(Constraint(combined).normalised())
        return Polyhedron(remaining, tuple(others))

    def eliminate_all(self, dims: Iterable[str]) -> "Polyhedron":
        """Project away several dimensions, in order."""
        poly = self
        for dim in dims:
            poly = poly.eliminate(dim)
        return poly

    def _equality_with(self, dim: str) -> Optional[Constraint]:
        for con in self.equalities:
            if con.expr.coefficient(dim) != 0:
                return con
        return None

    def _substitute_equality(
        self, dim: str, equality: Constraint
    ) -> Tuple[Constraint, ...]:
        """Eliminate ``dim`` using ``equality`` (coefficient-cleared).

        With ``a*dim + r == 0``, any ``c*dim + s (op) 0`` becomes
        ``|a|*s - sign(a)*c*r (op) 0`` after multiplying through by
        ``|a|`` — exact over the rationals and sign-preserving.
        """
        a = equality.expr.coefficient(dim)
        r = equality.expr - Affine.variable(dim).scale(a)
        out: List[Constraint] = []
        for con in self.constraints:
            if con is equality:
                continue
            c = con.expr.coefficient(dim)
            if c == 0:
                out.append(con)
                continue
            s = con.expr - Affine.variable(dim).scale(c)
            # dim = -r / a; c*dim + s = (-c*r + a*s) / a.
            combined = s.scale(abs(a)) - r.scale(c if a > 0 else -c)
            out.append(Constraint(combined, con.is_equality).normalised())
        return tuple(out)

    def bounds_for(
        self, dim: str
    ) -> Tuple[List[Tuple[int, Affine]], List[Tuple[int, Affine]]]:
        """Lower/upper bound pairs ``(positive divisor, numerator)``.

        Lower: ``dim >= ceil(numerator / divisor)``;
        upper: ``dim <= floor(numerator / divisor)``.
        Only inequalities contribute; use :meth:`eliminate` on inner
        dimensions first so all bounds mention outer names only.
        """
        lowers: List[Tuple[int, Affine]] = []
        uppers: List[Tuple[int, Affine]] = []
        for con in self.inequalities:
            coeff = con.expr.coefficient(dim)
            if coeff == 0:
                continue
            rest = con.expr - Affine.variable(dim).scale(coeff)
            if coeff > 0:
                lowers.append((coeff, -rest))
            else:
                uppers.append((-coeff, rest))
        return lowers, uppers

    def __str__(self) -> str:
        return (
            "{ [" + ", ".join(self.dims) + "] : "
            + " and ".join(str(c) for c in self.constraints)
            + " }"
        )
