"""Fault injection, supervised execution and cross-backend oracles.

This package hardens the paper's execution model against the failure
modes real accelerators exhibit. :mod:`~repro.resilience.faults`
defines the seeded, deterministic injection plane;
:mod:`~repro.resilience.checkpoint` the partition-barrier snapshot
format; :mod:`~repro.resilience.supervisor` the checkpointed
execution layer that detects faults and replays only the failed
partition range; :mod:`~repro.resilience.oracle` the cross-backend
divergence oracle that separates injected corruption from genuine
compiler bugs; and :mod:`~repro.resilience.reference` the serial
interpreter fallback that graceful degradation demotes to.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointLog,
    partition_ranges,
    table_checksum,
)
from .faults import (
    CellCorruption,
    DeviceFault,
    FaultEscalation,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSite,
    KernelHang,
    LaunchFault,
    TransferFault,
)
from .oracle import DivergenceOracle, tables_agree
from .reference import serial_reference_run
from .supervisor import (
    ExecutionSupervisor,
    SupervisionPolicy,
    SupervisorStats,
)

__all__ = [
    "CellCorruption",
    "Checkpoint",
    "CheckpointLog",
    "DeviceFault",
    "DivergenceOracle",
    "ExecutionSupervisor",
    "FaultEscalation",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "KernelHang",
    "LaunchFault",
    "SupervisionPolicy",
    "SupervisorStats",
    "TransferFault",
    "partition_ranges",
    "serial_reference_run",
    "table_checksum",
    "tables_agree",
]
