"""Checkpoints at partition barriers.

The partition loop of Figure 9 gives the execution a natural
consistency structure: after partition ``p`` commits, the table's
cells at partitions ``<= p`` are final and everything later is
untouched zeros. A checkpoint is therefore just a snapshot of the
table at an epoch boundary plus a checksum — restoring one rewinds
exactly to the last barrier, and recovery replays only the failed
partition range rather than the whole problem.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


def table_checksum(table: np.ndarray) -> str:
    """Bitwise content hash of a table (NaNs hash like any payload)."""
    data = np.ascontiguousarray(table)
    return hashlib.sha256(data.tobytes()).hexdigest()


def partition_ranges(
    lo: int, hi: int, interval: int
) -> List[Tuple[int, int]]:
    """Chunk the inclusive partition span ``[lo, hi]`` into epochs.

    Each epoch covers at most ``interval`` partitions; the last epoch
    absorbs the remainder's tail. ``interval < 1`` means a single
    epoch (checkpoint only at the end).
    """
    if hi < lo:
        return []
    if interval < 1:
        return [(lo, hi)]
    ranges = []
    start = lo
    while start <= hi:
        end = min(start + interval - 1, hi)
        ranges.append((start, end))
        start = end + 1
    return ranges


@dataclass(frozen=True)
class Checkpoint:
    """One committed epoch: the partition range and its checksum."""

    problem: int
    partition_lo: int
    partition_hi: int
    checksum: str


@dataclass
class CheckpointLog:
    """Per-run record of committed epochs (checksums, not data).

    The supervisor keeps the *data* of only the latest state per
    problem (the live table); this log keeps the lightweight trail
    the tests and the oracle use to reason about what committed when.
    """

    records: List[Checkpoint] = field(default_factory=list)

    def record(
        self,
        problem: int,
        partition_lo: int,
        partition_hi: int,
        table: np.ndarray,
    ) -> Checkpoint:
        """Append a checkpoint for a just-committed epoch."""
        checkpoint = Checkpoint(
            problem, partition_lo, partition_hi, table_checksum(table)
        )
        self.records.append(checkpoint)
        return checkpoint

    def for_problem(self, problem: int) -> List[Checkpoint]:
        """All checkpoints of one problem, in commit order."""
        return [c for c in self.records if c.problem == problem]

    def latest(self, problem: int) -> Optional[Checkpoint]:
        """The most recent checkpoint of one problem, if any."""
        for checkpoint in reversed(self.records):
            if checkpoint.problem == problem:
                return checkpoint
        return None

    def checksums(self) -> Dict[Tuple[int, int, int], str]:
        """Map (problem, lo, hi) -> checksum (last write wins)."""
        return {
            (c.problem, c.partition_lo, c.partition_hi): c.checksum
            for c in self.records
        }

    def __len__(self) -> int:
        return len(self.records)
