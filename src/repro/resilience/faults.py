"""Deterministic fault injection for the simulated device.

The paper's execution template assumes every partition launch
completes and every barrier commits. A service built on the simulator
must instead survive the classic GPU failure modes: launches that
fail at the driver, cells silently corrupted in device memory,
transfers cut short, kernels that wedge. This module makes those
failure modes *explicit, seeded and replayable*:

* a :class:`FaultPlan` fixes the rates (and optionally the sites) of
  each fault kind plus a seed;
* a :class:`FaultInjector` turns the plan into per-site decisions by
  hashing ``(seed, kind, site)`` — no hidden RNG stream, so the same
  plan over the same workload produces the *same* faults regardless
  of retry interleaving, and every decision is recorded in
  :attr:`FaultInjector.log` for the tests' accounting;
* the fault exceptions all derive from :class:`DeviceFault`, the
  marker the serving layer uses to classify an error as transient
  (retry from checkpoint) rather than deterministic (fail fast).

Nothing here imports the runtime, so the device simulator and the
lock-step executor can consume an injector without an import cycle.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

import numpy as np


# -- fault exceptions ---------------------------------------------------------


class DeviceFault(RuntimeError):
    """A transient fault of the (simulated) device.

    The serving layer treats any subclass as retryable: the input was
    fine, the hardware misbehaved. ``site`` pins the fault to a
    (problem, partition, SM, attempt) coordinate when known.
    """

    def __init__(self, message: str, site: Optional["FaultSite"] = None):
        super().__init__(message)
        self.site = site


class LaunchFault(DeviceFault):
    """A kernel launch failed before executing any cell."""


class TransferFault(DeviceFault):
    """A host/device transfer was truncated mid-copy."""


class KernelHang(DeviceFault):
    """A kernel exceeded the watchdog deadline and was abandoned."""


class WorkerCrash(DeviceFault):
    """A sandbox worker process died mid-launch (signal or exit).

    Raised by the native sandbox when the subprocess executing a
    kernel launch is killed — a segfault or abort in generated C
    code, an external SIGKILL, or an open circuit breaker refusing
    further launches of a crash-prone kernel. The launch never
    touched the parent's table, so recovery is a clean re-resolution
    down the backend ladder.
    """


class SandboxHang(DeviceFault):
    """A sandboxed kernel launch exceeded its deadline and was killed.

    Unlike :class:`KernelHang` (a thread-watchdog abandonment that
    can leak the wedged thread), a sandbox hang is terminated for
    real: the worker process is SIGKILLed and respawned.
    """


class CellCorruption(DeviceFault):
    """Table cells were detected to hold corrupted values."""


class FaultEscalation(DeviceFault):
    """A partition range kept faulting past the replay budget."""


# -- sites and plans ----------------------------------------------------------


@dataclass(frozen=True)
class FaultSite:
    """One injectable coordinate: which problem, where, which try.

    ``partition`` is the lower bound of the partition range being
    launched (or ``-1`` for whole-problem launches outside the
    supervisor). ``attempt`` distinguishes replays of the same range
    so a fault does not recur forever: each retry re-rolls the dice.
    """

    problem: int
    partition: int
    sm: int
    attempt: int
    stage: str = "kernel"  # "launch" | "kernel" | "transfer" | "memory"

    def tokens(self) -> str:
        """Canonical ``problem:partition:sm:attempt:stage`` form."""
        return (
            f"{self.problem}:{self.partition}:{self.sm}:"
            f"{self.attempt}:{self.stage}"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One recorded injection (the accounting unit of the tests)."""

    kind: str
    site: FaultSite
    detail: str = ""


@dataclass(frozen=True)
class FaultPlan:
    """Rates, modes and site filters of a fault campaign.

    Rates are probabilities per opportunity: ``launch_fail_rate`` and
    ``hang_rate`` per partition-range launch, ``truncate_rate`` per
    result transfer, ``corrupt_rate`` per table cell.
    ``corrupt_mode`` picks the damage pattern: ``"nan"`` writes NaN
    into float tables (scan-detectable) and ``"bitflip"`` flips a
    high mantissa/exponent bit of the raw 64-bit word (silent —
    only replay-verification or the oracle catches it; integer tables
    always bit-flip, NaN has no int encoding). ``only_partitions`` /
    ``only_sms`` restrict which sites may fault at all.

    ``worker_kill_rate`` and ``sandbox_hang_rate`` are per sandboxed
    partition-range launch: the sandbox worker process is SIGKILLed
    mid-launch (the real process-death failure mode, not an
    exception) or wedged past the watchdog deadline (and then killed
    for real). Both are inert for in-process backends — only launches
    routed through :mod:`repro.runtime.sandbox` can honour them.
    """

    seed: int = 0
    launch_fail_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    hang_rate: float = 0.0
    worker_kill_rate: float = 0.0
    sandbox_hang_rate: float = 0.0
    corrupt_mode: str = "nan"
    hang_seconds: float = 0.2
    only_partitions: Optional[FrozenSet[int]] = None
    only_sms: Optional[FrozenSet[int]] = None

    def __post_init__(self) -> None:
        for name in ("launch_fail_rate", "corrupt_rate",
                     "truncate_rate", "hang_rate",
                     "worker_kill_rate", "sandbox_hang_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.corrupt_mode not in ("nan", "bitflip"):
            raise ValueError(
                f"corrupt_mode must be 'nan' or 'bitflip', "
                f"got {self.corrupt_mode!r}"
            )

    @property
    def any_faults(self) -> bool:
        """Does this plan inject anything at all?"""
        return (
            self.launch_fail_rate > 0.0
            or self.corrupt_rate > 0.0
            or self.truncate_rate > 0.0
            or self.hang_rate > 0.0
            or self.worker_kill_rate > 0.0
            or self.sandbox_hang_rate > 0.0
        )


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-site faults.

    Decisions are pure functions of ``(seed, kind, site)`` — two
    injectors with the same plan walking the same workload make the
    same calls in the same order and therefore build identical logs.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Every fault actually injected, in injection order.
        self.log: List[FaultEvent] = []

    # -- deterministic dice --------------------------------------------------

    def _digest(self, kind: str, site: FaultSite, extra: str = "") -> bytes:
        text = f"{self.plan.seed}|{kind}|{site.tokens()}|{extra}"
        return hashlib.sha256(text.encode("utf-8")).digest()

    def _uniform(self, kind: str, site: FaultSite, extra: str = "") -> float:
        value = int.from_bytes(self._digest(kind, site, extra)[:8], "big")
        return value / float(1 << 64)

    def _enabled(self, site: FaultSite) -> bool:
        plan = self.plan
        if (
            plan.only_partitions is not None
            and site.partition not in plan.only_partitions
        ):
            return False
        if plan.only_sms is not None and site.sm not in plan.only_sms:
            return False
        return True

    def _record(self, kind: str, site: FaultSite, detail: str = "") -> None:
        self.log.append(FaultEvent(kind, site, detail))

    # -- injection points ----------------------------------------------------

    def check_launch(self, site: FaultSite) -> None:
        """Raise :class:`LaunchFault` when this launch is doomed."""
        rate = self.plan.launch_fail_rate
        if rate <= 0.0 or not self._enabled(site):
            return
        if self._uniform("launch", site) < rate:
            self._record("launch", site)
            raise LaunchFault(
                f"injected launch failure at {site.tokens()}", site
            )

    def check_transfer(self, site: FaultSite) -> None:
        """Raise :class:`TransferFault` when the copy-back truncates."""
        rate = self.plan.truncate_rate
        if rate <= 0.0 or not self._enabled(site):
            return
        if self._uniform("transfer", site) < rate:
            self._record("transfer", site)
            raise TransferFault(
                f"injected transfer truncation at {site.tokens()}", site
            )

    def sandbox_fault(self, site: FaultSite) -> Optional[dict]:
        """The fault directive for one *sandboxed* launch, or None.

        Returns ``{"kind": "kill"}`` (the worker SIGKILLs itself
        mid-launch) or ``{"kind": "hang", "seconds": s}`` (the worker
        wedges until the parent watchdog kills it). Only launches
        dispatched through the native sandbox consult this — the
        directive travels inside the pipe request, so the failure is
        a *real* process death, not a simulated exception.
        """
        plan = self.plan
        if not self._enabled(site):
            return None
        kill = plan.worker_kill_rate
        if kill > 0.0 and self._uniform("worker-kill", site) < kill:
            self._record("worker-kill", site)
            return {"kind": "kill"}
        hang = plan.sandbox_hang_rate
        if hang > 0.0 and self._uniform("sandbox-hang", site) < hang:
            self._record("sandbox-hang", site)
            return {"kind": "hang", "seconds": plan.hang_seconds}
        return None

    def hang_delay(self, site: FaultSite) -> float:
        """Seconds this kernel will wedge for (0.0 = healthy)."""
        rate = self.plan.hang_rate
        if rate <= 0.0 or not self._enabled(site):
            return 0.0
        if self._uniform("hang", site) < rate:
            self._record("hang", site)
            return self.plan.hang_seconds
        return 0.0

    def corrupt_cells(
        self,
        table: np.ndarray,
        schedule,
        partition_lo: int,
        partition_hi: int,
        site: FaultSite,
    ) -> List[tuple]:
        """Corrupt cells whose partition lies in the launched range.

        Each cell of the range independently corrupts with probability
        ``corrupt_rate`` (realised through a seeded RNG, so the victim
        set is a pure function of the site). Returns the corrupted
        coordinates; damage follows ``corrupt_mode``.

        Lane-batched tables carry a leading problem axis
        (``table.ndim == len(schedule.dims) + 1``): the batch index is
        not a schedule dimension, so the partition of a cell is
        computed from its trailing (space) coordinates only — every
        problem row of the batch is equally at risk.
        """
        plan = self.plan
        if plan.corrupt_rate <= 0.0 or not self._enabled(site):
            return []
        rng = random.Random(self._digest("memory", site))
        span = max(1, partition_hi - partition_lo + 1)
        batched = table.ndim == len(schedule.dims) + 1
        space_shape = table.shape[1:] if batched else table.shape
        extents = dict(zip(schedule.dims, space_shape))
        num_partitions = schedule.span(extents) + 1
        expected = plan.corrupt_rate * table.size * span / num_partitions
        count = int(expected)
        if rng.random() < expected - count:
            count += 1
        victims: List[tuple] = []
        seen = set()
        flat_extent = table.size
        for _ in range(count):
            for _try in range(64):
                flat = rng.randrange(flat_extent)
                # A cell corrupts at most once per event: a repeat
                # bit-flip would cancel itself out.
                if flat in seen:
                    continue
                coords = np.unravel_index(flat, table.shape)
                space = coords[1:] if batched else coords
                partition = schedule.partition_of(
                    [int(c) for c in space]
                )
                if partition_lo <= partition <= partition_hi:
                    seen.add(flat)
                    self._damage(table, coords)
                    victims.append(tuple(int(c) for c in coords))
                    self._record(
                        "memory", site, detail=f"cell={coords}"
                    )
                    break
        return victims

    def corrupt_staged(
        self, staged: dict, partition: int, problem: int = 0
    ) -> List[tuple]:
        """Lock-step variant: corrupt a partition's staged writes.

        Called by :class:`~repro.gpu.executor.LockStepExecutor` at the
        barrier, before the partition's writes commit. Values become
        NaN (the semantic executor works on Python floats).
        """
        plan = self.plan
        if plan.corrupt_rate <= 0.0:
            return []
        victims: List[tuple] = []
        site = FaultSite(problem, partition, sm=0, attempt=0,
                         stage="memory")
        if not self._enabled(site):
            return []
        for cell in sorted(staged):
            if self._uniform("memory", site, extra=str(cell)) \
                    < plan.corrupt_rate:
                staged[cell] = float("nan")
                victims.append(cell)
                self._record("memory", site, detail=f"cell={cell}")
        return victims

    # -- damage patterns -----------------------------------------------------

    def _damage(self, table: np.ndarray, coords) -> None:
        if table.dtype.kind == "f" and self.plan.corrupt_mode == "nan":
            table[coords] = np.nan
            return
        # Bit-flip: flip a high bit of the raw 64-bit word. For floats
        # this lands in the exponent (a silently huge/tiny value), for
        # ints in the magnitude — either way a wrong-but-plausible
        # payload that only verification can catch.
        view = table.view(np.int64)
        view[coords] = int(view[coords]) ^ (1 << 52)
