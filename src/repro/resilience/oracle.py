"""Cross-backend divergence oracle.

When the supervisor detects a suspect partition range (replay
verification disagreed, or a scan found poisoned cells), two causes
are possible: the simulated hardware corrupted the result
(transient — recover and move on), or the generated code is wrong
(deterministic — a compiler bug that no amount of retrying fixes).

The oracle separates them the only way that works: re-execute the
range *cleanly* (no injection) on the primary backend **and** on an
independent reference backend, from the same pre-epoch checkpoint.

* clean primary == reference  -> the earlier mismatch was injected
  corruption; the clean result is the recovery value;
* clean primary != reference  -> the divergence is deterministic:
  raise :class:`~repro.lang.errors.BackendDivergenceError`, which is
  a :class:`~repro.lang.errors.DslError` and therefore *never
  retried* by the serving layer.

Reference choice: a vector-compiled kernel is checked against the
scalar Python backend (genuinely different generated code); a
native-compiled kernel against the vector backend when eligible, else
scalar (either way it is independent code *and* an independent
evaluator — machine code vs the Python interpreter); a scalar kernel
is checked against the vector backend when the kernel is eligible,
else against a fresh re-exec of its own source (which still catches
nondeterministic state corruption, though not a deterministic
scalar-codegen bug — noted in the classification).

Agreement uses the shared cross-backend tolerance policy of
:mod:`repro.runtime.parity` (re-exported here as ``tables_agree``
for backwards compatibility).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..lang.errors import BackendDivergenceError
from ..runtime.parity import tables_agree

__all__ = ["DivergenceOracle", "tables_agree"]


class DivergenceOracle:
    """Re-executes suspect partition ranges on a reference backend."""

    def __init__(self) -> None:
        #: compiled-kernel id -> (compiled, (backend name, callable)).
        #: The compiled object itself is pinned in the cache: a bare
        #: id() key outlives its object, and CPython reuses freed
        #: addresses, so a long-lived oracle would otherwise hand a
        #: later kernel the reference runner compiled for an earlier
        #: one (found by the differential fuzzer as a KeyError on a
        #: bound parameter the stale runner expected).
        self._references: Dict[
            int, Tuple[object, Tuple[str, Optional[Callable]]]
        ] = {}
        #: Clean re-executions performed (accounting).
        self.runs = 0

    # -- reference selection -------------------------------------------------

    def reference_for(self, compiled) -> Tuple[str, Optional[Callable]]:
        """The independent runner for ``compiled`` (cached).

        Returns ``(backend_name, callable)``; the callable is ``None``
        when no truly independent backend exists for this kernel (the
        caller then falls back to clean primary re-execution only).
        """
        key = id(compiled)
        cached = self._references.get(key)
        if cached is not None and cached[0] is compiled:
            return cached[1]
        from ..ir import npbackend
        from ..ir.pybackend import compile_kernel

        kernel = compiled.kernel
        custom = getattr(compiled, "reference_run", None)
        if custom is not None:
            # Compiled-like wrappers (the lane-batched launch) supply
            # their own independent replay — scalar per member.
            reference = ("scalar", custom)
            self._references[key] = (compiled, reference)
            return reference
        backend = getattr(compiled, "backend", "scalar")
        if backend == "vector":
            run, _source = compile_kernel(kernel)
            reference: Tuple[str, Optional[Callable]] = ("scalar", run)
        elif backend == "native":
            # Machine code vs the Python interpreter: any rung of the
            # Python side is independent. Prefer vector (different
            # generated code *and* a different float library path —
            # the parity policy's tolerance absorbs the ulp spread).
            if npbackend.eligible(kernel):
                run, _source = npbackend.compile_vector_kernel(kernel)
                reference = ("vector", run)
            else:
                run, _source = compile_kernel(kernel)
                reference = ("scalar", run)
        elif npbackend.eligible(kernel):
            run, _source = npbackend.compile_vector_kernel(kernel)
            reference = ("vector", run)
        else:
            reference = ("none", None)
        self._references[key] = (compiled, reference)
        return reference

    # -- classification ------------------------------------------------------

    def classify(
        self,
        compiled,
        ctx: dict,
        base: np.ndarray,
        partition_lo: int,
        partition_hi: int,
        suspect: Optional[np.ndarray] = None,
    ) -> Tuple[str, np.ndarray]:
        """Re-execute ``[partition_lo, partition_hi]`` cleanly.

        Returns ``(verdict, recovered)`` where ``verdict`` is
        ``"clean"`` (the suspect actually matches the clean primary),
        ``"corruption"`` (suspect wrong, backends agree) or
        ``"unverified"`` (no independent backend; primary is at least
        self-consistent). Raises
        :class:`~repro.lang.errors.BackendDivergenceError` when the
        backends deterministically disagree.
        """
        primary = base.copy()
        compiled.run(
            primary, ctx, part_lo=partition_lo, part_hi=partition_hi
        )
        self.runs += 1
        name, reference_run = self.reference_for(compiled)
        if reference_run is None:
            check = base.copy()
            compiled.run(
                check, ctx, part_lo=partition_lo, part_hi=partition_hi
            )
            self.runs += 1
            if primary.tobytes() != check.tobytes():
                raise BackendDivergenceError(
                    f"kernel {compiled.kernel.name!r}: two clean "
                    f"executions of partitions "
                    f"[{partition_lo}, {partition_hi}] disagree — "
                    f"the backend is nondeterministic"
                )
            verdict = "unverified"
        else:
            reference = base.copy()
            reference_run(
                reference, ctx,
                part_lo=partition_lo, part_hi=partition_hi,
            )
            self.runs += 1
            if not tables_agree(primary, reference):
                raise BackendDivergenceError(
                    f"kernel {compiled.kernel.name!r}: "
                    f"{compiled.backend} and {name} backends disagree "
                    f"on partitions [{partition_lo}, {partition_hi}] "
                    f"after clean re-execution — this is a compiler "
                    f"bug, not device corruption"
                )
            verdict = "corruption"
        if suspect is not None and suspect.tobytes() == primary.tobytes():
            verdict = "clean"
        return verdict, primary
