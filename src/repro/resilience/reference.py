"""The serial reference path: last resort of graceful degradation.

When a job keeps hitting device faults past every retry and replay
budget, the serving layer stops trusting the simulated device
entirely and *demotes* the job to the memoised recursive interpreter
(the paper's "implicit method of evaluation", Section 2) — no
kernels, no device, no injection surface. Slow, but it always
terminates with the semantically-correct answer, which for a
production service beats failing the request.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..runtime.interpreter import memoised
from ..runtime.values import Bindings


def serial_reference_run(
    func,
    bindings: Mapping[str, object],
    at: Optional[Mapping[str, int]] = None,
    initial: Optional[Dict[str, int]] = None,
    reduce: Optional[str] = None,
) -> object:
    """Solve one problem with the memoised interpreter.

    Mirrors :meth:`~repro.runtime.engine.Engine.run`'s result
    extraction (default coordinates per dimension kind, or a
    whole-table ``max``/``min`` reduction) so a demoted job returns
    the same value shape the engine would have produced. Interpreter
    semantics are direct-space — the match is exact for integer
    kernels and direct-mode probability kernels (the service
    default).
    """
    from ..runtime.engine import Engine

    engine = Engine()  # coordinate/domain helpers only; nothing runs on it
    bound = Bindings(dict(bindings))
    domain = engine.domain_of(func, bound, initial)
    call = memoised(func, bound)
    if reduce is not None:
        if reduce not in ("max", "min"):
            from ..lang.errors import RuntimeDslError

            raise RuntimeDslError(f"unknown reduction {reduce!r}")
        pick = max if reduce == "max" else min
        best = None
        for point in domain.points():
            value = call(tuple(point))
            best = value if best is None else pick(best, value)
        return best
    coords = engine.result_coords(func, bound, domain, at, initial)
    return call(coords)
