"""The supervised, checkpointed execution layer.

:class:`ExecutionSupervisor` wraps an
:class:`~repro.runtime.engine.Engine` and exposes the same
``run``/``map_run`` surface, but executes each problem *epoch by
epoch* — an epoch being a bounded range of schedule partitions, the
natural consistency points of the paper's time loop (Fig. 9):

* before an epoch, the committed table state is the checkpoint;
* the epoch runs as a partition-range launch
  (``compiled.run(T, ctx, part_lo, part_hi)``) under an optional
  watchdog deadline;
* fault detection: launch/transfer faults surface as exceptions from
  the injection plane (or real infrastructure), hangs trip the
  watchdog, poisoned cells are caught by a NaN scan, and silent
  bit-flips by replay verification (the epoch runs twice from the
  same checkpoint and must agree bitwise);
* recovery restores the checkpoint and replays *only the failed
  partition range* — earlier epochs are never recomputed;
* a detected corruption consults the
  :class:`~repro.resilience.oracle.DivergenceOracle`, which separates
  injected/transient damage from genuine compiler bugs
  (:class:`~repro.lang.errors.BackendDivergenceError`, permanent);
* a range that keeps faulting past ``max_replays`` escalates with
  :class:`~repro.resilience.faults.FaultEscalation` so the serving
  layer can retry the whole batch or demote to the serial reference
  interpreter.

Because recovery always re-derives cell values from a clean replay,
the final tables are bitwise-identical to a fault-free execution.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence as Seq, Tuple

import numpy as np

from ..gpu.device import ProblemCost
from ..gpu.timing import kernel_cost, problems_per_sm
from ..runtime.values import Bindings
from .checkpoint import CheckpointLog, partition_ranges
from .faults import (
    CellCorruption,
    DeviceFault,
    FaultEscalation,
    FaultInjector,
    FaultPlan,
    FaultSite,
    KernelHang,
)
from .oracle import DivergenceOracle


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervised execution layer.

    ``checkpoint_interval`` is the epoch size in partitions (the
    recovery granularity: smaller = cheaper replays, more snapshot
    copies). ``verify`` picks the corruption detector: ``"scan"``
    (NaN scan only — catches poison, misses silent bit-flips),
    ``"replay"`` (every epoch executes twice and must agree bitwise),
    ``"off"``, or ``"auto"`` (replay when the fault plan can corrupt
    cells, scan otherwise). ``watchdog_seconds`` bounds one epoch's
    wall time; ``None`` disables the watchdog unless the plan injects
    hangs.
    """

    checkpoint_interval: int = 8
    max_replays: int = 8
    watchdog_seconds: Optional[float] = None
    verify: str = "auto"
    use_oracle: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.max_replays < 0:
            raise ValueError("max_replays must be >= 0")
        if self.verify not in ("auto", "scan", "replay", "off"):
            raise ValueError(f"unknown verify mode {self.verify!r}")


@dataclass
class SupervisorStats:
    """Launch accounting of one supervisor (the recovery audit trail).

    ``launches``/``partitions_launched`` count every epoch attempt,
    including verification legs and replays;
    ``partitions_verified`` counts just the verification legs (the
    second execution of each round in replay-verify mode);
    ``epochs_committed``/``partitions_committed`` count each epoch
    once. The books must balance:

        partitions_launched - partitions_committed
            - partitions_verified  ==  sum of replayed_ranges widths

    i.e. every partition launched beyond commit + verification belongs
    to a faulted range that was replayed — recovery never re-ran a
    clean epoch. Ranges a corruption verdict recovered through the
    oracle (whose clean re-executions are counted in ``oracle_runs``,
    not in ``partitions_launched``) are itemised separately in
    ``recovered_ranges``.
    """

    problems: int = 0
    launches: int = 0
    partitions_launched: int = 0
    partitions_verified: int = 0
    epochs_committed: int = 0
    partitions_committed: int = 0
    replays: int = 0
    corruption_recovered: int = 0
    oracle_runs: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    replayed_ranges: List[Tuple[int, int, int]] = field(
        default_factory=list
    )
    recovered_ranges: List[Tuple[int, int, int]] = field(
        default_factory=list
    )

    def note_fault(self, fault: DeviceFault) -> None:
        """Count one detected fault under its exception class name."""
        name = type(fault).__name__
        self.faults[name] = self.faults.get(name, 0) + 1

    @property
    def total_faults(self) -> int:
        """Detected faults of every kind, summed."""
        return sum(self.faults.values())


class ExecutionSupervisor:
    """Supervised ``run``/``map_run`` with checkpointed recovery.

    Drop-in for an engine wherever only ``run``/``map_run`` (and
    read-only engine attributes, via delegation) are used — the
    worker pool hands batches to either interchangeably.
    """

    def __init__(
        self,
        engine=None,
        plan: Optional[FaultPlan] = None,
        policy: Optional[SupervisionPolicy] = None,
        injector: Optional[FaultInjector] = None,
        on_fault=None,
    ) -> None:
        if engine is None:
            from ..runtime.engine import Engine

            engine = Engine()
        self.engine = engine
        self.policy = policy or SupervisionPolicy()
        if injector is None and plan is not None:
            injector = FaultInjector(plan)
        self.injector = injector
        self.oracle = DivergenceOracle()
        self.stats = SupervisorStats()
        self.checkpoints = CheckpointLog()
        self.on_fault = on_fault
        self._problem_ids = itertools.count()
        #: kernel digest -> demoted CompiledKernel (vector/scalar),
        #: built at most once per crashing kernel.
        self._demoted: Dict[str, object] = {}

        plan = injector.plan if injector is not None else None
        verify = self.policy.verify
        if verify == "auto":
            verify = (
                "replay"
                if plan is not None and plan.corrupt_rate > 0.0
                else "scan"
            )
        self._verify = verify
        watchdog = self.policy.watchdog_seconds
        if watchdog is None and plan is not None and (
            plan.hang_rate > 0 or plan.sandbox_hang_rate > 0
        ):
            watchdog = max(0.02, plan.hang_seconds / 4.0)
        self._watchdog = watchdog

    def __getattr__(self, name: str):
        # Everything we don't supervise (cache_info, spec, compile,
        # ...) falls through to the wrapped engine.
        return getattr(self.engine, name)

    # -- public surface ------------------------------------------------------

    def run(
        self,
        func,
        bindings: Mapping[str, object],
        at: Optional[Mapping[str, int]] = None,
        initial: Optional[Dict[str, int]] = None,
        user_schedule=None,
        use_window: bool = True,
        reduce: Optional[str] = None,
    ):
        """Supervised twin of :meth:`Engine.run`."""
        from ..runtime.engine import RunResult

        engine = self.engine
        bound = Bindings(dict(bindings))
        domain = engine.domain_of(func, bound, initial)
        schedule = engine.schedule_for(func, domain, user_schedule)
        compiled = engine.compile(func, schedule)
        ctx = engine.build_context(compiled, bound, domain)
        table = engine._table_for(compiled.kernel, domain)
        self._execute_supervised(compiled, ctx, domain, table)

        cost = kernel_cost(
            compiled.kernel,
            domain,
            engine.spec,
            mean_degree=engine.mean_degree(func, bound),
            use_window=use_window,
        )
        problem = ProblemCost(
            cost.seconds,
            bytes_in=engine._problem_bytes(domain, bound),
            packing=problems_per_sm(
                compiled.kernel, domain, engine.spec
            ),
        )
        report = engine.device.launch([problem])
        coords = engine.result_coords(func, bound, domain, at, initial)
        value = engine._extract(compiled.kernel, table, coords, reduce)
        return RunResult(
            value, table, compiled.kernel, domain, cost, report
        )

    def map_run(
        self,
        func,
        base_bindings: Mapping[str, object],
        problems: Seq[Mapping[str, object]],
        at: Optional[Mapping[str, int]] = None,
        initial: Optional[Dict[str, int]] = None,
        use_window: bool = True,
        reduce: Optional[str] = None,
        parallelism: str = "intra",
        hybrid_threshold: Optional[int] = None,
        execute: bool = True,
    ):
        """Supervised twin of :meth:`Engine.map_run`.

        Only executing intra-task runs are supervised (the service
        path); pricing-only sweeps and inter/hybrid accounting modes
        pass straight through to the engine.
        """
        from ..runtime.engine import MapResult

        if not execute or parallelism != "intra":
            return self.engine.map_run(
                func, base_bindings, problems,
                at=at, initial=initial, use_window=use_window,
                reduce=reduce, parallelism=parallelism,
                hybrid_threshold=hybrid_threshold, execute=execute,
            )
        engine = self.engine
        prepared, costs, usage, problem_costs = engine.prepare_map(
            func, base_bindings, problems,
            initial=initial, use_window=use_window,
        )
        values: List[object] = [None] * len(prepared)

        def extract(index: int, compiled, table) -> None:
            bound, domain, _ = prepared[index]
            coords = (
                None
                if reduce
                else engine.result_coords(func, bound, domain, at,
                                          initial)
            )
            values[index] = engine._extract(
                compiled.kernel, table, coords, reduce
            )

        # Lane-batched groups are supervised as *single* launches: one
        # checkpoint stream over the padded batch table, with epoch
        # ranges from the padded domain (a superset of every member's;
        # the batched kernel clamps internally, so an epoch outside a
        # member's range is a no-op for it). Replay, verification and
        # oracle recovery therefore apply to the whole batch at once.
        batch_groups: List[List[int]] = []
        batched: set = set()
        if getattr(engine, "batching", False) and len(prepared) > 1:
            from ..runtime.batching import (
                BatchedLaunch,
                pack_group,
                plan_batches,
            )

            batch_groups = plan_batches(prepared)
            batched = {
                index for group in batch_groups for index in group
            }
        for group in batch_groups:
            compiled = prepared[group[0]][2]
            members = [
                (prepared[i][0], prepared[i][1]) for i in group
            ]
            packed = pack_group(compiled, members, indices=group)
            launch = BatchedLaunch(packed)
            self._execute_supervised(
                launch, packed.ctx, packed.padded_domain, packed.table
            )
            # One supervised launch, ``len(group)`` logical problems.
            self.stats.problems += len(group) - 1
            for slot, index in enumerate(group):
                extract(index, compiled, packed.member_view(slot))
        for index, (bound, domain, compiled) in enumerate(prepared):
            if index in batched:
                continue
            ctx = engine.build_context(compiled, bound, domain)
            table = engine._table_for(compiled.kernel, domain)
            self._execute_supervised(compiled, ctx, domain, table)
            extract(index, compiled, table)
        report = engine.device.launch(problem_costs)
        return MapResult(
            values, report, usage, costs, "intra",
            lane_batches=len(batch_groups),
            lane_batched_problems=len(batched),
        )

    # -- supervised execution ------------------------------------------------

    def _execute_supervised(
        self, compiled, ctx: dict, domain, table: np.ndarray
    ) -> np.ndarray:
        """Fill ``table`` epoch by epoch with checkpointed recovery."""
        problem = next(self._problem_ids)
        self.stats.problems += 1
        schedule = compiled.schedule
        p_lo = schedule.min_partition(domain)
        p_hi = schedule.max_partition(domain)
        sm = problem % self.engine.spec.sm_count
        state = table
        for elo, ehi in partition_ranges(
            p_lo, p_hi, self.policy.checkpoint_interval
        ):
            # ``compiled`` can change mid-problem: a sandboxed native
            # kernel whose circuit breaker opens is swapped for its
            # demoted (vector/scalar) twin, and later epochs keep
            # using the demoted rung.
            state, compiled = self._run_epoch(
                compiled, ctx, state, elo, ehi, problem, sm
            )
            self.stats.epochs_committed += 1
            self.stats.partitions_committed += ehi - elo + 1
            self.checkpoints.record(problem, elo, ehi, state)
        if state is not table:
            np.copyto(table, state)
        return table

    def _run_epoch(
        self,
        compiled,
        ctx: dict,
        base: np.ndarray,
        elo: int,
        ehi: int,
        problem: int,
        sm: int,
    ) -> Tuple[np.ndarray, object]:
        """One epoch to a committed state, replaying on faults.

        Returns ``(state, compiled)`` — the compiled kernel may have
        been swapped for its demoted twin when the sandbox circuit
        breaker opened mid-epoch.
        """
        attempts = itertools.count()
        for round_index in range(self.policy.max_replays + 1):
            try:
                scratch = self._attempt(
                    compiled, ctx, base, elo, ehi, problem, sm,
                    next(attempts),
                )
                if self._verify == "replay":
                    self.stats.partitions_verified += ehi - elo + 1
                    again = self._attempt(
                        compiled, ctx, base, elo, ehi, problem, sm,
                        next(attempts),
                    )
                    if scratch.tobytes() != again.tobytes():
                        raise CellCorruption(
                            f"replay verification mismatch on "
                            f"partitions [{elo}, {ehi}]",
                            FaultSite(problem, elo, sm, round_index,
                                      "memory"),
                        )
                return scratch, compiled
            except DeviceFault as fault:
                self.stats.note_fault(fault)
                if self.on_fault is not None:
                    self.on_fault(fault)
                if (
                    isinstance(fault, CellCorruption)
                    and self.policy.use_oracle
                ):
                    # The oracle replays the range cleanly on two
                    # backends: recovery value on agreement, a
                    # permanent BackendDivergenceError otherwise.
                    self.stats.recovered_ranges.append(
                        (problem, elo, ehi)
                    )
                    verdict, recovered = self.oracle.classify(
                        compiled, ctx, base, elo, ehi
                    )
                    self.stats.oracle_runs = self.oracle.runs
                    self.stats.corruption_recovered += 1
                    return recovered, compiled
                # A sandboxed kernel whose breaker opened keeps
                # raising "circuit open" on every replay — burning
                # the budget can only end in escalation. Re-resolve
                # down the ladder instead and replay there.
                compiled = self._demote_if_circuit_open(compiled)
                self.stats.replays += 1
                self.stats.replayed_ranges.append((problem, elo, ehi))
        raise FaultEscalation(
            f"partitions [{elo}, {ehi}] of problem {problem} still "
            f"faulting after {self.policy.max_replays} replays",
            FaultSite(problem, elo, sm, self.policy.max_replays,
                      "kernel"),
        )

    def _demote_if_circuit_open(self, compiled):
        """Swap a circuit-broken sandboxed kernel for its demoted twin.

        Lane-batched launches carry their own rung ladder: they
        expose ``demote_if_circuit_open()`` (native-batched →
        vector-batched → scalar sweep, same object), so the launch
        keeps its single-launch shape through the demotion and the
        replay simply reruns it on the lower rung. No-op for
        everything else (plain kernels, a sandboxed kernel whose
        breaker is still closed — a transient crash there is retried
        on native as usual).
        """
        demote = getattr(compiled, "demote_if_circuit_open", None)
        if demote is not None:
            if demote():
                engine = self.engine
                engine.native_demotions = (
                    getattr(engine, "native_demotions", 0) + 1
                )
            return compiled
        run = getattr(compiled, "run", None)
        if not getattr(run, "sandboxed", False):
            return compiled
        from ..runtime import sandbox as sandbox_rt

        if sandbox_rt.get_breaker().allows(run.digest):
            return compiled
        demoted = self._demoted.get(run.digest)
        if demoted is None:
            from ..ir import npbackend
            from ..ir.pybackend import compile_kernel
            from ..runtime.engine import CompiledKernel

            kernel = compiled.kernel
            backend = self.engine._auto_choice(
                kernel, npbackend.eligibility(kernel).ok,
                None, allow_native=False,
            )
            if backend == "vector":
                run_fn, source = npbackend.compile_vector_kernel(kernel)
            else:
                run_fn, source = compile_kernel(kernel)
            demoted = CompiledKernel(
                kernel, run_fn, source, 0.0, backend=backend
            )
            self._demoted[run.digest] = demoted
        engine = self.engine
        engine.native_demotions = (
            getattr(engine, "native_demotions", 0) + 1
        )
        return demoted

    def _attempt(
        self,
        compiled,
        ctx: dict,
        base: np.ndarray,
        elo: int,
        ehi: int,
        problem: int,
        sm: int,
        attempt: int,
    ) -> np.ndarray:
        """One launch of partitions ``[elo, ehi]`` from the checkpoint."""
        site = FaultSite(problem, elo, sm, attempt, "launch")
        self.stats.launches += 1
        self.stats.partitions_launched += ehi - elo + 1
        injector = self.injector
        if injector is not None:
            injector.check_launch(site)
        scratch = base.copy()
        self._run_range(compiled, scratch, ctx, elo, ehi, site)
        if injector is not None:
            injector.check_transfer(
                FaultSite(problem, elo, sm, attempt, "transfer")
            )
            injector.corrupt_cells(
                scratch, compiled.schedule, elo, ehi,
                FaultSite(problem, elo, sm, attempt, "memory"),
            )
        if (
            self._verify in ("scan", "replay")
            and scratch.dtype.kind == "f"
            and bool(np.isnan(scratch).any())
        ):
            raise CellCorruption(
                f"NaN cells detected in partitions [{elo}, {ehi}]",
                FaultSite(problem, elo, sm, attempt, "memory"),
            )
        return scratch

    def _run_range(
        self,
        compiled,
        scratch: np.ndarray,
        ctx: dict,
        elo: int,
        ehi: int,
        site: FaultSite,
    ) -> None:
        """Execute the partition range, under the watchdog if set."""
        injector = self.injector
        hang = (
            injector.hang_delay(site) if injector is not None else 0.0
        )
        deadline = self._watchdog
        if getattr(compiled.run, "sandboxed", False):
            # Sandboxed native launch: the subprocess pool *is* the
            # watchdog (a wedged worker gets SIGKILLed for real, no
            # thread is left behind), so hang injection routes
            # through the worker as a fault directive instead of a
            # parent-side sleep. Kill/hang directives come from the
            # injection plane; WorkerCrash / SandboxHang surface as
            # DeviceFaults and replay like any other launch fault.
            fault = (
                injector.sandbox_fault(site)
                if injector is not None
                else None
            )
            if fault is None and hang > 0.0:
                fault = {"kind": "hang", "seconds": hang}
            compiled.run(
                scratch, ctx, part_lo=elo, part_hi=ehi,
                fault=fault, deadline=deadline,
            )
            return
        if deadline is None:
            if hang > 0.0:
                # No watchdog configured: surface the wedge directly
                # rather than blocking the worker forever.
                raise KernelHang(
                    f"kernel wedged on partitions [{elo}, {ehi}] "
                    f"(no watchdog configured)", site
                )
            compiled.run(scratch, ctx, part_lo=elo, part_hi=ehi)
            return

        done = threading.Event()
        cancel = threading.Event()
        failure: List[BaseException] = []

        def body() -> None:
            try:
                # The injected wedge the watchdog catches. A
                # cancellable wait, not a sleep: when the watchdog
                # fires it sets ``cancel`` and this thread exits
                # promptly instead of leaking for ``hang`` seconds.
                if hang > 0.0 and cancel.wait(hang):
                    return
                compiled.run(scratch, ctx, part_lo=elo, part_hi=ehi)
            except BaseException as err:  # noqa: BLE001 - relayed
                failure.append(err)
            finally:
                done.set()

        thread = threading.Thread(
            target=body, name="repro-epoch", daemon=True
        )
        thread.start()
        if not done.wait(deadline):
            # Abandon the wedged launch; it ran on its own scratch
            # copy of the checkpoint, so the committed state is safe.
            # Cancelling the injected wedge lets the thread unwind
            # now (a *real* runaway launch still needs the sandbox —
            # only a subprocess can be killed for real).
            cancel.set()
            raise KernelHang(
                f"watchdog: partitions [{elo}, {ehi}] exceeded "
                f"{deadline}s", site
            )
        if failure:
            raise failure[0]
