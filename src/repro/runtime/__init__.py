"""Runtime: values, interpretation, tabulation, the Engine, scripts."""

from .engine import CompiledKernel, Engine, MapResult, RunResult
from .interpreter import Evaluator, domain_extents, memoised
from .sequences import (
    parse_fasta,
    random_database,
    random_dna,
    random_protein,
    read_fasta,
    write_fasta,
)
from .mutual import (
    MutualLockStep,
    MutualResult,
    MutualTabulator,
    solve_mutual,
)
from .tabulate import tabulate
from .values import (
    DNA,
    ENGLISH,
    PROTEIN,
    Alphabet,
    Bindings,
    Sequence,
    make_sequences,
)

__all__ = [
    "CompiledKernel",
    "Engine",
    "MapResult",
    "RunResult",
    "Evaluator",
    "domain_extents",
    "memoised",
    "parse_fasta",
    "random_database",
    "random_dna",
    "random_protein",
    "read_fasta",
    "write_fasta",
    "tabulate",
    "MutualLockStep",
    "MutualResult",
    "MutualTabulator",
    "solve_mutual",
    "DNA",
    "ENGLISH",
    "PROTEIN",
    "Alphabet",
    "Bindings",
    "Sequence",
    "make_sequences",
]
