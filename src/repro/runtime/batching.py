"""Lane-batched ``map`` execution: many problems, one vectorised sweep.

A ``map`` workload compiles every problem against the same few
kernels; executing them one launch at a time leaves the vector
backend's lanes half-idle and pays the Python interpreter overhead
per problem. This module packs same-kernel problems into a single
table with a leading problem axis — ``(B, d0max, d1max)``, padded to
the largest member domain — and runs the whole batch through the
batched codegen variant (:func:`repro.ir.npbackend.emit_batched_source`)
as *one* sweep: the functional analogue of the paper's inter-task
parallelism (Section 6.1), where small problems share the device
instead of queueing behind each other.

Grouping (:func:`plan_batches`) is deliberately conservative: two
problems batch only when they share the *same compiled kernel object*
(same function, schedule, probability mode and backend — the engine's
kernel cache already canonicalises this) on a batchable backend, and
the same model/matrix binding objects (those context arrays are
shared across the batch, not packed per problem). Per-problem
quantities — domain bounds, sequences, scalar arguments — are packed
as ``(B, 1)`` columns and padded ``(B, Lmax)`` rows; the generated
kernel masks every store with the problem's own validity, so padding
cells are never written (the unpack step slices each problem back out
of its row).

Two rungs can run a packed group, mirroring the per-problem ladder:

* **native-batched** — the compiled backend's batched entry point
  (:func:`repro.ir.cbackend.native_batched_param_spec`): one
  ``ctypes`` call runs every member's own loop nest, optionally with
  OpenMP across members — emitted only when the parallel-safety
  analyzer proved the members' padded slices disjoint
  (:mod:`repro.verify.races`, rule ``R-BATCH-OVERLAP`` on refusal).
  Bitwise-identical to the per-problem native loop at any thread
  count.
* **vector-batched** — the NumPy batched twin
  (:func:`repro.ir.npbackend.emit_batched_source`), which masks
  per-problem validity lane-wise.

:class:`BatchedLaunch` picks the rung from the group's compiled
backend and degrades gracefully — a failed native batched build (or
an open sandbox circuit breaker) demotes the launch to
vector-batched when the kernel is vector-eligible, else to a scalar
per-member sweep, without losing the single-launch shape the
resilience layer supervises.

:class:`BatchedLaunch` adapts a packed batch to the compiled-kernel
protocol the resilience layer speaks (``run(T, ctx, part_lo,
part_hi)`` + ``schedule``), so the supervisor can checkpoint, replay
and verify a batched launch exactly like a single-problem one; its
``reference_run`` replays every member on the scalar backend for the
divergence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence as Seq, Tuple

import numpy as np

from ..analysis.domain import Domain
from ..ir.kernel import UB_PREFIX
from .context import build_context

#: Smallest group worth packing: a singleton gains nothing over the
#: plain vector path and would only add pad/unpack overhead.
MIN_BATCH = 2

#: Per-problem backends whose map groups have a batched twin.
BATCHABLE_BACKENDS = ("vector", "native")


@dataclass
class PackedBatch:
    """One group of problems packed for a single batched launch."""

    indices: List[int]  # positions in the prepared problem list
    compiled: object  # the shared CompiledKernel
    table: np.ndarray  # (B, d0max, d1max), padded, zero-initialised
    ctx: Dict[str, object]  # batched context (see module doc)
    domains: List[Domain]  # each member's true domain, batch order
    problem_ctxs: List[Dict[str, object]] = field(repr=False,
                                                  default_factory=list)

    @property
    def padded_domain(self) -> Domain:
        """The max-extent domain: its partition range covers every
        member's (the supervisor derives epoch ranges from it)."""
        return Domain(
            self.domains[0].dims, tuple(self.table.shape[1:])
        )

    def member_view(self, slot: int) -> np.ndarray:
        """Problem ``slot``'s own cells of the padded table (a view)."""
        extents = self.domains[slot].extents
        return self.table[slot][tuple(slice(0, e) for e in extents)]


def plan_batches(
    prepared: Seq[Tuple[object, Domain, object]],
    min_batch: int = MIN_BATCH,
) -> List[List[int]]:
    """Group a prepared ``map`` workload into batchable index sets.

    ``prepared`` is the engine's ``(bindings, domain, compiled)``
    list. Problems group when they share the compiled kernel object
    (on a :data:`BATCHABLE_BACKENDS` rung — vector groups run the
    batched NumPy twin, native groups the batched C entry) and the
    identical HMM/matrix binding objects; groups smaller than
    ``min_batch`` are dropped (those problems run the ordinary path).
    Mixed-rung groups cannot arise: the compiled object identity is
    part of the key and already encodes the backend.
    """
    groups: Dict[tuple, List[int]] = {}
    for index, (bound, _domain, compiled) in enumerate(prepared):
        if (
            getattr(compiled, "backend", "scalar")
            not in BATCHABLE_BACKENDS
        ):
            continue
        refs = compiled.kernel.referenced_names()
        shared = tuple(
            id(bound[name])
            for name in sorted(refs["hmms"]) + sorted(refs["matrices"])
        )
        key = (id(compiled), shared)
        groups.setdefault(key, []).append(index)
    return [
        members
        for members in groups.values()
        if len(members) >= min_batch
    ]


def pack_group(
    compiled,
    members: Seq[Tuple[object, Domain]],
    indices: Seq[int] = (),
) -> PackedBatch:
    """Pack ``members`` — ``(bindings, domain)`` pairs — into one batch.

    The table is padded to the largest member extents per dimension;
    bounds (``ub_*``) and scalar arguments (``arg_*``) become
    ``(B, 1)`` columns, sequences become zero-padded ``(B, Lmax)``
    rows (reads past a member's own length land in padding and only
    feed masked-off lanes), and the model/matrix arrays are shared
    verbatim from the first member (grouping guaranteed identity).
    """
    kernel = compiled.kernel
    domains = [domain for _, domain in members]
    rank = len(kernel.dims)
    max_extents = tuple(
        max(domain.extents[axis] for domain in domains)
        for axis in range(rank)
    )
    size = len(members)
    dtype = (
        np.int64 if kernel.body.return_kind == "int" else np.float64
    )
    table = np.zeros((size,) + max_extents, dtype=dtype)
    problem_ctxs = [
        build_context(kernel, bound, domain)
        for bound, domain in members
    ]
    # Shared pieces (mat_*/hmm_*) come from the first member; the
    # per-problem keys below overwrite its scalar/1-D entries.
    ctx: Dict[str, object] = dict(problem_ctxs[0])
    refs = kernel.referenced_names()
    for dim in kernel.dims:
        key = UB_PREFIX + dim
        ctx[key] = np.asarray(
            [[pctx[key]] for pctx in problem_ctxs], dtype=np.int64
        )
    for name in sorted(refs["seqs"]):
        key = f"seq_{name}"
        codes = [np.asarray(pctx[key]) for pctx in problem_ctxs]
        longest = max((len(arr) for arr in codes), default=0)
        packed = np.zeros((size, longest), dtype=np.int64)
        for row, arr in zip(packed, codes):
            row[: len(arr)] = arr
        ctx[key] = packed
    for name in sorted(refs["scalars"]):
        key = f"arg_{name}"
        ctx[key] = np.asarray(
            [pctx[key] for pctx in problem_ctxs]
        ).reshape(size, 1)
    return PackedBatch(
        indices=list(indices) or list(range(size)),
        compiled=compiled,
        table=table,
        ctx=ctx,
        domains=domains,
        problem_ctxs=problem_ctxs,
    )


def batched_native_eligibility(kernel) -> "Eligibility":
    """Why (or why not) map groups of this kernel can run the
    batched-native rung *in this process*: the toolchain must be
    available and the kernel must pass
    :func:`repro.ir.cbackend.batched_eligibility` (named rules —
    ``ok-batched``, ``ok-plain-body``, ``cross-table-read``,
    ``codegen``, ``no-compiler``, ``disabled``)."""
    from ..ir import cbackend
    from . import native as native_rt

    verdict = native_rt.available()
    if not verdict.ok:
        return verdict
    return cbackend.batched_eligibility(kernel)


class BatchedLaunch:
    """A packed batch speaking the compiled-kernel protocol.

    The resilience supervisor only needs ``run(T, ctx, part_lo,
    part_hi)`` plus ``schedule``/``kernel``/``backend`` — this wrapper
    provides them for a whole batch, so checkpointing, replay
    verification and partition-range recovery apply unchanged (the
    epoch ranges come from the padded domain, a superset of every
    member's range; the generated kernel clamps and masks internally,
    so out-of-range epochs are no-ops for the members they miss).

    The launch runs on a **rung** — ``"native"`` (the batched C
    entry, picked when the group compiled native), ``"vector"`` (the
    batched NumPy twin) or ``"scalar"`` (per-member sweep, the floor
    every kernel supports). ``run`` degrades one rung at a time on
    :class:`~repro.lang.errors.NativeBuildError`, and
    :meth:`demote_if_circuit_open` lets the supervisor push an
    already-crashing group off native before a replay.

    ``reference_run`` gives the divergence oracle an independent
    backend: every member replayed on the *scalar* generator over its
    own slice of the padded table.
    """

    def __init__(
        self, batch: PackedBatch, rung: Optional[str] = None
    ) -> None:
        self.batch = batch
        self.compiled = batch.compiled
        if rung is None:
            rung = (
                "native"
                if getattr(self.compiled, "backend", "") == "native"
                else "vector"
            )
        self.rung = rung
        self._scalar_run = None

    @property
    def backend(self) -> str:
        """Backend label for reports/oracles: ``"<rung>-batched"``."""
        return f"{self.rung}-batched"

    @property
    def kernel(self):
        """The shared kernel."""
        return self.compiled.kernel

    @property
    def schedule(self):
        """The shared schedule (epoch ranges derive from it)."""
        return self.compiled.kernel.schedule

    @property
    def source(self) -> str:
        """The batched generated source for the current rung."""
        if self.rung == "native":
            self.compiled.ensure_batched_native()
            return self.compiled.source
        if self.rung == "vector":
            self.compiled.ensure_batched()
            return self.compiled.batched_source
        from ..ir.pybackend import emit_kernel_source

        return emit_kernel_source(self.kernel)

    def demote(self) -> str:
        """Drop one rung: native → vector when the kernel is
        vector-eligible, else (and from vector) → scalar. Returns the
        new rung."""
        if self.rung == "native":
            from ..ir import npbackend

            self.rung = (
                "vector"
                if npbackend.eligibility(self.kernel).ok
                else "scalar"
            )
        else:
            self.rung = "scalar"
        return self.rung

    def demote_if_circuit_open(self) -> bool:
        """Supervisor hook: when the group's kernel has an open
        sandbox circuit breaker, leave the native rung *before* the
        next replay (one batched crash already costs a worker; a
        replay into an open breaker would just crash again)."""
        if self.rung != "native":
            return False
        run = getattr(self.compiled, "batched_native_run", None)
        if run is None:
            run = getattr(self.compiled, "run", None)
        if not getattr(run, "sandboxed", False):
            return False
        from . import sandbox

        if sandbox.get_breaker().allows(run.digest):
            return False
        self.demote()
        return True

    def run(self, table, ctx, part_lo=None, part_hi=None):
        """One batched sweep over the global partition range.

        A native build/load failure is permanent for this process, so
        it demotes the launch (native → vector → scalar) and retries
        on the spot — the table is untouched by a failed build.
        Sandbox *crash* faults are deliberately not caught here: the
        supervisor owns replay-and-demote for those.
        """
        from ..lang.errors import NativeBuildError

        while True:
            if self.rung == "native":
                try:
                    batched = self.compiled.ensure_batched_native()
                except NativeBuildError:
                    self.demote()
                    continue
                return batched(
                    table, ctx, part_lo=part_lo, part_hi=part_hi
                )
            if self.rung == "vector":
                return self.compiled.ensure_batched()(
                    table, ctx, part_lo=part_lo, part_hi=part_hi
                )
            return self._scalar_sweep(table, part_lo, part_hi)

    def _scalar_sweep(self, table, part_lo=None, part_hi=None):
        """Every member on the scalar generator, in its own slice."""
        if self._scalar_run is None:
            from ..ir.pybackend import compile_kernel

            self._scalar_run, _source = compile_kernel(self.kernel)
        for slot, (domain, pctx) in enumerate(
            zip(self.batch.domains, self.batch.problem_ctxs)
        ):
            view = table[slot][
                tuple(slice(0, e) for e in domain.extents)
            ]
            self._scalar_run(
                view, pctx, part_lo=part_lo, part_hi=part_hi
            )
        return table

    def reference_run(self, table, ctx, part_lo=None, part_hi=None):
        """Scalar per-member replay (the oracle's reference backend)."""
        return self._scalar_sweep(table, part_lo, part_hi)
