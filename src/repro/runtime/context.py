"""Device-context preparation, shared by the engines.

A *context* is the dict of arrays/scalars a generated kernel unpacks:
dimension bounds, encoded sequences, matrix tables with their
character-index maps, and the HMM array bundle — the concrete layout
behind Section 3.3's abstract target environment.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.domain import Domain
from ..extensions.hmm import Hmm
from ..extensions.submatrix import SubstitutionMatrix
from ..ir.kernel import Kernel, UB_PREFIX
from ..lang.errors import RuntimeDslError
from .values import Bindings, Sequence


def build_context(
    kernel: Kernel,
    bindings: Bindings,
    domain: Domain,
) -> Dict[str, object]:
    """Materialise the context one kernel expects."""
    ctx: Dict[str, object] = {}
    for dim, extent in zip(domain.dims, domain.extents):
        ctx[UB_PREFIX + dim] = extent - 1
    refs = kernel.referenced_names()
    for name in refs["seqs"]:
        seq = bindings[name]
        if not isinstance(seq, Sequence):
            raise RuntimeDslError(
                f"parameter {name!r} must be a Sequence"
            )
        ctx[f"seq_{name}"] = seq.codes
    for name in refs["scalars"]:
        ctx[f"arg_{name}"] = bindings[name]
    for name in refs["matrices"]:
        matrix = bindings[name]
        if not isinstance(matrix, SubstitutionMatrix):
            raise RuntimeDslError(
                f"parameter {name!r} must be a SubstitutionMatrix"
            )
        ctx[f"mat_{name}"] = matrix.scores
        ctx[f"rowidx_{name}"] = matrix.row_alphabet.index_table()
        ctx[f"colidx_{name}"] = matrix.col_alphabet.index_table()
    for name in refs["hmms"]:
        hmm = bindings[name]
        if not isinstance(hmm, Hmm):
            raise RuntimeDslError(f"parameter {name!r} must be a Hmm")
        arrays = hmm.arrays(logspace=kernel.logspace)
        ctx[f"hmm_{name}_isstart"] = arrays.is_start
        ctx[f"hmm_{name}_isend"] = arrays.is_end
        ctx[f"hmm_{name}_emis"] = arrays.emissions
        ctx[f"hmm_{name}_symidx"] = arrays.sym_index
        ctx[f"hmm_{name}_tprob"] = arrays.trans_prob
        ctx[f"hmm_{name}_tsrc"] = arrays.trans_source
        ctx[f"hmm_{name}_ttgt"] = arrays.trans_target
        ctx[f"hmm_{name}_inoff"] = arrays.in_offsets
        ctx[f"hmm_{name}_inids"] = arrays.in_ids
        ctx[f"hmm_{name}_outoff"] = arrays.out_offsets
        ctx[f"hmm_{name}_outids"] = arrays.out_ids
    return ctx
