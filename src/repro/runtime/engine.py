"""The end-to-end engine: parse -> check -> schedule -> synthesise -> run.

:class:`Engine` is the public entry point of the library. It owns

* the schedule search (automatic, Section 4.6 — or verification of a
  user-provided schedule, Section 4.5);
* kernel compilation (polyhedral nest + lowered cell expression) with
  an LRU-bounded cache keyed by a content hash of (function source
  form, schedule, probability mode, backend) — the paper caches
  generated code per function to amortise the ~1 s CLooG overhead
  (Section 6); pass ``kernel_cache=PersistentKernelCache(dir)`` to
  persist compilation products across processes;
* context preparation (device layout of sequences, matrices, models);
* single-problem runs and ``map`` runs over problem collections with
  conditional parallelisation (Section 4.7);
* the simulated device's functional execution and analytic timing.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence as Seq, Tuple

import numpy as np

from ..analysis.domain import Domain
from ..extensions.hmm import Hmm
from ..gpu.device import ProblemCost, SimulatedDevice, LaunchReport
from ..gpu.spec import DeviceSpec, GTX480
from ..gpu.timing import (
    KernelCost,
    batched_launch_cost,
    inter_task_seconds,
    kernel_cost,
    problems_per_sm,
)
from ..ir.kernel import Kernel, build_kernel
from ..ir.pybackend import compile_kernel
from ..lang import ast
from ..lang.errors import CodegenError, RuntimeDslError, ScheduleError
from ..lang.typecheck import CheckedFunction
from ..lang.types import (
    HmmType,
    IndexType,
    IntType,
    MatrixType,
    SeqType,
    StateType,
    TransitionType,
)
from ..schedule.multi import ScheduleSet, derive_schedule_set
from ..schedule.schedule import Schedule
from ..schedule.solver import DEFAULT_BOUND, find_schedule
from ..service.cache import (
    CacheInfo,
    LRUKernelCache,
    kernel_cache_key,
)
from .interpreter import domain_extents
from .values import Bindings, Sequence

#: Default bound of the engine's in-memory kernel cache.
DEFAULT_CACHE_CAPACITY = 256

#: Below this maximum domain extent, ``backend="auto"`` stops
#: preferring the vector backend over scalar/native: NumPy's per-op
#: dispatch overhead loses to the scalar loop on tiny partitions
#: (BENCH_backend.json measured the crossover between sizes 64 and
#: 128). Override with ``REPRO_VECTOR_CROSSOVER``.
VECTOR_CROSSOVER_DEFAULT = 96


def vector_crossover_extent() -> int:
    """The measured auto-ladder vector/scalar crossover extent."""
    try:
        return int(os.environ["REPRO_VECTOR_CROSSOVER"])
    except (KeyError, ValueError):
        return VECTOR_CROSSOVER_DEFAULT


@dataclass
class CompiledKernel:
    """A cached compilation product.

    ``run`` accepts optional ``part_lo``/``part_hi`` keyword
    arguments clamping execution to a partition range (the resilience
    supervisor's replay unit). ``backend`` names the code generator
    that produced ``source`` — the divergence oracle picks its
    reference backend from it.
    """

    kernel: Kernel
    run: object  # the compiled callable (T, ctx, part_lo, part_hi) -> T
    source: str
    compile_seconds: float
    backend: str = "scalar"
    batched_run: object = None  # lazy lane-batched twin (vector only)
    batched_source: Optional[str] = None
    #: Lazy batched-native callable (native backend only) — the
    #: ``repro_<name>_batched`` entry of the same shared object.
    batched_native_run: object = None
    #: Path of the compiled shared object (native backend only).
    so_path: Optional[str] = None

    @property
    def schedule(self) -> Schedule:
        """The schedule this kernel was compiled for."""
        return self.kernel.schedule

    @property
    def eligibility(self):
        """The vector-backend verdict for this kernel — rule id plus
        the human sentence (``python -m repro explain`` prints it)."""
        from ..ir import npbackend

        return npbackend.eligibility(self.kernel)

    @property
    def native_eligibility(self):
        """The native (C99) backend verdict for this kernel."""
        from ..ir import cbackend

        return cbackend.native_eligibility(self.kernel)

    def ensure_batched(self):
        """Compile (once) and return the lane-batched twin kernel.

        Only meaningful for vector-backend products; the batched
        generator shares the vector backend's eligibility rules.
        """
        if self.batched_run is None:
            from ..ir import npbackend

            self.batched_run, self.batched_source = (
                npbackend.compile_batched_kernel(self.kernel)
            )
        return self.batched_run

    def ensure_batched_native(self):
        """Load (once) and return the batched-native callable.

        Only meaningful for native-backend products: the
        ``repro_<name>_batched`` entry lives in the *same* shared
        object as the per-problem run, so this is a symbol load, not
        a compile. Raises
        :class:`~repro.lang.errors.NativeBuildError` when this is not
        a native product or the artifact cannot serve the symbol
        (e.g. a stale shared-cache ``.so`` from before the batched
        entry existed) — callers demote to the vector-batched rung.
        """
        if self.batched_native_run is None:
            from ..lang.errors import NativeBuildError
            from . import native as native_rt

            if self.backend != "native" or not self.so_path:
                raise NativeBuildError(
                    f"kernel {self.kernel.name!r} compiled on the "
                    f"{self.backend!r} backend; batched-native needs "
                    f"a native product"
                )
            try:
                self.batched_native_run = native_rt.load_batched(
                    self.kernel, self.so_path
                )
            except (OSError, AttributeError) as err:
                raise NativeBuildError(
                    f"batched entry unavailable in "
                    f"{self.so_path}: {err}"
                ) from err
        return self.batched_native_run

    def cuda_source(self, windowed: bool = False) -> str:
        """The synthesised CUDA text; ``windowed=True`` emits the
        Section 4.8 shared-memory variant (uniform descents only)."""
        from ..ir.cuda import emit_cuda

        return emit_cuda(self.kernel, windowed=windowed)


@dataclass
class RunResult:
    """One problem solved on the simulated device."""

    value: object
    table: np.ndarray
    kernel: Kernel
    domain: Domain
    cost: KernelCost
    report: LaunchReport

    @property
    def schedule(self) -> Schedule:
        """The schedule the kernel ran under."""
        return self.kernel.schedule

    @property
    def seconds(self) -> float:
        """Total simulated launch time."""
        return self.report.total_seconds


@dataclass
class MapResult:
    """A ``map`` workload solved on the simulated device."""

    values: List[object]
    report: LaunchReport
    schedule_usage: Dict[Tuple[int, ...], int]
    costs: List[KernelCost] = field(repr=False, default_factory=list)
    parallelism: str = "intra"
    #: Lane-batched execution accounting: how many packed groups ran
    #: as single vectorised sweeps, covering how many problems, and
    #: their amortised analytic costs (one sync per *global*
    #: partition — see ``gpu.timing.batched_launch_cost``).
    lane_batches: int = 0
    lane_batched_problems: int = 0
    batched_costs: List[KernelCost] = field(
        repr=False, default_factory=list
    )
    #: Which rung each packed group actually ran on, in group order
    #: (``"native-batched"`` / ``"vector-batched"`` /
    #: ``"scalar-batched"`` after demotions).
    batched_backends: List[str] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Total simulated launch time."""
        return self.report.total_seconds


class Engine:
    """Compiles and runs DSL functions on the simulated GPU."""

    def __init__(
        self,
        device: Optional[DeviceSpec] = None,
        prob_mode: str = "direct",
        schedule_bound: int = DEFAULT_BOUND,
        solver: str = "orthant",
        backend: Optional[str] = None,
        kernel_cache: Optional[LRUKernelCache] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        batching: bool = True,
        verify: str = "schedule",
        sanitize: bool = False,
        schedule: str = "min-partition",
    ) -> None:
        # ``backend=None`` (the default) defers to the REPRO_BACKEND
        # environment variable, then "auto". An env-provided backend
        # is a *preference* (it degrades gracefully when, say, no C
        # compiler exists); an explicit argument is *forced* and
        # raises instead of degrading.
        self.backend_forced = backend is not None
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND") or "auto"
        if backend not in ("auto", "scalar", "vector", "native"):
            raise ValueError(f"unknown backend {backend!r}")
        if verify not in ("off", "schedule", "full"):
            raise ValueError(f"unknown verify mode {verify!r}")
        if schedule not in ("min-partition", "autotune"):
            raise ValueError(f"unknown schedule mode {schedule!r}")
        self.spec = device or GTX480
        self.device = SimulatedDevice(self.spec)
        self.prob_mode = prob_mode
        self.schedule_bound = schedule_bound
        self.solver = solver
        self.backend = backend
        #: Lane-batch eligible ``map`` groups into single vectorised
        #: sweeps (Section 6.1's inter-task parallelism, functionally).
        self.batching = batching
        # LRU-bounded by default; pass a shared
        # ``service.cache.PersistentKernelCache`` to keep compilation
        # products across processes (and across a worker pool).
        # NB ``is not None``: an empty cache is falsy (it has __len__).
        self._cache = (
            kernel_cache
            if kernel_cache is not None
            else LRUKernelCache(cache_capacity)
        )
        self.cache_hits = 0
        self.cache_misses = 0
        #: ``"off"`` trusts the solver; ``"schedule"`` (the default)
        #: independently re-proves every schedule before first use;
        #: ``"full"`` adds the IR access/initialization analysis.
        self.verify = verify
        #: Route execution through the runtime table sanitizer
        #: (poison-filled tables, partition-barrier checks).
        self.sanitize = sanitize
        self.verified_schedules = 0
        self.verify_failures = 0
        #: Launches re-routed off the native backend after a sandbox
        #: worker crash/hang or an open circuit breaker (the service
        #: stats endpoint sums this across its worker engines).
        self.native_demotions = 0
        self._verdicts: Dict[str, tuple] = {}
        # Memoised backend resolution: content hash (+ size bucket)
        # -> (resolved backend, sandbox kernel digest or None, the
        # allow_native=False fallback). Keeps the auto ladder's
        # eligibility probes off the hot path and guarantees the
        # kernel cache keys on the *resolved* backend; the digest
        # lets a memo hit consult the crash circuit breaker without
        # rebuilding the kernel.
        self._resolved: Dict[tuple, tuple] = {}
        # Memoised schedule search: (function identity, domain
        # extents, bound, solver) -> schedule. A lane-batched map
        # group solves one schedule for the whole batch instead of
        # one per member — on a 64-problem profile search the solver
        # otherwise dominates the host-side cost of the launch. The
        # function object rides along in the value to pin its id.
        self._schedules: Dict[tuple, tuple] = {}
        #: ``"min-partition"`` keeps the Section 4.6 solver's answer;
        #: ``"autotune"`` runs the cost-model-guided portfolio search
        #: (``schedule.autotune``), memoised per exact extents and
        #: persisted per (kernel digest, size bucket) in the kernel
        #: cache so warm processes skip the search entirely.
        self.schedule_mode = schedule
        self.autotune_searches = 0
        self.autotune_hits = 0
        #: The most recent AutotuneResult (``explain`` reports it).
        self.last_autotune = None

    def cache_info(self) -> CacheInfo:
        """Counter snapshot of the kernel cache (both tiers), extended
        with this engine's verification counters."""
        return self._cache.cache_info()._replace(
            verified=self.verified_schedules,
            verify_failures=self.verify_failures,
            autotune_searches=self.autotune_searches,
            autotune_hits=self.autotune_hits,
        )

    # -- verification ---------------------------------------------------------

    def verify_compiled(
        self,
        func: CheckedFunction,
        schedule: Schedule,
        domain: Domain,
    ):
        """Run the independent verifier, per the engine's mode.

        Verdicts are memoised on the same content hash the kernel
        cache keys on (plus the concrete extents), so re-running a
        cached kernel costs one dict probe. Raises
        :class:`~repro.lang.errors.VerificationError` when any
        error-severity diagnostic survives; returns the certificate
        (or None when verification is off or the descents are outside
        the single-function verifier's scope).
        """
        if self.verify == "off":
            return None
        from ..lang.errors import AnalysisError, VerificationError
        from ..verify import analyze_access, verify_schedule

        key = kernel_cache_key(
            func, schedule, self.prob_mode, "verify"
        ) + "/" + repr(domain.extents)
        cached = self._verdicts.get(key)
        if cached is None:
            try:
                certificate, diagnostics = verify_schedule(
                    func, schedule, domain
                )
            except AnalysisError:
                # Mutual groups / non-affine descents: out of the
                # single-function verifier's scope, not a failure.
                self._verdicts[key] = (None, ())
                return None
            diagnostics = list(diagnostics)
            if self.verify == "full":
                diagnostics += analyze_access(
                    func, domain,
                    schedule=schedule, prob_mode=self.prob_mode,
                )
                # Parallel-safety certificates on the real extents: a
                # refused axis is a warning (the native build simply
                # goes serial there), never a VerificationError.
                from ..ir.kernel import build_kernel
                from ..verify.races import analyze_parallelism

                try:
                    parallel = analyze_parallelism(
                        build_kernel(
                            func, schedule, prob_mode=self.prob_mode
                        ),
                        extents=domain.extents,
                    )
                except AnalysisError:
                    parallel = None
                if parallel is not None:
                    diagnostics += parallel.diagnostics()
            errors = tuple(
                d for d in diagnostics if d.severity == "error"
            )
            cached = (certificate, errors)
            self._verdicts[key] = cached
            if errors:
                self.verify_failures += 1
            else:
                self.verified_schedules += 1
        certificate, errors = cached
        if errors:
            raise VerificationError(
                "verification failed for "
                f"{func.name!r}:\n"
                + "\n".join(d.render() for d in errors),
                errors[0].span,
            )
        return certificate

    # -- compilation ----------------------------------------------------------

    def _auto_choice(
        self, kernel: Kernel, vector_ok: bool,
        bucket: Optional[bool], allow_native: bool,
    ) -> str:
        """Walk the auto ladder: native > vector > scalar.

        ``bucket`` carries the size test (``None`` = unknown extents,
        treat as large): below the measured crossover extent the
        vector backend's per-op dispatch overhead loses to the plain
        scalar loop, so auto stops preferring it (the paper's Table 2
        sizes are all far above the crossover).
        """
        if allow_native:
            from ..ir.cbackend import native_eligibility
            from . import native as native_rt

            if (
                native_rt.available().ok
                and native_eligibility(kernel).ok
            ):
                return "native"
        if vector_ok and (bucket is None or bucket):
            return "vector"
        return "scalar"

    def _choose_backend(
        self, kernel: Kernel, bucket: Optional[bool]
    ) -> str:
        """Resolve this engine's backend mode for one kernel."""
        from ..ir import npbackend

        verdict = npbackend.eligibility(kernel)
        if self.backend == "scalar":
            return "scalar"
        if self.backend == "vector":
            if not verdict.ok:
                # Fail up front with the *rule* that was violated,
                # rather than letting the generator die mid-emission.
                raise CodegenError(
                    f"backend='vector' was forced but kernel "
                    f"{kernel.name!r} is not eligible "
                    f"[{verdict.rule}]: {verdict.detail}"
                )
            return "vector"
        if self.backend == "native":
            from ..ir.cbackend import native_eligibility
            from . import native as native_rt

            avail = native_rt.available()
            native = native_eligibility(kernel)
            if avail.ok and native.ok and not self.sanitize:
                return "native"
            if self.backend_forced:
                if self.sanitize:
                    raise CodegenError(
                        "backend='native' cannot run sanitized: the "
                        "sanitizer instruments the generated Python "
                        "partition loop, which machine code does not "
                        "have"
                    )
                bad = avail if not avail.ok else native
                raise CodegenError(
                    f"backend='native' was forced but kernel "
                    f"{kernel.name!r} cannot use it "
                    f"[{bad.rule}]: {bad.detail}"
                )
            # Env preference: degrade down the rest of the ladder.
            return self._auto_choice(
                kernel, verdict.ok, bucket, allow_native=False
            )
        return self._auto_choice(
            kernel, verdict.ok, bucket,
            allow_native=not self.sanitize,
        )

    def _resolve_backend(
        self,
        func: CheckedFunction,
        schedule: Schedule,
        domain: Optional[Domain],
    ) -> Tuple[str, Optional[Kernel]]:
        """Memoised backend resolution for one (function, schedule).

        Returns ``(backend_name, kernel_or_None)`` — the kernel is
        only built (and returned for reuse) on a memo miss. When the
        sandbox is on and the kernel resolves native, the crash
        circuit breaker is consulted on every call (memo hits
        included): an open breaker re-routes to the memoised
        ``allow_native=False`` fallback *without* rewriting the memo,
        so the kernel returns to native once the breaker half-opens.
        """
        if domain is None:
            bucket: Optional[bool] = None
        else:
            bucket = max(domain.extents) >= vector_crossover_extent()
        rkey = (
            kernel_cache_key(func, schedule, self.prob_mode, "resolve"),
            bucket,
        )
        hit = self._resolved.get(rkey)
        if hit is not None:
            resolved, digest, fallback = hit
            if digest is not None and self._breaker_open(digest):
                self.native_demotions += 1
                return fallback, None
            return resolved, None
        kernel = build_kernel(func, schedule, self.prob_mode)
        resolved = self._choose_backend(kernel, bucket)
        digest = None
        fallback = resolved
        if resolved == "native":
            from . import sandbox as sandbox_rt

            if sandbox_rt.enabled():
                from ..ir import npbackend

                digest = sandbox_rt.kernel_digest(kernel)
                fallback = self._auto_choice(
                    kernel, npbackend.eligibility(kernel).ok,
                    bucket, allow_native=False,
                )
        self._resolved[rkey] = (resolved, digest, fallback)
        if digest is not None and self._breaker_open(digest):
            self.native_demotions += 1
            return fallback, kernel
        return resolved, kernel

    def _breaker_open(self, digest: str) -> bool:
        from . import sandbox as sandbox_rt

        if not sandbox_rt.enabled():
            return False
        return not sandbox_rt.get_breaker().allows(digest)

    @staticmethod
    def _is_sandbox_fault(err: Exception) -> bool:
        """A sandboxed native launch died (crash / hang / breaker)."""
        from ..resilience.faults import SandboxHang, WorkerCrash

        return isinstance(err, (WorkerCrash, SandboxHang))

    def compile(
        self,
        func: CheckedFunction,
        schedule: Schedule,
        domain: Optional[Domain] = None,
    ) -> CompiledKernel:
        """Compile (or fetch) the kernel for one schedule.

        Backend choice: ``native`` emits C99 and JIT-compiles it with
        the system C compiler (whole runs execute as machine code);
        ``vector`` evaluates whole partitions as NumPy array
        operations when the kernel is eligible (2-D, no reductions);
        ``scalar`` is the cell-at-a-time generator; ``auto`` walks the
        ladder native > vector > scalar, preferring scalar/native over
        vector below the measured crossover extent when ``domain`` is
        given. The cache keys on the *resolved* backend, so a warm
        native entry is found again regardless of the engine's mode.
        """
        from ..lang.errors import NativeBuildError

        resolved, kernel = self._resolve_backend(
            func, schedule, domain
        )
        key = kernel_cache_key(
            func, schedule, self.prob_mode, resolved
        )
        cached = self._cache.lookup(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        started = time.perf_counter()
        if kernel is None:
            kernel = build_kernel(func, schedule, self.prob_mode)
        so_path = None
        if resolved == "native":
            from . import native as native_rt

            try:
                run, source, so_path = native_rt.compile_native(kernel)
            except NativeBuildError as err:
                if self.backend == "native" and self.backend_forced:
                    # Name the failure the way a forced-vector
                    # CodegenError names its eligibility rule, so
                    # callers see which toolchain step broke.
                    raise NativeBuildError(
                        f"backend='native' was forced but kernel "
                        f"{kernel.name!r} failed to build "
                        f"[build-failed]: {err.message}",
                        err.span,
                    ) from err
                # Eligibility said yes but the toolchain said no
                # (compiler rejection, dead probe). Permanent for
                # this kernel: drop down the ladder and re-memoise
                # so later calls skip the doomed build.
                from ..ir import npbackend

                resolved = self._auto_choice(
                    kernel,
                    npbackend.eligibility(kernel).ok,
                    None if domain is None
                    else max(domain.extents) >= vector_crossover_extent(),
                    allow_native=False,
                )
                for rkey, entry in list(self._resolved.items()):
                    if entry[0] == "native" and rkey[0] == kernel_cache_key(
                        func, schedule, self.prob_mode, "resolve"
                    ):
                        self._resolved[rkey] = (resolved, None, resolved)
                key = kernel_cache_key(
                    func, schedule, self.prob_mode, resolved
                )
                cached = self._cache.lookup(key)
                if cached is not None:
                    self.cache_hits += 1
                    return cached
        if resolved == "native":
            pass  # compiled above
        elif resolved == "vector":
            from ..ir import npbackend

            run, source = npbackend.compile_vector_kernel(kernel)
        else:
            run, source = compile_kernel(kernel)
        elapsed = time.perf_counter() - started
        compiled = CompiledKernel(
            kernel, run, source, elapsed,
            backend=resolved, so_path=so_path,
        )
        self._cache.store(key, compiled)
        return compiled

    def _compile_demoted(
        self,
        func: CheckedFunction,
        schedule: Schedule,
        domain: Optional[Domain],
    ) -> CompiledKernel:
        """Compile the same kernel one rung down (native excluded).

        The recovery path after a sandbox worker crash/hang: the
        native launch is abandoned and the problem re-executes on
        the ``allow_native=False`` ladder choice (vector when
        eligible, else scalar). Shares the kernel cache, so repeated
        demotions of one kernel compile exactly once.
        """
        from ..ir import npbackend

        kernel = build_kernel(func, schedule, self.prob_mode)
        bucket = (
            None
            if domain is None
            else max(domain.extents) >= vector_crossover_extent()
        )
        resolved = self._auto_choice(
            kernel, npbackend.eligibility(kernel).ok,
            bucket, allow_native=False,
        )
        key = kernel_cache_key(
            func, schedule, self.prob_mode, resolved
        )
        cached = self._cache.lookup(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        started = time.perf_counter()
        if resolved == "vector":
            run, source = npbackend.compile_vector_kernel(kernel)
        else:
            run, source = compile_kernel(kernel)
        elapsed = time.perf_counter() - started
        compiled = CompiledKernel(
            kernel, run, source, elapsed, backend=resolved
        )
        self._cache.store(key, compiled)
        return compiled

    def schedule_for(
        self,
        func: CheckedFunction,
        domain: Domain,
        user_schedule: Optional[ast.Expr] = None,
        bindings: Optional[Bindings] = None,
    ) -> Schedule:
        """Pick the schedule: verify the user's, search, or autotune.

        ``bindings`` (optional) lets the autotuner's measured-feedback
        mode build a real context to time candidates against; without
        it the search stays purely analytic.
        """
        if user_schedule is not None:
            from ..schedule.schedule import validate_user_schedule

            return validate_user_schedule(func, user_schedule, domain)
        if self.schedule_mode == "autotune":
            return self._autotuned_schedule(func, domain, bindings)
        key = (
            id(func),
            tuple(domain.extents),
            self.schedule_bound,
            self.solver,
        )
        memo = self._schedules.get(key)
        if memo is not None and memo[0] is func:
            return memo[1]
        schedule = find_schedule(
            func, domain, bound=self.schedule_bound, solver=self.solver
        )
        self._schedules[key] = (func, schedule)
        return schedule

    def _autotuned_schedule(
        self,
        func: CheckedFunction,
        domain: Domain,
        bindings: Optional[Bindings] = None,
    ) -> Schedule:
        """The autotune path of :meth:`schedule_for`, three tiers deep:
        exact-extents memo, persistent (kernel digest, size bucket)
        record, then the full portfolio search (whose winner is
        persisted for the next process)."""
        from ..analysis.criteria import schedule_criteria
        from ..schedule.autotune import (
            autotune_schedule,
            measure_from_env,
        )
        from ..service.cache import (
            ScheduleRecord,
            autotune_cache_key,
            domain_bucket,
        )

        memo_key = (
            id(func),
            tuple(domain.extents),
            self.schedule_bound,
            self.prob_mode,
            "autotune",
        )
        memo = self._schedules.get(memo_key)
        if memo is not None and memo[0] is func:
            self.autotune_hits += 1
            return memo[1]
        criteria = schedule_criteria(func)
        cache_key = autotune_cache_key(
            func,
            self.prob_mode,
            self.schedule_bound,
            self.spec.name,
            domain_bucket(domain.extents),
        )
        record = self._cache.lookup(cache_key)
        if isinstance(record, ScheduleRecord):
            schedule = record.schedule
            # The bucket is coarser than the extents: re-validate the
            # cached winner against the *actual* box before trusting
            # it (and fall through to a fresh search if it no longer
            # holds — e.g. a record from a different extent mix).
            if tuple(schedule.dims) == tuple(
                func.dim_names
            ) and schedule.is_valid(criteria, domain):
                self.autotune_hits += 1
                self._schedules[memo_key] = (func, schedule)
                return schedule
        measure = measure_from_env()
        measure_fn = (
            self._autotune_measure_fn(func, domain, bindings)
            if measure > 0 and bindings is not None
            else None
        )
        result = autotune_schedule(
            func,
            domain,
            self.spec,
            prob_mode=self.prob_mode,
            bound=self.schedule_bound,
            solver=self.solver,
            mean_degree=(
                self.mean_degree(func, bindings) if bindings else 1.0
            ),
            measure=measure if measure_fn is not None else 0,
            measure_fn=measure_fn,
        )
        self.autotune_searches += 1
        self.last_autotune = result
        self._schedules[memo_key] = (func, result.schedule)
        self._cache.store(
            cache_key,
            ScheduleRecord(
                result.schedule,
                meta={
                    "default": list(result.default.coefficients),
                    "predicted_cycles": result.predicted.cycles,
                    "default_predicted_cycles": (
                        result.default_predicted.cycles
                    ),
                    "enumerated": result.stats.enumerated,
                    "pruned": result.stats.pruned,
                },
            ),
        )
        return result.schedule

    def _autotune_measure_fn(
        self,
        func: CheckedFunction,
        domain: Domain,
        bindings: Bindings,
    ):
        """Compile-and-time closure for measured autotune feedback.

        Any failure (ineligible backend, build error, sandbox fault)
        returns None — that candidate simply stays analytic.
        """

        def measure(schedule: Schedule) -> Optional[float]:
            try:
                compiled = self.compile(func, schedule, domain)
                ctx = self.build_context(compiled, bindings, domain)
                table = self._table_for(compiled.kernel, domain)
                started = time.perf_counter()
                compiled.run(table, ctx)
                return time.perf_counter() - started
            except Exception:
                return None

        return measure

    # -- context preparation --------------------------------------------------

    def build_context(
        self,
        compiled: CompiledKernel,
        bindings: Bindings,
        domain: Domain,
    ) -> Dict[str, object]:
        """Materialise the device context for one problem."""
        from .context import build_context

        return build_context(compiled.kernel, bindings, domain)

    def mean_degree(
        self, func: CheckedFunction, bindings: Bindings
    ) -> float:
        """Mean transition in-degree of the bound models (cost model)."""
        degrees = [
            bindings[p.name].mean_in_degree()
            for p in func.calling_params
            if isinstance(p.type, HmmType) and p.name in bindings
        ]
        return sum(degrees) / len(degrees) if degrees else 1.0

    # -- execution ------------------------------------------------------------

    def domain_of(
        self,
        func: CheckedFunction,
        bindings: Bindings,
        initial: Optional[Dict[str, int]] = None,
    ) -> Domain:
        """The recursion domain implied by the bindings."""
        return Domain(
            func.dim_names, domain_extents(func, bindings, initial)
        )

    def result_coords(
        self,
        func: CheckedFunction,
        bindings: Bindings,
        domain: Domain,
        at: Optional[Mapping[str, int]] = None,
        initial: Optional[Dict[str, int]] = None,
    ) -> Tuple[int, ...]:
        """Where the requested value lives in the table.

        Defaults per dimension kind: indices at the sequence length,
        integers at their initial value, states at the model's end
        state, transitions need an explicit position.
        """
        at = dict(at or {})
        initial = initial or {}
        coords = []
        for param, extent in zip(func.recursive_params, domain.extents):
            if param.name in at:
                coords.append(int(at[param.name]))
            elif isinstance(param.type, IndexType):
                coords.append(extent - 1)
            elif isinstance(param.type, IntType):
                coords.append(initial.get(param.name, extent - 1))
            elif isinstance(param.type, StateType):
                hmm = bindings[param.type.hmm_param]
                assert isinstance(hmm, Hmm)
                coords.append(hmm.end_state.index)
            elif isinstance(param.type, TransitionType):
                raise RuntimeDslError(
                    f"dimension {param.name!r}: pass at={{...}} to pick "
                    f"a transition coordinate"
                )
            else:
                raise RuntimeDslError(
                    f"cannot default a coordinate for {param.name!r}"
                )
        return tuple(coords)

    def _table_for(self, kernel: Kernel, domain: Domain) -> np.ndarray:
        if kernel.body.return_kind == "int":
            return np.zeros(domain.extents, dtype=np.int64)
        return np.zeros(domain.extents, dtype=np.float64)

    def _extract(
        self, kernel: Kernel, table, coords, reduce: Optional[str] = None
    ) -> object:
        """Read the result: a coordinate, or a whole-table reduction.

        ``reduce='max'``/``'min'`` supports optimisation recurrences
        whose answer is the best cell anywhere in the table
        (Smith-Waterman's local alignment score).
        """
        if reduce == "max":
            raw = table.max()
        elif reduce == "min":
            raw = table.min()
        elif reduce is None:
            raw = table[coords]
        else:
            raise RuntimeDslError(f"unknown reduction {reduce!r}")
        if kernel.body.return_kind == "int":
            return int(raw)
        if kernel.logspace:
            return math.exp(raw) if raw != float("-inf") else 0.0
        return float(raw)

    def _problem_bytes(self, domain: Domain, bindings: Bindings) -> float:
        """Rough host->device payload of one problem."""
        total = 8.0 * domain.extents[-1]  # result row copied back
        for value in bindings.values.values():
            if isinstance(value, Sequence):
                total += len(value)
        return total

    def run(
        self,
        func: CheckedFunction,
        bindings: Mapping[str, object],
        at: Optional[Mapping[str, int]] = None,
        initial: Optional[Dict[str, int]] = None,
        user_schedule: Optional[ast.Expr] = None,
        use_window: bool = True,
        reduce: Optional[str] = None,
    ) -> RunResult:
        """Solve one problem end to end on the simulated device."""
        bound = Bindings(dict(bindings))
        domain = self.domain_of(func, bound, initial)
        schedule = self.schedule_for(
            func, domain, user_schedule, bindings=bound
        )
        self.verify_compiled(func, schedule, domain)
        compiled = self.compile(func, schedule, domain)
        ctx = self.build_context(compiled, bound, domain)
        table = self._table_for(compiled.kernel, domain)

        cost = kernel_cost(
            compiled.kernel,
            domain,
            self.spec,
            mean_degree=self.mean_degree(func, bound),
            use_window=use_window,
        )
        problem = ProblemCost(
            cost.seconds,
            bytes_in=self._problem_bytes(domain, bound),
            packing=problems_per_sm(compiled.kernel, domain, self.spec),
        )
        if self.sanitize:
            from ..verify.sanitizer import run_sanitized

            execute_one = lambda _k: run_sanitized(  # noqa: E731
                compiled, table, ctx, domain
            )
        else:

            def execute_one(_k) -> None:
                try:
                    compiled.run(table, ctx)
                except Exception as err:
                    if not self._is_sandbox_fault(err):
                        raise
                    # The sandboxed native launch died (worker crash,
                    # deadline kill, or open breaker). The parent
                    # table is untouched — re-zero it and re-execute
                    # one rung down; integer kernels recover
                    # bitwise-identical.
                    self.native_demotions += 1
                    demoted = self._compile_demoted(
                        func, schedule, domain
                    )
                    table[...] = 0
                    demoted.run(table, ctx)

        report = self.device.launch([problem], run=execute_one)
        coords = self.result_coords(func, bound, domain, at, initial)
        value = self._extract(compiled.kernel, table, coords, reduce)
        return RunResult(value, table, compiled.kernel, domain, cost,
                         report)

    def prepare_map(
        self,
        func: CheckedFunction,
        base_bindings: Mapping[str, object],
        problems: Seq[Mapping[str, object]],
        initial: Optional[Dict[str, int]] = None,
        use_window: bool = True,
    ):
        """Compile and price every problem of a ``map`` workload.

        Returns ``(prepared, costs, usage, problem_costs)`` where
        ``prepared`` is a list of ``(bindings, domain, compiled)``
        triples in problem order. Shared by :meth:`map_run` and the
        resilience supervisor (which executes the prepared problems
        under checkpointed supervision instead).
        """
        if self.schedule_mode == "autotune":
            # The compile-time schedule set encodes the min-partition
            # goal; autotune decisions are per size bucket instead
            # (memoised + persisted, so a map group still searches
            # once per bucket, not once per problem).
            schedule_set: Optional[ScheduleSet] = None
        else:
            try:
                schedule_set = derive_schedule_set(
                    func, bound=self.schedule_bound
                )
            except ScheduleError:
                schedule_set = None

        prepared = []
        for overrides in problems:
            bound = Bindings({**base_bindings, **overrides})
            domain = self.domain_of(func, bound, initial)
            if schedule_set is not None:
                schedule = schedule_set.select(domain.extent_map())
            else:
                schedule = self.schedule_for(
                    func, domain, bindings=bound
                )
            self.verify_compiled(func, schedule, domain)
            compiled = self.compile(func, schedule, domain)
            prepared.append((bound, domain, compiled))

        costs: List[KernelCost] = []
        usage: Dict[Tuple[int, ...], int] = {}
        problem_costs: List[ProblemCost] = []
        for bound, domain, compiled in prepared:
            cost = kernel_cost(
                compiled.kernel,
                domain,
                self.spec,
                mean_degree=self.mean_degree(func, bound),
                use_window=use_window,
            )
            costs.append(cost)
            coeffs = compiled.schedule.coefficients
            usage[coeffs] = usage.get(coeffs, 0) + 1
            problem_costs.append(
                ProblemCost(
                    cost.seconds,
                    bytes_in=self._problem_bytes(domain, bound),
                    packing=problems_per_sm(
                        compiled.kernel, domain, self.spec
                    ),
                )
            )
        return prepared, costs, usage, problem_costs

    def map_run(
        self,
        func: CheckedFunction,
        base_bindings: Mapping[str, object],
        problems: Seq[Mapping[str, object]],
        at: Optional[Mapping[str, int]] = None,
        initial: Optional[Dict[str, int]] = None,
        use_window: bool = True,
        reduce: Optional[str] = None,
        parallelism: str = "intra",
        hybrid_threshold: Optional[int] = None,
        execute: bool = True,
    ) -> MapResult:
        """Solve many problems: the ``map`` primitive (Section 4.7).

        Each problem overrides some calling parameters (typically the
        database sequence). Schedules come from the compile-time
        schedule set when the descents are uniform, chosen per problem
        by the minimality condition; otherwise each problem gets a
        runtime search (both paths share the kernel cache).

        ``parallelism`` picks the strategy (Section 6.1):

        * ``"intra"`` — one problem per multiprocessor, threads
          cooperate on partitions (the paper's focus);
        * ``"inter"`` — one problem per *thread* ("algorithmically
          trivial" sequence-per-thread generation);
        * ``"hybrid"`` — CUDASW++-style split: problems smaller than
          ``hybrid_threshold`` cells go inter-task, the rest intra.

        The functional results are identical in every mode; only the
        device-time accounting differs. ``execute=False`` prices the
        launch without computing the tables (``values`` stay None) —
        for large sweeps where only the timing matters.
        """
        if parallelism not in ("intra", "inter", "hybrid"):
            raise RuntimeDslError(
                f"unknown parallelism {parallelism!r}"
            )
        prepared, costs, usage, problem_costs = self.prepare_map(
            func, base_bindings, problems,
            initial=initial, use_window=use_window,
        )
        values: List[object] = [None] * len(prepared)

        def run_one(index: int) -> None:
            bound, domain, compiled = prepared[index]
            ctx = self.build_context(compiled, bound, domain)
            table = self._table_for(compiled.kernel, domain)
            if self.sanitize:
                from ..verify.sanitizer import run_sanitized

                run_sanitized(compiled, table, ctx, domain)
            else:
                try:
                    compiled.run(table, ctx)
                except Exception as err:
                    if not self._is_sandbox_fault(err):
                        raise
                    self.native_demotions += 1
                    demoted = self._compile_demoted(
                        func, compiled.schedule, domain
                    )
                    table[...] = 0
                    demoted.run(table, ctx)
            coords = (
                None
                if reduce
                else self.result_coords(func, bound, domain, at, initial)
            )
            values[index] = self._extract(
                compiled.kernel, table, coords, reduce
            )

        if parallelism == "intra":
            # Lane batching: groups of same-kernel vector problems run
            # as single padded sweeps *before* the per-problem launch
            # loop (which then skips them). The analytic launch report
            # keeps the per-problem costs — placement and device time
            # are modelled unchanged — while ``batched_costs`` records
            # the amortised (one sync per global partition) pricing.
            batch_groups: List[List[int]] = []
            batched: set = set()
            # Sanitized runs step partition-by-partition; the packed
            # lane-batch sweep cannot, so batching stands down.
            if (
                execute and self.batching and not self.sanitize
                and len(prepared) > 1
            ):
                from .batching import (
                    BatchedLaunch, pack_group, plan_batches,
                )

                batch_groups = plan_batches(prepared)
                batched = {
                    index for group in batch_groups for index in group
                }
            batched_costs: List[KernelCost] = []
            batched_backends: List[str] = []
            for group in batch_groups:
                bound0, _, compiled = prepared[group[0]]
                members = [
                    (prepared[i][0], prepared[i][1]) for i in group
                ]
                packed = pack_group(compiled, members, indices=group)
                launch = BatchedLaunch(packed)
                try:
                    launch.run(packed.table, packed.ctx)
                except Exception as err:
                    if not self._is_sandbox_fault(err):
                        raise
                    # A sandboxed batched launch crashed (or its
                    # breaker is open): one disposable worker died,
                    # the parent table is untouched. Demote the whole
                    # group one rung and rerun from a clean table.
                    self.native_demotions += 1
                    launch.demote()
                    packed.table[...] = 0
                    launch.run(packed.table, packed.ctx)
                batched_backends.append(launch.backend)
                for slot, index in enumerate(group):
                    p_bound, p_domain, _ = prepared[index]
                    coords = (
                        None
                        if reduce
                        else self.result_coords(
                            func, p_bound, p_domain, at, initial
                        )
                    )
                    values[index] = self._extract(
                        compiled.kernel,
                        packed.member_view(slot),
                        coords,
                        reduce,
                    )
                if launch.rung == "native":
                    from . import native as native_rt

                    threads = native_rt.effective_threads()
                else:
                    threads = 1
                batched_costs.append(
                    batched_launch_cost(
                        compiled.kernel,
                        [domain for _, domain in members],
                        self.spec,
                        mean_degree=self.mean_degree(func, bound0),
                        threads=threads,
                    )
                )

            def run_unbatched(index: int) -> None:
                if index not in batched:
                    run_one(index)

            report = self.device.launch(
                problem_costs, run=run_unbatched if execute else None
            )
            return MapResult(
                values, report, usage, costs, "intra",
                lane_batches=len(batch_groups),
                lane_batched_problems=len(batched),
                batched_costs=batched_costs,
                batched_backends=batched_backends,
            )

        # Inter/hybrid: functional execution is unchanged; pricing
        # splits the problem set by strategy.
        if execute:
            for index in range(len(prepared)):
                run_one(index)
        threshold = hybrid_threshold or 64 * 64
        intra_costs: List[ProblemCost] = []
        inter_domains = []
        mean = 1.0
        kernel = prepared[0][2].kernel if prepared else None
        for (bound, domain, compiled), cost in zip(
            prepared, problem_costs
        ):
            mean = self.mean_degree(func, bound)
            if parallelism == "inter" or domain.size < threshold:
                inter_domains.append(domain)
                kernel = compiled.kernel
            else:
                intra_costs.append(cost)
        seconds = 0.0
        if inter_domains and kernel is not None:
            seconds += inter_task_seconds(
                kernel, inter_domains, self.spec, mean
            )
        if intra_costs:
            seconds += self.device.launch(intra_costs).kernel_seconds
        report = LaunchReport(
            device=self.spec.name,
            problems=len(prepared),
            kernel_seconds=seconds,
            transfer_seconds=self.spec.transfer_seconds(
                sum(
                    self._problem_bytes(d, b)
                    for b, d, _ in prepared
                )
            ),
            overhead_seconds=self.spec.launch_overhead_s,
        )
        return MapResult(values, report, usage, costs, parallelism)
