"""Reference evaluation of DSL functions.

:class:`Evaluator` evaluates a (type-checked) function body in an
environment of runtime values, with recursive calls delegated to a
pluggable handler. Two standard wirings:

* :func:`memoised` — the semantic oracle: straight recursive
  evaluation with memoisation (the "implicit method of evaluation" of
  Section 2, plus the obvious dynamic-programming cache);
* the serial tabulator in :mod:`repro.runtime.tabulate` — bottom-up
  evaluation in schedule order, recursive calls become table reads.

Everything downstream (the compiled Python backend, the simulated GPU)
is tested against this module.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Tuple

from ..extensions.hmm import Hmm
from ..extensions.submatrix import SubstitutionMatrix
from ..lang import ast
from ..lang.errors import RuntimeDslError
from ..lang.typecheck import CheckedFunction
from ..lang.types import (
    IndexType,
    IntType,
    ProbType,
    StateType,
    TransitionType,
)
from .values import Bindings, Sequence

#: Recursive call handler: receives the recursive-argument tuple.
CallHandler = Callable[[Tuple[int, ...]], object]


class Evaluator:
    """Evaluates the body of one function against fixed bindings.

    ``on_cross_call`` (name, args) handles calls to *other* functions
    of a mutual group (Section 9); without it, cross-calls error.
    """

    def __init__(
        self,
        func: CheckedFunction,
        bindings: Bindings,
        on_call: CallHandler,
        on_cross_call=None,
    ) -> None:
        self.func = func
        self.bindings = bindings
        self.on_call = on_call
        self.on_cross_call = on_cross_call

    def evaluate(self, recursive_values: Tuple[int, ...]) -> object:
        """Evaluate the body at one cell of the recursion domain."""
        env: Dict[str, object] = {}
        for param in self.func.calling_params:
            env[param.name] = self.bindings[param.name]
        for param, value in zip(
            self.func.recursive_params, recursive_values
        ):
            env[param.name] = value
        return self._eval(self.func.body, env)

    # -- expression dispatch --------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Dict[str, object]) -> object:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, (ast.FloatLit,)):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.CharLit):
            return expr.value
        if isinstance(expr, ast.Var):
            return env[expr.name]
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.If):
            if self._eval(expr.cond, env):
                return self._eval(expr.then_branch, env)
            return self._eval(expr.else_branch, env)
        if isinstance(expr, ast.Call):
            args = tuple(
                self._as_ordinal(self._eval(a, env)) for a in expr.args
            )
            if expr.func != self.func.name:
                if self.on_cross_call is None:
                    raise RuntimeDslError(
                        f"{self.func.name!r} calls {expr.func!r} but no "
                        f"cross-call handler is installed (mutual groups "
                        f"run through repro.runtime.mutual)",
                        expr.span,
                    )
                return self.on_cross_call(expr.func, args)
            return self.on_call(args)
        if isinstance(expr, ast.SeqIndex):
            return self._eval_seq_index(expr, env)
        if isinstance(expr, ast.MatrixIndex):
            matrix = env[expr.matrix]
            assert isinstance(matrix, SubstitutionMatrix)
            row = self._eval(expr.row, env)
            col = self._eval(expr.col, env)
            return matrix.score(str(row), str(col))
        if isinstance(expr, ast.Field):
            return self._eval_field(expr, env)
        if isinstance(expr, ast.Emission):
            return self._eval_emission(expr, env)
        if isinstance(expr, ast.Reduce):
            return self._eval_reduce(expr, env)
        raise RuntimeDslError(
            f"interpreter cannot evaluate {expr!r}", expr.span
        )

    def _as_ordinal(self, value: object) -> int:
        """Recursive arguments map onto naturals (Section 3.2)."""
        return int(value)  # states/transitions are already indices

    def _eval_binop(self, expr: ast.BinOp, env: Dict[str, object]):
        op = expr.op
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if op == ast.BinOpKind.ADD:
            return left + right
        if op == ast.BinOpKind.SUB:
            return left - right
        if op == ast.BinOpKind.MUL:
            return left * right
        if op == ast.BinOpKind.DIV:
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise RuntimeDslError("integer division by zero",
                                          expr.span)
                return int(left / right)  # C-style truncation
            return left / right
        if op == ast.BinOpKind.MIN:
            return min(left, right)
        if op == ast.BinOpKind.MAX:
            return max(left, right)
        if op == ast.BinOpKind.LT:
            return left < right
        if op == ast.BinOpKind.GT:
            return left > right
        if op == ast.BinOpKind.LE:
            return left <= right
        if op == ast.BinOpKind.GE:
            return left >= right
        if op == ast.BinOpKind.EQ:
            return left == right
        if op == ast.BinOpKind.NE:
            return left != right
        raise RuntimeDslError(f"unknown operator {op}", expr.span)

    def _eval_seq_index(self, expr: ast.SeqIndex, env):
        seq = env[expr.seq]
        assert isinstance(seq, Sequence)
        index = self._eval(expr.index, env)
        return seq[int(index)]

    def _hmm_of(self, expr: ast.Expr) -> Hmm:
        subject_type = self.func.type_of(expr)
        if isinstance(subject_type, (StateType, TransitionType)):
            hmm = self.bindings[subject_type.hmm_param]
            assert isinstance(hmm, Hmm)
            return hmm
        raise RuntimeDslError(
            f"expression {expr} is not a state or transition", expr.span
        )

    def _eval_field(self, expr: ast.Field, env):
        hmm = self._hmm_of(expr.subject)
        subject_type = self.func.type_of(expr.subject)
        value = int(self._eval(expr.subject, env))
        if isinstance(subject_type, StateType):
            state = hmm.states[value]
            if expr.name == "isstart":
                return state.is_start
            if expr.name == "isend":
                return state.is_end
            if expr.name == "index":
                return state.index
            if expr.name == "transitionsto":
                return tuple(
                    t.index for t in hmm.transitions_to(state)
                )
            if expr.name == "transitionsfrom":
                return tuple(
                    t.index for t in hmm.transitions_from(state)
                )
        else:
            transition = hmm.transitions[value]
            if expr.name == "start":
                return transition.source
            if expr.name == "end":
                return transition.target
            if expr.name == "prob":
                return transition.prob
            if expr.name == "index":
                return transition.index
        raise RuntimeDslError(
            f"unknown field {expr.name!r}", expr.span
        )

    def _eval_emission(self, expr: ast.Emission, env):
        hmm = self._hmm_of(expr.state)
        state = hmm.states[int(self._eval(expr.state, env))]
        symbol = str(self._eval(expr.symbol, env))
        return state.emission(symbol)

    def _eval_reduce(self, expr: ast.Reduce, env):
        if isinstance(expr.source, ast.RangeExpr):
            lo = int(self._eval(expr.source.lo, env))
            hi = int(self._eval(expr.source.hi, env))
            source: tuple = tuple(range(lo, hi + 1))
        else:
            source = self._eval(expr.source, env)
        if not isinstance(source, tuple):
            raise RuntimeDslError(
                f"reduction source is not a set: {expr.source}",
                expr.source.span,
            )
        values = []
        for item in source:
            env[expr.var] = item
            values.append(self._eval(expr.body, env))
        env.pop(expr.var, None)
        is_prob = isinstance(self.func.type_of(expr), ProbType)
        if expr.kind == ast.ReduceKind.SUM:
            return sum(values, 0.0 if is_prob else 0)
        if not values:
            if expr.kind == ast.ReduceKind.MAX and is_prob:
                # No path into this cell: probability 0.
                return 0.0
            raise RuntimeDslError(
                f"{expr.kind.value} over an empty transition set",
                expr.span,
            )
        if expr.kind == ast.ReduceKind.MIN:
            return min(values)
        return max(values)


def domain_extents(
    func: CheckedFunction,
    bindings: Bindings,
    initial: Optional[Dict[str, int]] = None,
) -> Tuple[int, ...]:
    """Extent of each recursion dimension, from the bindings.

    * index params span ``0..len(seq)`` inclusive (extent len+1);
    * int params need an initial value (extent value+1, Section 3.2);
    * state/transition params span the model's state/transition count.
    """
    initial = initial or {}
    extents = []
    for param in func.recursive_params:
        ptype = param.type
        if isinstance(ptype, IndexType):
            seq = bindings[ptype.seq_param]
            if not isinstance(seq, Sequence):
                raise RuntimeDslError(
                    f"parameter {ptype.seq_param!r} must be a Sequence, "
                    f"got {type(seq).__name__}"
                )
            extents.append(len(seq) + 1)
        elif isinstance(ptype, IntType):
            if param.name not in initial:
                raise RuntimeDslError(
                    f"integer dimension {param.name!r} needs an initial "
                    f"value to fix its domain (Section 3.2)"
                )
            extents.append(initial[param.name] + 1)
        elif isinstance(ptype, StateType):
            hmm = bindings[ptype.hmm_param]
            if not isinstance(hmm, Hmm):
                raise RuntimeDslError(
                    f"parameter {ptype.hmm_param!r} must be a Hmm, got "
                    f"{type(hmm).__name__}"
                )
            extents.append(hmm.n_states)
        elif isinstance(ptype, TransitionType):
            hmm = bindings[ptype.hmm_param]
            if not isinstance(hmm, Hmm):
                raise RuntimeDslError(
                    f"parameter {ptype.hmm_param!r} must be a Hmm, got "
                    f"{type(hmm).__name__}"
                )
            extents.append(hmm.n_transitions)
        else:
            raise RuntimeDslError(
                f"cannot size dimension {param.name!r} of type {ptype}"
            )
    return tuple(extents)


def memoised(
    func: CheckedFunction,
    bindings: Bindings,
    recursion_limit: int = 100_000,
) -> Callable[[Tuple[int, ...]], object]:
    """The memoised recursive oracle: call it with recursive args."""
    cache: Dict[Tuple[int, ...], object] = {}
    evaluator: Evaluator

    def call(args: Tuple[int, ...]) -> object:
        if args in cache:
            return cache[args]
        result = evaluator.evaluate(args)
        cache[args] = result
        return result

    evaluator = Evaluator(func, bindings, call)
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, recursion_limit))

    return call
