"""Execution of mutually recursive groups (Section 9).

The global time axis interleaves the group's functions: at partition
``p``, every function evaluates its cells with ``S_f(x) + o_f == p``,
then the group synchronises. Two engines:

* :class:`MutualTabulator` — serial evaluation in global partition
  order (the functional reference);
* :class:`MutualLockStep` — barrier semantics with race detection:
  a cell may only read cells (of any table in the group) written at a
  strictly earlier global partition.

Pricing uses the same warp-batch model as single kernels, summed over
the group per global partition (:func:`mutual_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..analysis.domain import Domain
from ..gpu.spec import DeviceSpec, GTX480
from ..ir.lower import lower_function
from ..lang.errors import RuntimeDslError
from ..lang.typecheck import CheckedFunction
from ..lang.types import IntType
from ..schedule.mutual_rec import MutualSchedule, find_mutual_schedules
from .interpreter import Evaluator, domain_extents
from .values import Bindings


class MutualRaceError(RuntimeDslError):
    """A cross-table read was not separated by a barrier."""


@dataclass
class MutualResult:
    """A solved mutual group."""

    tables: Dict[str, np.ndarray]
    mutual: MutualSchedule
    domains: Dict[str, Domain]
    seconds: float

    def value(self, name: str, coords: Tuple[int, ...]):
        """Read one cell of one function's table."""
        return self.tables[name][coords]


class _GroupEvaluation:
    """Shared plumbing of the two mutual engines."""

    def __init__(
        self,
        funcs: Mapping[str, CheckedFunction],
        bindings: Mapping[str, Bindings],
        mutual: MutualSchedule,
        initial: Optional[Mapping[str, Dict[str, int]]] = None,
    ) -> None:
        initial = initial or {}
        self.funcs = dict(funcs)
        self.mutual = mutual
        self.bindings = {name: bindings[name] for name in funcs}
        self.domains = {
            name: Domain(
                func.dim_names,
                domain_extents(
                    func, self.bindings[name], initial.get(name)
                ),
            )
            for name, func in funcs.items()
        }
        self.tables = {
            name: np.zeros(
                self.domains[name].extents,
                dtype=np.int64
                if isinstance(func.return_type, IntType)
                else np.float64,
            )
            for name, func in funcs.items()
        }
        self.filled = {
            name: np.zeros(self.domains[name].extents, dtype=bool)
            for name in funcs
        }

    def read(self, name: str, args: Tuple[int, ...]):
        domain = self.domains[name]
        if not domain.contains_tuple(args):
            raise RuntimeDslError(
                f"call {name}{args} leaves the domain {domain}"
            )
        if not self.filled[name][args]:
            raise RuntimeDslError(
                f"cell {name}{args} read before it was computed; the "
                f"schedules {self.mutual} are not compatible"
            )
        value = self.tables[name][args]
        return (
            int(value)
            if self.tables[name].dtype.kind == "i"
            else float(value)
        )

    def cells_by_partition(self):
        """Global partition -> list of (function, point)."""
        buckets: Dict[int, list] = {}
        for name, domain in self.domains.items():
            fs = self.mutual[name]
            for point in domain.points():
                buckets.setdefault(
                    fs.partition_of(point), []
                ).append((name, point))
        return dict(sorted(buckets.items()))


class MutualTabulator(_GroupEvaluation):
    """Serial evaluation of a group, in global partition order."""

    def run(self) -> Dict[str, np.ndarray]:
        """Evaluate the group serially; returns the tables."""
        evaluators = {
            name: Evaluator(
                func,
                self.bindings[name],
                on_call=lambda args, n=name: self.read(n, args),
                on_cross_call=self.read,
            )
            for name, func in self.funcs.items()
        }
        for _, cells in self.cells_by_partition().items():
            for name, point in cells:
                self.tables[name][point] = (
                    evaluators[name].evaluate(point)
                )
                self.filled[name][point] = True
        return self.tables


class MutualLockStep(_GroupEvaluation):
    """Barrier semantics: partitions commit atomically; reads must
    target strictly earlier partitions (of any table)."""

    def run(self) -> Dict[str, np.ndarray]:
        """Evaluate with barrier semantics; returns the tables."""
        written_at = {
            name: np.full(self.domains[name].extents, -1,
                          dtype=np.int64)
            for name in self.funcs
        }
        current = {"p": 0}

        def read_checked(name: str, args: Tuple[int, ...]):
            domain = self.domains[name]
            if not domain.contains_tuple(args):
                raise RuntimeDslError(
                    f"call {name}{args} leaves the domain {domain}"
                )
            stamp = written_at[name][args]
            if stamp < 0 or stamp >= current["p"]:
                raise MutualRaceError(
                    f"cell {name}{args} (written at partition {stamp}) "
                    f"read by partition {current['p']}: the group's "
                    f"schedules are not compatible"
                )
            value = self.tables[name][args]
            return (
                int(value)
                if self.tables[name].dtype.kind == "i"
                else float(value)
            )

        evaluators = {
            name: Evaluator(
                func,
                self.bindings[name],
                on_call=lambda args, n=name: read_checked(n, args),
                on_cross_call=read_checked,
            )
            for name, func in self.funcs.items()
        }
        for partition, cells in self.cells_by_partition().items():
            current["p"] = partition
            staged = []
            for name, point in cells:
                staged.append(
                    (name, point, evaluators[name].evaluate(point))
                )
            for name, point, value in staged:  # the barrier
                self.tables[name][point] = value
                written_at[name][point] = partition
                self.filled[name][point] = True
        return self.tables


class MutualCompiled(_GroupEvaluation):
    """Compiled execution: one generated module drives the group.

    The group backend inlines every member's space loops under a
    single global time loop (see :mod:`repro.ir.groupbackend`); this
    is the fast functional path for mutual groups, validated against
    the interpreted engines in the test-suite.
    """

    def run(self) -> Dict[str, np.ndarray]:
        """Run the generated group module; returns the tables."""
        from ..ir.groupbackend import compile_group
        from ..ir.kernel import build_kernel
        from .context import build_context

        kernels = {
            name: build_kernel(
                func, self.mutual[name].schedule,
                compute_window=False,
            )
            for name, func in self.funcs.items()
        }
        ctxs = {
            name: build_context(
                kernels[name], self.bindings[name], self.domains[name]
            )
            for name in self.funcs
        }
        run, self.source = compile_group(kernels, self.mutual)
        global_lo, global_hi = self.mutual.global_range(self.domains)
        run(self.tables, ctxs, global_lo, global_hi)
        for name in self.funcs:
            self.filled[name][...] = True
        return self.tables


class MutualVectorised(_GroupEvaluation):
    """Vectorised compiled execution: each member's space sweep runs
    as NumPy lanes under the single global time loop.

    The vector group backend
    (:func:`repro.ir.npbackend.compile_vector_group`) is the lane-wise
    twin of the scalar group module — same global partition
    interleaving, whole partitions at a time. Falls back with a
    :class:`~repro.lang.errors.CodegenError` when a member fails the
    vector shape rules (the caller can retry ``engine="compiled"``).
    """

    def run(self) -> Dict[str, np.ndarray]:
        """Run the vectorised group module; returns the tables."""
        from ..ir.kernel import build_kernel
        from ..ir.npbackend import compile_vector_group
        from .context import build_context

        kernels = {
            name: build_kernel(
                func, self.mutual[name].schedule,
                compute_window=False,
            )
            for name, func in self.funcs.items()
        }
        ctxs = {
            name: build_context(
                kernels[name], self.bindings[name], self.domains[name]
            )
            for name in self.funcs
        }
        run, self.source = compile_vector_group(kernels, self.mutual)
        global_lo, global_hi = self.mutual.global_range(self.domains)
        run(self.tables, ctxs, global_lo, global_hi)
        for name in self.funcs:
            self.filled[name][...] = True
        return self.tables


def mutual_cost(
    funcs: Mapping[str, CheckedFunction],
    mutual: MutualSchedule,
    domains: Mapping[str, Domain],
    spec: DeviceSpec = GTX480,
    mean_degree: float = 1.0,
) -> float:
    """Device seconds for one mutual-group launch.

    Per global partition, each function contributes its warp batches;
    one barrier closes the partition.
    """
    per_cell = {}
    for name, func in funcs.items():
        body = lower_function(func)
        totals = body.counts.scaled_total(mean_degree)
        per_cell[name] = (
            totals["arith"] * spec.arith_cycles
            + totals["compare"] * spec.compare_cycles
            + totals["select"] * spec.select_cycles
            + totals["special"] * spec.special_cycles
            + (
                totals["table_reads"] * spec.global_read_cycles
                + totals["seq_reads"] * spec.shared_read_cycles
                + totals["matrix_reads"] * spec.shared_read_cycles
                + totals["hmm_reads"] * spec.shared_read_cycles
            )
            + spec.global_write_cycles
        )

    # Partition-size profiles per function, aligned on the global axis.
    low, high = mutual.global_range(domains)
    cycles = 0.0
    from ..gpu.timing import partition_sizes

    for name, func in funcs.items():
        fs = mutual[name]
        sizes = partition_sizes(fs.schedule, domains[name])
        batches = np.ceil(sizes / spec.warp_size)
        cycles += float(batches.sum()) * per_cell[name]
    cycles += (high - low + 1) * spec.sync_cycles
    return cycles / spec.clock_hz


def solve_mutual(
    funcs: Mapping[str, CheckedFunction],
    bindings: Mapping[str, Bindings],
    initial: Optional[Mapping[str, Dict[str, int]]] = None,
    coeff_bound: int = 2,
    offset_bound: int = 2,
    lockstep: bool = True,
    spec: DeviceSpec = GTX480,
    engine: Optional[str] = None,
) -> MutualResult:
    """Schedule and evaluate one mutual group, end to end.

    ``engine``: ``"vector"`` (vectorised group module — fastest),
    ``"compiled"`` (generated scalar group module), ``"lockstep"``
    (interpreted, with barrier/race checking) or ``"serial"``
    (interpreted tabulation). Defaults to lockstep (or serial when
    ``lockstep=False``, the legacy switch).
    """
    initial = initial or {}
    domains = {
        name: Domain(
            func.dim_names,
            domain_extents(func, bindings[name], initial.get(name)),
        )
        for name, func in funcs.items()
    }
    mutual = find_mutual_schedules(
        funcs, domains, coeff_bound, offset_bound
    )
    if engine is None:
        engine = "lockstep" if lockstep else "serial"
    engine_cls = {
        "vector": MutualVectorised,
        "compiled": MutualCompiled,
        "lockstep": MutualLockStep,
        "serial": MutualTabulator,
    }.get(engine)
    if engine_cls is None:
        raise RuntimeDslError(f"unknown mutual engine {engine!r}")
    engine = engine_cls(funcs, bindings, mutual, initial)
    tables = engine.run()
    seconds = mutual_cost(funcs, mutual, domains, spec)
    return MutualResult(tables, mutual, domains, seconds)
