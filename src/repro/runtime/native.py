"""Native execution: compile emitted C99 with ``cc``, run via ctypes.

This is the fastest rung of the backend ladder (native > vector >
scalar): :mod:`repro.ir.cbackend` emits a portable C99 translation
unit for a kernel, this module builds it into a shared object with
the system compiler and dispatches whole runs — every partition, one
call — through ``ctypes`` on the *same* numpy table and context
buffers the other backends use (the C code writes straight into the
table's memory; nothing is copied for contiguous tables).

Robustness contract:

* **Toolchain probe** — ``cc``/``gcc``/``clang`` (override with
  ``REPRO_CC``) are probed once per process with a real test
  compilation; the verdict is cached, so an environment without a
  compiler pays the probe exactly once and every engine falls back
  down the ladder with a machine-readable
  :class:`~repro.ir.npbackend.Eligibility` reason.
  ``REPRO_NATIVE_DISABLE=1`` force-disables the backend (checked on
  every call, not cached — tests rely on that).
* **Segfault-guarded load** — a freshly built (or cache-restored)
  ``.so`` is first ``dlopen``-ed in a *subprocess*; if that probe
  dies — including by signal — the library is never loaded into this
  process and a :class:`~repro.lang.errors.NativeBuildError` (a
  permanent ``DslError``, never retried) is raised instead.
* **Content-addressed artifacts** — builds land in
  ``$REPRO_NATIVE_CACHE_DIR`` (or a per-process temp dir) under the
  sha256 of (source, compiler, flags), so recompilation is skipped
  whenever the artifact already exists.

OpenMP is **on by default when the toolchain probe finds
``-fopenmp``**: the emitter adds ``#pragma omp parallel for`` over
each partition's lane loop (the paper's parfor over cells) and over
the batched entry's problem loop, and the build adds ``-fopenmp``.
``REPRO_NATIVE_OMP=0`` forces the serial build — bitwise-identical
by construction, since the parallel axes (cells of one partition,
problems of one batch) never share a written cell and every
reduction stays serial inside its cell. ``REPRO_NATIVE_THREADS=N``
caps the OpenMP team size (applied via the emitted
``repro_set_threads`` export when each library loads). The pragmas
themselves are certificate-gated: :func:`repro.ir.cbackend
.emit_native_source` consults :mod:`repro.verify.races` and emits a
pragma only on axes with a CONFIRMED parallel-safety verdict, so an
unproved kernel builds a pragma-free (serial-native) TU with its own
content hash.

``REPRO_NATIVE_SANITIZE=address,undefined`` builds *instrumented*
translation units — the dynamic, independent check on the static
race certificates. The sanitizer flags join the build flags (and
therefore the content-address digest, so instrumented and plain
artifacts never collide); the ``dlopen`` probe subprocess and the
sandbox workers run with ``ASAN_OPTIONS=verify_asan_link_order=0``
(the Python binary is not ASan-linked, so the runtime arrives via
the ``.so`` rather than first in the initial library list) plus
``detect_leaks=0`` (the interpreter's own allocations are not this
backend's findings). Because ASan reads ``/proc/self/environ``
directly — immune to ``putenv`` after start-up — sanitized libraries
are **never** loaded in-process: every launch routes through the
sandbox worker pool. Sanitized artifacts are also never embedded
into ``native-so`` service-cache records
(:mod:`repro.service.cache` skips them).
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..gpu.spec import GTX480
from ..gpu.timing import window_fits_shared
from ..ir import cbackend
from ..ir.kernel import Kernel
from ..ir.npbackend import Eligibility
from ..lang.errors import NativeBuildError

#: ``part_lo``/``part_hi`` sentinels for "no clamp" (any real
#: partition index is strictly inside this range).
_NO_LO = -(2 ** 62)
_NO_HI = 2 ** 62

_CFLAGS = ("-std=c99", "-O2", "-fPIC", "-shared")

#: Memoised toolchain probe: ``(cc_path_or_None, openmp_ok, detail)``.
_TOOLCHAIN: Optional[Tuple[Optional[str], bool, str]] = None

#: Per-process fallback build directory (created lazily).
_BUILD_DIR: Optional[str] = None

#: Shared objects already probed (and passed) in this process.
_PROBED: Dict[str, bool] = {}


def _candidate_compilers() -> List[str]:
    override = os.environ.get("REPRO_CC")
    if override:
        return [override]
    return ["cc", "gcc", "clang"]


def build_dir() -> str:
    """Where compiled ``.so`` artifacts live for this process."""
    global _BUILD_DIR
    configured = os.environ.get("REPRO_NATIVE_CACHE_DIR")
    if configured:
        path = os.path.expanduser(configured)
        os.makedirs(path, exist_ok=True)
        return path
    if _BUILD_DIR is None:
        _BUILD_DIR = tempfile.mkdtemp(prefix="repro-native-")
        atexit.register(shutil.rmtree, _BUILD_DIR, True)
    return _BUILD_DIR


def toolchain() -> Tuple[Optional[str], bool, str]:
    """Probe (once) for a working C compiler.

    Returns ``(cc, openmp_ok, detail)``; ``cc`` is ``None`` when no
    candidate both exists and compiles a trivial shared object.
    """
    global _TOOLCHAIN
    if _TOOLCHAIN is not None:
        return _TOOLCHAIN
    probe_src = "int repro_probe(int x) { return x + 1; }\n"
    tried: List[str] = []
    for name in _candidate_compilers():
        path = shutil.which(name)
        if path is None:
            tried.append(f"{name}: not found")
            continue
        with tempfile.TemporaryDirectory(
            prefix="repro-ccprobe-"
        ) as tmp:
            src = os.path.join(tmp, "probe.c")
            out = os.path.join(tmp, "probe.so")
            with open(src, "w") as handle:
                handle.write(probe_src)
            base = [path, *_CFLAGS, "-o", out, src, "-lm"]
            try:
                result = subprocess.run(
                    base, capture_output=True, timeout=60,
                )
            except (OSError, subprocess.TimeoutExpired) as err:
                tried.append(f"{name}: {err}")
                continue
            if result.returncode != 0:
                tried.append(
                    f"{name}: exit {result.returncode}"
                )
                continue
            omp = subprocess.run(
                [path, *_CFLAGS, "-fopenmp", "-o", out, src, "-lm"],
                capture_output=True, timeout=60,
            ).returncode == 0
            _TOOLCHAIN = (path, omp, f"system compiler {path}")
            return _TOOLCHAIN
    _TOOLCHAIN = (
        None, False,
        "no working C compiler (" + "; ".join(tried) + ")",
    )
    return _TOOLCHAIN


def reset_toolchain_cache() -> None:
    """Forget the probe verdict (tests exercising the no-cc path)."""
    global _TOOLCHAIN
    _TOOLCHAIN = None


def available() -> Eligibility:
    """Can this process use the native backend at all?

    The environment kill-switch is consulted on every call; the
    compiler probe itself is paid once per process.
    """
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        return Eligibility(
            False, "disabled",
            "native backend disabled by REPRO_NATIVE_DISABLE",
        )
    cc, _omp, detail = toolchain()
    if cc is None:
        return Eligibility(False, "no-compiler", detail)
    return Eligibility(True, "ok", detail)


def _use_openmp() -> bool:
    """OpenMP policy: default on when the toolchain probe found
    ``-fopenmp``; ``REPRO_NATIVE_OMP=0`` opts out (``1`` and unset
    are equivalent). Checked fresh on every build so tests can flip
    the environment without resetting caches."""
    if os.environ.get("REPRO_NATIVE_OMP") == "0":
        return False
    _cc, omp, _detail = toolchain()
    return omp


#: Recognised ``REPRO_NATIVE_SANITIZE`` components and their flags.
_SANITIZERS = {
    "address": "-fsanitize=address",
    "undefined": "-fsanitize=undefined",
}


def sanitize_flags() -> Tuple[str, ...]:
    """Extra cflags for ``REPRO_NATIVE_SANITIZE`` (empty when unset).

    The variable is a comma-separated subset of ``address`` and
    ``undefined``; unknown names raise immediately (a typo silently
    building uninstrumented kernels would defeat the whole point).
    Instrumented builds keep symbols and frames so findings name the
    emitted entry points. Read fresh on every build, like the OpenMP
    opt-out.
    """
    raw = os.environ.get("REPRO_NATIVE_SANITIZE", "").strip()
    if not raw:
        return ()
    flags: List[str] = []
    for name in raw.split(","):
        name = name.strip().lower()
        if not name:
            continue
        if name not in _SANITIZERS:
            raise NativeBuildError(
                f"unknown sanitizer {name!r} in REPRO_NATIVE_SANITIZE"
                f" (expected a comma list of: "
                f"{', '.join(sorted(_SANITIZERS))})"
            )
        flags.append(_SANITIZERS[name])
    if not flags:
        return ()
    return tuple(flags) + ("-g", "-fno-omit-frame-pointer")


def sanitize_active() -> bool:
    """Is this process building instrumented translation units?"""
    return bool(sanitize_flags())


def _sanitizer_env() -> Dict[str, str]:
    """Runtime options every sanitized load needs.

    ``verify_asan_link_order=0`` because the interpreter is not
    ASan-linked (the runtime enters via our ``dlopen``-ed ``.so``);
    ``detect_leaks=0`` because LSan would report the interpreter's
    own allocations at exit; ``halt_on_error=1`` so a UBSan finding
    fails the probe subprocess instead of scrolling past.
    """
    return {
        "ASAN_OPTIONS": "verify_asan_link_order=0:detect_leaks=0",
        "UBSAN_OPTIONS": "halt_on_error=1:print_stacktrace=1",
    }


def _export_sanitizer_env() -> None:
    """Publish the sanitizer runtime options process-wide (children —
    probe subprocesses, sandbox workers — inherit them; an explicit
    user setting wins)."""
    for key, value in _sanitizer_env().items():
        os.environ.setdefault(key, value)


def thread_count() -> Optional[int]:
    """The ``REPRO_NATIVE_THREADS`` cap, or ``None`` when unset or
    unparseable (let the OpenMP runtime pick)."""
    raw = os.environ.get("REPRO_NATIVE_THREADS")
    if not raw:
        return None
    try:
        n = int(raw)
    except ValueError:
        return None
    return n if n >= 1 else None


def effective_threads() -> int:
    """How many threads a native launch will use: 1 when OpenMP is
    off (env opt-out or unsupported toolchain), else the
    ``REPRO_NATIVE_THREADS`` cap, else every core."""
    if not _use_openmp():
        return 1
    forced = thread_count()
    if forced is not None:
        return forced
    return max(1, os.cpu_count() or 1)


def _apply_thread_cap(lib: ctypes.CDLL) -> None:
    """Push the ``REPRO_NATIVE_THREADS`` cap into a freshly loaded
    library via its ``repro_set_threads`` export (a no-op symbol in
    serial builds, so this is always safe)."""
    forced = thread_count()
    if forced is None:
        return
    setter = getattr(lib, "repro_set_threads", None)
    if setter is None:
        return  # pre-existing cache artifact without the export
    setter.restype = None
    setter.argtypes = [ctypes.c_long]
    setter(forced)


def build_shared_object(source: str) -> str:
    """Compile ``source`` into a content-addressed ``.so``.

    The artifact path is ``<sha256(cc, flags, source)>.so`` under
    :func:`build_dir`; an existing artifact short-circuits the
    compiler entirely (warm starts across processes when
    ``REPRO_NATIVE_CACHE_DIR`` is shared).
    """
    cc, _omp, detail = toolchain()
    if cc is None:
        raise NativeBuildError(detail)
    flags = list(_CFLAGS)
    if _use_openmp():
        flags.append("-fopenmp")
    sanitize = sanitize_flags()
    if sanitize:
        flags.extend(sanitize)
        _export_sanitizer_env()
    digest = hashlib.sha256(
        "\x00".join([cc, " ".join(flags), source]).encode("utf-8")
    ).hexdigest()
    directory = build_dir()
    so_path = os.path.join(directory, digest + ".so")
    if os.path.exists(so_path):
        return so_path
    src_path = os.path.join(directory, digest + ".c")
    # The temp name must be unique per *build*, not per process: two
    # worker threads compiling the same kernel concurrently share a
    # pid, and a pid-suffixed name lets the second cc truncate the
    # file while the first publishes it — torn (even empty) .so
    # artifacts. mkstemp gives each build its own output; identical
    # content makes the concurrent replaces a benign last-writer-wins.
    fd, tmp_out = tempfile.mkstemp(
        prefix=digest + ".tmp", suffix=".so", dir=directory
    )
    os.close(fd)
    try:
        with open(src_path, "w") as handle:
            handle.write(source)
        result = subprocess.run(
            [cc, *flags, "-o", tmp_out, src_path, "-lm"],
            capture_output=True, timeout=300,
        )
    except (OSError, subprocess.TimeoutExpired) as err:
        _remove_quietly(tmp_out)
        raise NativeBuildError(f"native build failed: {err}") from err
    if result.returncode != 0:
        _remove_quietly(tmp_out)
        stderr = result.stderr.decode("utf-8", "replace").strip()
        raise NativeBuildError(
            f"{cc} exited {result.returncode} compiling kernel "
            f"module:\n{stderr[:2000]}"
        )
    if os.path.getsize(tmp_out) == 0:
        _remove_quietly(tmp_out)
        raise NativeBuildError(
            f"{cc} exited 0 but produced an empty shared object"
        )
    os.replace(tmp_out, so_path)
    return so_path


def _remove_quietly(path: str) -> None:
    """Best-effort unlink of a build leftover."""
    try:
        os.remove(path)
    except OSError:
        pass


def probe_shared_object(so_path: str) -> None:
    """``dlopen`` the library in a throwaway subprocess first.

    A corrupt or ABI-incompatible artifact can take the whole process
    down inside ``dlopen``; the probe confines that blast radius to a
    child. Failure — any nonzero exit, including death by signal —
    raises :class:`NativeBuildError`, which is a permanent
    ``DslError``: the supervisor and service will not retry it.
    Verdicts are memoised per path for the life of the process.
    """
    if _PROBED.get(so_path):
        return
    env = None
    if sanitize_active():
        _export_sanitizer_env()
        env = dict(os.environ)
    try:
        result = subprocess.run(
            [
                sys.executable, "-c",
                "import ctypes, sys; ctypes.CDLL(sys.argv[1])",
                so_path,
            ],
            capture_output=True, timeout=60, env=env,
        )
    except (OSError, subprocess.TimeoutExpired) as err:
        raise NativeBuildError(
            f"subprocess dlopen probe failed for {so_path}: {err}"
        ) from err
    if result.returncode != 0:
        reason = (
            f"died with signal {-result.returncode}"
            if result.returncode < 0
            else f"exited {result.returncode}"
        )
        stderr = result.stderr.decode("utf-8", "replace").strip()
        raise NativeBuildError(
            f"subprocess dlopen probe of {so_path} {reason}"
            + (f": {stderr[:500]}" if stderr else "")
        )
    _PROBED[so_path] = True


def _argtypes_for(spec) -> List[object]:
    """ctypes argtypes matching a :func:`native_param_spec` (or
    batched) parameter list."""
    types: List[object] = []
    for param in spec:
        if "*" in param.ctext:
            types.append(ctypes.c_void_p)
        elif param.ctext == "double":
            types.append(ctypes.c_double)
        else:
            types.append(ctypes.c_long)
    return types


class NativeRun:
    """The compiled-kernel callable for a loaded shared object.

    Speaks the backend calling convention —
    ``run(T, ctx, part_lo=None, part_hi=None)`` — and picks the
    ring-buffer entry point per call when the kernel has a constant
    window that fits the simulated device's shared memory
    (:func:`repro.gpu.timing.window_fits_shared` — the same Section
    4.8 residency decision the analytic cost model prices).
    """

    def __init__(
        self, kernel: Kernel, so_path: str, spec=None
    ) -> None:
        self.kernel = kernel
        self.so_path = so_path
        self.spec = spec or GTX480
        self._lib = ctypes.CDLL(so_path)
        _apply_thread_cap(self._lib)
        self._spec = cbackend.native_param_spec(kernel)
        self._plain = getattr(
            self._lib, cbackend.entry_symbol(kernel)
        )
        self._plain.restype = None
        self._plain.argtypes = _argtypes_for(self._spec)
        # A window-capable kernel whose ring certificate was refused
        # builds without the windowed entry (the emitter suppresses
        # it); the plain entry serves every launch then.
        self._windowed = None
        if cbackend.supports_window(kernel):
            self._windowed = getattr(
                self._lib,
                cbackend.entry_symbol(kernel, windowed=True),
                None,
            )
            if self._windowed is not None:
                self._windowed.restype = None
                self._windowed.argtypes = _argtypes_for(self._spec)

    def _use_window(self, ctx: Dict[str, object]) -> bool:
        if self._windowed is None:
            return False
        from ..analysis.domain import Domain

        extents = tuple(
            int(ctx[f"ub_{d}"]) + 1 for d in self.kernel.dims
        )
        domain = Domain(self.kernel.dims, extents)
        return window_fits_shared(
            self.kernel, self.kernel.schedule, domain, self.spec
        )

    def __call__(
        self,
        T: np.ndarray,
        ctx: Dict[str, object],
        part_lo: Optional[int] = None,
        part_hi: Optional[int] = None,
    ) -> np.ndarray:
        table = np.ascontiguousarray(T)
        args: List[object] = []
        keepalive: List[np.ndarray] = []
        for param in self._spec:
            if param.kind == "table":
                args.append(table.ctypes.data)
            elif param.name == "part_lo":
                args.append(_NO_LO if part_lo is None else int(part_lo))
            elif param.name == "part_hi":
                args.append(_NO_HI if part_hi is None else int(part_hi))
            elif param.kind == "ub":
                args.append(int(ctx[param.key]))
            elif param.kind == "cols":
                args.append(int(np.asarray(ctx[param.key]).shape[1]))
            elif param.kind == "scalar_int":
                args.append(int(ctx[param.key]))
            elif param.kind == "scalar_f64":
                args.append(float(ctx[param.key]))
            else:
                dtype = {
                    "i64[]": np.int64,
                    "i32[]": np.int32,
                    "f64[]": np.float64,
                }[param.kind]
                arr = np.ascontiguousarray(ctx[param.key], dtype=dtype)
                keepalive.append(arr)
                args.append(arr.ctypes.data)
        entry = (
            self._windowed if self._use_window(ctx) else self._plain
        )
        entry(*args)
        if table is not T:
            np.copyto(T, table)
        return T


class NativeBatchedRun:
    """Callable for the batched entry point of a loaded library.

    Speaks the *batched* calling convention of the vector batcher's
    compiled twin — ``run(T, ctx, part_lo=None, part_hi=None)`` where
    ``T`` is the padded ``(B, d0max, ...)`` group table and ``ctx``
    is ``pack_group``'s stacked context (``(B, 1)`` bounds,
    ``(B, Lmax)`` sequences, ``(B, 1)`` scalar columns, shared
    models) — so a whole same-kernel map group is one ``ctypes``
    call. Batch size and padded extents marshal straight off
    ``T.shape``; nothing else about the convention is new.
    """

    batched = True

    def __init__(self, kernel: Kernel, so_path: str) -> None:
        self.kernel = kernel
        self.so_path = so_path
        self._lib = ctypes.CDLL(so_path)
        _apply_thread_cap(self._lib)
        self._spec = cbackend.native_batched_param_spec(kernel)
        self._entry = getattr(
            self._lib, cbackend.entry_symbol(kernel, batched=True)
        )
        self._entry.restype = None
        self._entry.argtypes = _argtypes_for(self._spec)

    def __call__(
        self,
        T: np.ndarray,
        ctx: Dict[str, object],
        part_lo: Optional[int] = None,
        part_hi: Optional[int] = None,
    ) -> np.ndarray:
        table = np.ascontiguousarray(T)
        args: List[object] = []
        keepalive: List[np.ndarray] = []
        pad_axis = 1
        for param in self._spec:
            if param.kind == "table":
                args.append(table.ctypes.data)
            elif param.kind == "nprob":
                args.append(int(table.shape[0]))
            elif param.kind == "pad":
                args.append(int(table.shape[pad_axis]))
                pad_axis += 1
            elif param.name == "part_lo":
                args.append(_NO_LO if part_lo is None else int(part_lo))
            elif param.name == "part_hi":
                args.append(_NO_HI if part_hi is None else int(part_hi))
            elif param.kind == "cols":
                args.append(int(np.asarray(ctx[param.key]).shape[1]))
            else:
                dtype = {
                    "i64[]": np.int64,
                    "i32[]": np.int32,
                    "f64[]": np.float64,
                }[param.kind]
                arr = np.ascontiguousarray(ctx[param.key], dtype=dtype)
                keepalive.append(arr)
                args.append(arr.ctypes.data)
        self._entry(*args)
        if table is not T:
            np.copyto(T, table)
        return T


def compile_native(kernel: Kernel):
    """Emit, build, probe and load one kernel natively.

    Returns ``(run, source, so_path)``; raises
    :class:`NativeBuildError` on any failure (no compiler, compile
    error, probe death).
    """
    verdict = available()
    if not verdict.ok:
        raise NativeBuildError(verdict.detail)
    source = cbackend.emit_native_source(
        kernel, openmp=_use_openmp()
    )
    so_path = build_shared_object(source)
    probe_shared_object(so_path)
    return _make_run(kernel, so_path), source, so_path


def _make_run(kernel: Kernel, so_path: str):
    """In-process ``NativeRun``, or the sandbox proxy when enabled.

    When ``REPRO_NATIVE_SANDBOX=1`` (or :func:`repro.runtime.sandbox
    .configure`) the ``.so`` is never ``CDLL``-ed into this process:
    the proxy ships launches to a worker subprocess instead, so a
    segfault in the generated C kills only the worker.

    Sanitized builds are *always* sandboxed: the ASan runtime reads
    ``/proc/self/environ`` directly, so ``verify_asan_link_order=0``
    cannot be injected into an already-running interpreter — only a
    freshly exec'd worker (whose initial environ carries the exported
    options) can ``dlopen`` the instrumented library. A finding
    aborts the worker, which surfaces as a contained crash instead of
    taking the session down.
    """
    from . import sandbox

    if sandbox.enabled() or sanitize_active():
        return sandbox.SandboxedNativeRun(kernel, so_path)
    return NativeRun(kernel, so_path)


def load_compiled(kernel: Kernel, so_path: str):
    """Load an existing artifact (persistent-cache warm path).

    Still routed through the subprocess probe — a cache-restored
    ``.so`` gets no more trust than a fresh build.
    """
    probe_shared_object(so_path)
    return _make_run(kernel, so_path)


def load_batched(kernel: Kernel, so_path: str):
    """Batched-entry callable for an already-built artifact.

    The library was probed when its per-problem run loaded; loading a
    second handle for the batched symbol is the same ``dlopen``
    (refcounted by the loader). Sandboxed processes get a proxy that
    ships whole batched launches to a worker instead.
    """
    from . import sandbox

    probe_shared_object(so_path)
    if sandbox.enabled() or sanitize_active():
        return sandbox.SandboxedNativeRun(kernel, so_path, batched=True)
    return NativeBatchedRun(kernel, so_path)
