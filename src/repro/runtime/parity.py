"""The cross-backend numeric agreement policy, in one place.

Three executable backends produce the same tables from the same
kernels: the scalar Python generator, the NumPy vector generator and
the native C backend. Integer tables must match **bitwise** in every
pair — any difference is a codegen bug or device corruption.

Float tables are bitwise *almost* everywhere:

* **native vs scalar is bitwise.** The emitted C helpers use the
  exact formulas of the scalar prelude (``logaddexp(a, b) =
  m + log(exp(a - m) + exp(b - m))`` with the same -inf guards,
  ``safelog``, truncating integer division) and both sides evaluate
  them through the platform libm in double precision, one cell at a
  time, in the same order.
* **vector vs anything is ulp-close, not bitwise.** NumPy's
  ``np.logaddexp`` ufunc is a different implementation of the same
  function; on log-space reduction kernels the accumulated difference
  stays within a few ulps per cell. Hence the float tolerance below:
  tight enough that real divergence (a wrong guard, a transposed
  index, a NaN payload, an exponent bit-flip) lands far outside it,
  loose enough that ulp noise never trips the oracle.

Everything that compares tables across backends — the divergence
oracle, the parity test suites, the bench harnesses — imports the
policy from here so a tolerance change happens once.
"""

from __future__ import annotations

import numpy as np

#: Relative tolerance for float tables across backends. Covers the
#: ulp-level spread of ``np.logaddexp`` vs the shared scalar/native
#: formula on log-space reductions.
FLOAT_RTOL = 1e-9

#: Absolute floor for values near zero (log space rarely gets there,
#: direct-mode probabilities do).
FLOAT_ATOL = 1e-12


def tables_agree(a: np.ndarray, b: np.ndarray) -> bool:
    """Backend-grade agreement: exact for ints, tight for floats.

    Float kernels may differ in the last few ulps between backends
    (``np.logaddexp`` vs the scalar/native helper); corruption
    payloads (NaN, exponent bit-flips) are far outside this
    tolerance.
    """
    if a.shape != b.shape:
        return False
    if a.dtype.kind != "f" or b.dtype.kind != "f":
        return bool(np.array_equal(a, b))
    return bool(
        np.allclose(
            a, b, rtol=FLOAT_RTOL, atol=FLOAT_ATOL, equal_nan=True
        )
    )
