"""Script execution: the runtime environment of the DSL.

The language is "designed to mimic the style of a scripting language"
(Section 3): declarations (alphabets, matrices, models, functions,
schedules) followed by imperative statements — ``let``, ``load``,
``print`` and the ``map`` primitive that applies a function across a
sequence collection (the inter-multiprocessor parallelisation).

:class:`ProgramRunner` evaluates a script against an
:class:`~repro.runtime.engine.Engine`; results (printed lines, map
outputs, timing reports) are collected on the returned
:class:`ScriptResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..extensions.hmm import Hmm
from ..extensions.submatrix import SubstitutionMatrix
from ..lang import ast
from ..lang.errors import RuntimeDslError
from ..lang.parser import parse_program
from ..lang.typecheck import CheckedFunction, CheckedProgram, check_program
from ..lang.types import IntType, SeqType
from .engine import Engine, MapResult, RunResult
from .sequences import read_fasta
from .values import Alphabet, Sequence


@dataclass
class ScriptResult:
    """Everything a script run produced."""

    printed: List[str] = field(default_factory=list)
    values: List[object] = field(default_factory=list)
    maps: Dict[str, MapResult] = field(default_factory=dict)
    runs: List[RunResult] = field(default_factory=list)

    @property
    def last(self) -> object:
        """The value of the script's final ``print``."""
        if not self.values:
            raise RuntimeDslError("the script printed nothing")
        return self.values[-1]


class ProgramRunner:
    """Executes checked programs statement by statement."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        echo: bool = False,
    ) -> None:
        self.engine = engine or Engine()
        self.echo = echo
        self.alphabets: Dict[str, Alphabet] = {}
        self.globals: Dict[str, object] = {}

    # -- entry points ---------------------------------------------------------

    def run_text(self, text: str) -> ScriptResult:
        """Parse, check and execute DSL source text."""
        return self.run(check_program(parse_program(text)))

    def run(self, checked: CheckedProgram) -> ScriptResult:
        """Execute a checked program."""
        result = ScriptResult()
        self.alphabets = {
            name: Alphabet(name, chars)
            for name, chars in checked.alphabets.items()
        }
        for name, decl in checked.matrices.items():
            self.globals[name] = SubstitutionMatrix.from_decl(
                decl, self.alphabets
            )
        for name, decl in checked.hmms.items():
            self.globals[name] = Hmm.from_decl(decl, self.alphabets)

        for stmt in checked.program.statements:
            if isinstance(stmt, ast.LetStmt):
                self.globals[stmt.name] = self._eval_value(stmt.value)
            elif isinstance(stmt, ast.LoadStmt):
                self._load(stmt)
            elif isinstance(stmt, ast.PrintStmt):
                self._print(stmt, checked, result)
            elif isinstance(stmt, ast.MapStmt):
                self._map(stmt, checked, result)
            # declarations were handled by the checker / above.
        return result

    # -- statement execution --------------------------------------------------

    def _load(self, stmt: ast.LoadStmt) -> None:
        if stmt.format != "fasta":
            raise RuntimeDslError(
                f"unknown load format {stmt.format!r} (only 'fasta')",
                stmt.span,
            )
        alphabet = self._infer_alphabet_for_file(stmt.path)
        self.globals[stmt.name] = read_fasta(stmt.path, alphabet)

    def _infer_alphabet_for_file(self, path: str) -> Alphabet:
        from pathlib import Path

        body = "".join(
            line.strip()
            for line in Path(path).read_text().splitlines()
            if line.strip() and not line.startswith(">")
        )
        for alphabet in self.alphabets.values():
            folded = (
                body.lower()
                if alphabet.chars == alphabet.chars.lower()
                else body.upper()
            )
            if all(ch in alphabet.chars for ch in set(folded)):
                return alphabet
        raise RuntimeDslError(
            f"no declared alphabet covers the sequences in {path!r}"
        )

    def _print(
        self,
        stmt: ast.PrintStmt,
        checked: CheckedProgram,
        result: ScriptResult,
    ) -> None:
        value = self._eval_script_expr(stmt.value, checked, result)
        result.values.append(value)
        line = str(value)
        result.printed.append(line)
        if self.echo:
            print(line)

    def _map(
        self,
        stmt: ast.MapStmt,
        checked: CheckedProgram,
        result: ScriptResult,
    ) -> None:
        if stmt.over not in self.globals:
            raise RuntimeDslError(
                f"unknown collection {stmt.over!r}", stmt.span
            )
        collection = self.globals[stmt.over]
        if not isinstance(collection, (list, tuple)):
            raise RuntimeDslError(
                f"{stmt.over!r} is not a sequence collection", stmt.span
            )
        func = checked.function(stmt.template.func)
        base, at, initial, holes = self._bind_call(
            func, stmt.template, element=None, allow_holes=True
        )
        if not holes:
            raise RuntimeDslError(
                "map template has no '_' placeholder", stmt.span
            )
        problems = []
        ats = []
        for element in collection:
            bound, el_at, el_initial, _ = self._bind_call(
                func, stmt.template, element=element, allow_holes=True
            )
            problems.append(bound)
            ats.append((el_at, el_initial))
        # All problems share `at` semantics (per-problem coords are
        # handled inside map_run via defaults); explicit coords that
        # depend on the element (|_|) resolve to per-problem defaults.
        map_result = self.engine.map_run(
            func,
            {},
            problems,
            at=None,
            initial=initial if initial else None,
        )
        self.globals[stmt.name] = map_result.values
        result.maps[stmt.name] = map_result

    # -- expression evaluation -------------------------------------------------

    def _eval_value(self, expr: ast.Expr) -> object:
        """Evaluate a script-level value expression (let/arguments)."""
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.CharLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name not in self.globals:
                raise RuntimeDslError(
                    f"unknown script variable {expr.name!r}", expr.span
                )
            return self.globals[expr.name]
        if isinstance(expr, ast.Len):
            target = self._lookup_len_target(expr)
            return len(target)
        if isinstance(expr, ast.Field):
            return self._eval_field(expr)
        if isinstance(expr, ast.BinOp):
            left = self._eval_value(expr.left)
            right = self._eval_value(expr.right)
            return _script_binop(expr, left, right)
        raise RuntimeDslError(
            f"cannot evaluate {expr} at script level", expr.span
        )

    def _lookup_len_target(self, expr: ast.Len):
        if expr.seq not in self.globals:
            raise RuntimeDslError(
                f"unknown script variable {expr.seq!r} in |{expr.seq}|",
                expr.span,
            )
        target = self.globals[expr.seq]
        if isinstance(target, (Sequence, str, list, tuple)):
            return target
        raise RuntimeDslError(
            f"|{expr.seq}| needs a sequence or collection", expr.span
        )

    def _eval_field(self, expr: ast.Field) -> object:
        subject = self._eval_value(expr.subject)
        if isinstance(subject, Hmm):
            if expr.name == "start":
                return subject.start_state.index
            if expr.name == "end":
                return subject.end_state.index
        raise RuntimeDslError(
            f"cannot evaluate field {expr.name!r} at script level",
            expr.span,
        )

    def _eval_script_expr(
        self,
        expr: ast.Expr,
        checked: CheckedProgram,
        result: ScriptResult,
    ) -> object:
        if isinstance(expr, ast.Call) and expr.func in checked.functions:
            return self._run_call(expr, checked, result)
        return self._eval_value(expr)

    def _run_call(
        self,
        expr: ast.Call,
        checked: CheckedProgram,
        result: ScriptResult,
    ) -> object:
        func = checked.function(expr.func)
        bindings, at, initial, _ = self._bind_call(
            func, expr, element=None, allow_holes=False
        )
        user_schedule = checked.schedules.get(func.name)
        run = self.engine.run(
            func,
            bindings,
            at=at or None,
            initial=initial or None,
            user_schedule=user_schedule,
        )
        result.runs.append(run)
        return run.value

    # -- argument binding -------------------------------------------------------

    def _bind_call(
        self,
        func: CheckedFunction,
        call: ast.Call,
        element: Optional[object],
        allow_holes: bool,
    ) -> Tuple[Dict[str, object], Dict[str, int], Dict[str, int], int]:
        """Bind a full-prototype call's arguments to parameters.

        Returns (calling bindings, at-coordinates, int initials,
        number of ``_`` holes). ``element`` fills the holes.
        """
        if len(call.args) != len(func.params):
            raise RuntimeDslError(
                f"{func.name} takes {len(func.params)} arguments "
                f"({', '.join(p.name for p in func.params)}), got "
                f"{len(call.args)}",
                call.span,
            )
        bindings: Dict[str, object] = {}
        at: Dict[str, int] = {}
        initial: Dict[str, int] = {}
        holes = 0
        for param, arg in zip(func.params, call.args):
            if isinstance(arg, ast.Placeholder):
                holes += 1
                value: object = element
            elif isinstance(arg, ast.Len) and arg.seq == "_":
                holes += 1
                value = len(element) if element is not None else None
            else:
                value = self._eval_value(arg)
            if param.is_recursive:
                if value is None:
                    continue  # defaulted per problem
                coordinate = int(value)
                at[param.name] = coordinate
                if isinstance(param.type, IntType):
                    initial[param.name] = coordinate
            else:
                if value is None and not allow_holes:
                    raise RuntimeDslError(
                        f"missing value for parameter {param.name!r}",
                        call.span,
                    )
                if value is not None:
                    bindings[param.name] = self._coerce(param, value)
        return bindings, at, initial, holes

    def _coerce(self, param, value: object) -> object:
        """Adapt script values to parameter types (str -> Sequence).

        A bare string passed for a ``seq[*]`` parameter adopts the
        first declared alphabet that covers it.
        """
        if isinstance(param.type, SeqType) and isinstance(value, str):
            if param.type.alphabet is not None:
                alphabet = self.alphabets[param.type.alphabet]
                return Sequence(value, alphabet)
            for alphabet in self.alphabets.values():
                if all(ch in alphabet.chars for ch in set(value)):
                    return Sequence(value, alphabet)
            raise RuntimeDslError(
                f"no declared alphabet covers the string for "
                f"parameter {param.name!r}"
            )
        return value


def run_script(
    text: str,
    engine: Optional[Engine] = None,
    echo: bool = False,
) -> ScriptResult:
    """Parse, check and execute a DSL script."""
    return ProgramRunner(engine, echo=echo).run_text(text)


def _script_binop(expr: ast.BinOp, left, right):
    kind = expr.op
    table = {
        ast.BinOpKind.ADD: lambda: left + right,
        ast.BinOpKind.SUB: lambda: left - right,
        ast.BinOpKind.MUL: lambda: left * right,
        ast.BinOpKind.MIN: lambda: min(left, right),
        ast.BinOpKind.MAX: lambda: max(left, right),
    }
    if kind not in table:
        raise RuntimeDslError(
            f"operator {kind.value!r} is not supported at script level",
            expr.span,
        )
    return table[kind]()
