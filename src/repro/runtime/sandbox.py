"""Crash-isolated native execution: a subprocess sandbox for kernels.

The native backend runs generated C in-process through ``ctypes`` —
the fastest rung of the ladder, but also the only one where a
miscompiled or corrupted kernel can take the whole service down with
a segfault. This module confines that blast radius to a pool of
long-lived **worker subprocesses**:

* Each worker is a plain ``python -c`` child speaking a
  length-prefixed pickle frame protocol over its stdin/stdout pipes.
  A launch request carries the kernel payload, the ``.so`` path, the
  serialized numpy table and context; the reply carries the finished
  table. Because the parent's table is only overwritten on a
  successful reply, a crashed launch can never leave it torn.
* The parent detects worker death by EOF on the pipe plus
  ``poll()``, and enforces a per-launch **deadline**: a wedged worker
  is SIGKILLed for real (unlike the thread watchdog in
  :mod:`repro.resilience.supervisor`, which can only abandon a hung
  thread). Death raises :class:`~repro.resilience.faults.WorkerCrash`
  and a deadline kill raises
  :class:`~repro.resilience.faults.SandboxHang` — both
  ``DeviceFault`` subclasses, so the supervisor replays them and the
  service retry loop classifies them as device failures.
* A per-kernel-digest :class:`CircuitBreaker` demotes a kernel after
  ``K`` crashes (``REPRO_SANDBOX_BREAKER_K``, default 3): the engine
  consults it at resolve time and re-routes the kernel down the
  ladder (native → vector → scalar); after a cooldown
  (``REPRO_SANDBOX_BREAKER_COOLDOWN`` seconds, default 30) the
  breaker goes half-open and one probe launch may try native again.

Sandboxing is **opt-in** (serializing tables over a pipe costs real
throughput): set ``REPRO_NATIVE_SANDBOX=1`` or call
:func:`configure`. The worker pool size comes from
``REPRO_SANDBOX_WORKERS`` (default 1) and the default launch
deadline from ``REPRO_SANDBOX_TIMEOUT`` seconds (default 60).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import select
import signal
import struct
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CircuitBreaker",
    "NativeSandbox",
    "SandboxedNativeRun",
    "configure",
    "counters",
    "enabled",
    "get_breaker",
    "get_sandbox",
    "kernel_digest",
    "reset",
    "worker_main",
]

_HEADER = struct.Struct(">Q")

#: ``src`` directory holding the ``repro`` package — prepended to the
#: worker's PYTHONPATH so ``python -c "from repro..."`` resolves.
_SRC_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


# ---------------------------------------------------------------------------
# frame protocol (shared by parent and worker)


def _write_frame(stream, obj) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(data)))
    stream.write(data)
    stream.flush()


def _read_exact(stream, count: int) -> Optional[bytes]:
    """Blocking exact read; ``None`` on EOF (worker-side helper)."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# worker side


def _handle_launch(request: dict, runs: dict) -> dict:
    """Execute one launch request inside the worker process."""
    try:
        fault = request.get("fault") or {}
        kind = fault.get("kind")
        if kind == "kill":
            # A *real* mid-launch death: the parent sees EOF, not an
            # exception reply. This is how chaos tests and the fault
            # injector simulate a segfault in generated C.
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(float(fault.get("seconds") or 3600.0))
        from ..ir.kernel import Kernel
        from .native import NativeBatchedRun, NativeRun

        batched = bool(request.get("batched"))
        # Plain and batched callables for one kernel memoise under
        # distinct keys (same .so, different entry symbol/spec).
        memo_key = request["digest"] + (":batched" if batched else "")
        run = runs.get(memo_key)
        if run is None:
            kernel = Kernel.from_payload(request["payload"])
            cls = NativeBatchedRun if batched else NativeRun
            run = cls(kernel, request["so_path"])
            runs[memo_key] = run
        table = np.array(request["table"], copy=True)
        out = run(
            table,
            request["ctx"],
            request.get("part_lo"),
            request.get("part_hi"),
        )
        return {"ok": True, "table": out}
    except Exception as err:  # pragma: no cover - error shape only
        return {"ok": False, "error": f"{type(err).__name__}: {err}"}


def worker_main() -> None:
    """Entry point of a sandbox worker subprocess.

    Loops over length-prefixed pickle frames on stdin, writing one
    reply frame per request to stdout. Exits cleanly on EOF or an
    explicit ``exit`` op. ``NativeRun`` instances are memoised per
    kernel digest, so a long-lived worker pays ``CDLL`` + argtype
    setup once per kernel, like the in-process path.
    """
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    runs: Dict[str, object] = {}
    while True:
        header = _read_exact(stdin, _HEADER.size)
        if header is None:
            return
        (length,) = _HEADER.unpack(header)
        data = _read_exact(stdin, length)
        if data is None:
            return
        request = pickle.loads(data)
        op = request.get("op")
        if op == "ping":
            _write_frame(stdout, {"ok": True, "pid": os.getpid()})
        elif op == "exit":
            return
        elif op == "launch":
            _write_frame(stdout, _handle_launch(request, runs))
        else:
            _write_frame(
                stdout, {"ok": False, "error": f"unknown op {op!r}"}
            )


# ---------------------------------------------------------------------------
# parent side


class _WorkerDied(Exception):
    """Internal: the worker's pipe hit EOF / the process exited."""


class _WorkerTimeout(Exception):
    """Internal: no reply before the launch deadline."""


class WorkerProcess:
    """One long-lived sandbox subprocess plus its pipe endpoints."""

    def __init__(self, spawn_timeout: float = 30.0) -> None:
        env = dict(os.environ)
        env["REPRO_NATIVE_SANDBOX"] = "0"
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            _SRC_ROOT + os.pathsep + existing if existing else _SRC_ROOT
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.runtime.sandbox import worker_main; "
                "worker_main()",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        self._buffer = b""
        # Absorb interpreter start-up + imports here, with its own
        # generous timeout, so the first launch's deadline measures
        # the launch and not the spawn.
        self.send({"op": "ping"})
        self.read_reply(time.monotonic() + spawn_timeout)

    @property
    def pid(self) -> int:
        """The subprocess's OS process id."""
        return self.proc.pid

    def alive(self) -> bool:
        """Is the subprocess still running (no exit status yet)?"""
        return self.proc.poll() is None

    def send(self, request: dict) -> None:
        """Write one request frame; :class:`_WorkerDied` on a dead pipe."""
        try:
            _write_frame(self.proc.stdin, request)
        except (BrokenPipeError, OSError, ValueError) as err:
            raise _WorkerDied(str(err)) from err

    def read_reply(self, deadline: float) -> dict:
        """Read one reply frame, enforcing an absolute deadline.

        Raises :class:`_WorkerDied` on EOF/exit and
        :class:`_WorkerTimeout` when the deadline passes first.
        """
        header = self._read_bytes(_HEADER.size, deadline)
        (length,) = _HEADER.unpack(header)
        return pickle.loads(self._read_bytes(length, deadline))

    def _read_bytes(self, count: int, deadline: float) -> bytes:
        fd = self.proc.stdout.fileno()
        while len(self._buffer) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerTimeout(
                    f"sandbox worker {self.pid} missed its deadline"
                )
            ready, _, _ = select.select(
                [fd], [], [], min(remaining, 0.1)
            )
            if not ready:
                if not self.alive():
                    raise _WorkerDied(
                        f"sandbox worker {self.pid} exited "
                        f"({self.proc.returncode})"
                    )
                continue
            chunk = os.read(fd, 1 << 20)
            if not chunk:
                raise _WorkerDied(
                    f"sandbox worker {self.pid} closed its pipe "
                    f"(exit {self.proc.poll()})"
                )
            self._buffer += chunk
        data, self._buffer = (
            self._buffer[:count],
            self._buffer[count:],
        )
        return data

    def kill(self) -> None:
        """SIGKILL the worker and close both pipe ends (idempotent)."""
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except Exception:
            pass
        for stream in (self.proc.stdin, self.proc.stdout):
            try:
                stream.close()
            except Exception:
                pass

    def close(self) -> None:
        """Polite shutdown: ask the worker to exit, then reap it."""
        if self.alive():
            try:
                self.send({"op": "exit"})
                self.proc.wait(timeout=5)
            except Exception:
                pass
        self.kill()


class CircuitBreaker:
    """Per-kernel-digest crash circuit breaker.

    States per digest: **closed** (launches allowed), **open**
    (``threshold`` failures within the cooldown window — the engine
    resolves the kernel to a lower rung instead), **half-open**
    (cooldown elapsed — one probe launch may try native again; its
    outcome closes or re-opens the breaker).
    """

    def __init__(
        self,
        threshold: Optional[int] = None,
        cooldown: Optional[float] = None,
    ) -> None:
        self.threshold = threshold if threshold is not None else int(
            os.environ.get("REPRO_SANDBOX_BREAKER_K", "3")
        )
        self.cooldown = cooldown if cooldown is not None else float(
            os.environ.get("REPRO_SANDBOX_BREAKER_COOLDOWN", "30")
        )
        self._lock = threading.Lock()
        #: digest -> (consecutive failures, last-failure monotonic).
        self._entries: Dict[str, Tuple[int, float]] = {}

    def state(self, digest: str) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` for this kernel."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None or entry[0] < self.threshold:
                return "closed"
            if time.monotonic() - entry[1] >= self.cooldown:
                return "half-open"
            return "open"

    def allows(self, digest: str) -> bool:
        """May this kernel launch natively right now?"""
        return self.state(digest) != "open"

    def record_failure(self, digest: str) -> int:
        """Count one crash; returns the new consecutive-failure tally."""
        with self._lock:
            failures = self._entries.get(digest, (0, 0.0))[0] + 1
            self._entries[digest] = (failures, time.monotonic())
            return failures

    def record_success(self, digest: str) -> None:
        """A clean launch: reset the tally, close the breaker."""
        with self._lock:
            self._entries.pop(digest, None)

    def open_count(self) -> int:
        """How many kernels are currently circuit-broken."""
        return sum(
            1
            for digest in list(self._entries)
            if self.state(digest) == "open"
        )

    def reset(self) -> None:
        """Forget all tallies and open breakers (tests, reconfigure)."""
        with self._lock:
            self._entries.clear()


class NativeSandbox:
    """A pool of sandbox workers plus checkout/checkin bookkeeping."""

    def __init__(self, size: Optional[int] = None) -> None:
        self.size = max(
            1,
            size
            if size is not None
            else int(os.environ.get("REPRO_SANDBOX_WORKERS", "1")),
        )
        self._cond = threading.Condition()
        self._idle: List[WorkerProcess] = []
        self._spawned = 0
        self.launches = 0
        self.crashes = 0
        self.hangs = 0
        self.restarts = 0
        self._closed = False

    # -- worker lifecycle -------------------------------------------------

    def _checkout(self) -> WorkerProcess:
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("sandbox is shut down")
                while self._idle:
                    worker = self._idle.pop()
                    if worker.alive():
                        return worker
                    # Killed while idle (external SIGKILL, OOM):
                    # replace silently — no launch was harmed.
                    worker.kill()
                    self._spawned -= 1
                    self.restarts += 1
                if self._spawned < self.size:
                    self._spawned += 1
                    break
                self._cond.wait(timeout=0.5)
        try:
            return WorkerProcess()
        except BaseException:
            with self._cond:
                self._spawned -= 1
                self._cond.notify()
            raise

    def _checkin(self, worker: WorkerProcess) -> None:
        with self._cond:
            if self._closed:
                worker.close()
                return
            self._idle.append(worker)
            self._cond.notify()

    def _replace(self, worker: WorkerProcess) -> None:
        """Kill a crashed/hung worker and eagerly restart its slot."""
        worker.kill()
        try:
            replacement: Optional[WorkerProcess] = WorkerProcess()
        except BaseException:
            replacement = None
        with self._cond:
            self.restarts += 1
            if replacement is None or self._closed:
                self._spawned -= 1
                if replacement is not None:
                    replacement.close()
            else:
                self._idle.append(replacement)
            self._cond.notify()

    # -- the launch path --------------------------------------------------

    def launch(
        self,
        digest: str,
        payload: bytes,
        so_path: str,
        T: np.ndarray,
        ctx: Dict[str, object],
        part_lo: Optional[int] = None,
        part_hi: Optional[int] = None,
        fault: Optional[dict] = None,
        deadline: Optional[float] = None,
        batched: bool = False,
    ) -> np.ndarray:
        """Run one kernel launch in a worker; copy the result into ``T``.

        ``batched=True`` routes the request through the worker's
        batched entry point: ``T`` is then a whole map group's padded
        ``(B, ...)`` table and one crash costs one disposable worker,
        not the service.

        Raises ``WorkerCrash`` when the worker dies mid-launch and
        ``SandboxHang`` when it misses the deadline (in which case it
        is SIGKILLed). Either way the slot is restarted eagerly and
        ``T`` is left untouched.
        """
        from ..resilience.faults import SandboxHang, WorkerCrash

        if deadline is None:
            deadline = float(
                os.environ.get("REPRO_SANDBOX_TIMEOUT", "60")
            )
        worker = self._checkout()
        try:
            worker.send(
                {
                    "op": "launch",
                    "digest": digest,
                    "payload": payload,
                    "so_path": so_path,
                    "table": np.ascontiguousarray(T),
                    "ctx": ctx,
                    "part_lo": part_lo,
                    "part_hi": part_hi,
                    "fault": fault,
                    "batched": batched,
                }
            )
            reply = worker.read_reply(time.monotonic() + deadline)
        except _WorkerDied as err:
            with self._cond:
                self.crashes += 1
            self._replace(worker)
            raise WorkerCrash(
                f"sandbox worker died mid-launch: {err}"
            ) from err
        except _WorkerTimeout as err:
            with self._cond:
                self.hangs += 1
            self._replace(worker)
            raise SandboxHang(
                f"sandbox launch exceeded {deadline:.3f}s deadline "
                f"(worker SIGKILLed): {err}"
            ) from err
        self._checkin(worker)
        with self._cond:
            self.launches += 1
        if not reply.get("ok"):
            raise RuntimeError(
                f"sandboxed launch failed: {reply.get('error')}"
            )
        np.copyto(T, reply["table"])
        return T

    # -- observability / teardown ----------------------------------------

    def counters(self) -> Dict[str, int]:
        """Launches/crashes/hangs/restarts plus live worker count."""
        with self._cond:
            return {
                "launches": self.launches,
                "crashes": self.crashes,
                "hangs": self.hangs,
                "restarts": self.restarts,
                "workers": self._spawned,
            }

    def shutdown(self) -> None:
        """Kill every pooled worker and drop them."""
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._spawned = 0
            self._cond.notify_all()
        for worker in idle:
            worker.close()


# ---------------------------------------------------------------------------
# module singletons and the compiled-run wrapper


_LOCK = threading.Lock()
_SANDBOX: Optional[NativeSandbox] = None
_BREAKER: Optional[CircuitBreaker] = None
_ENABLED_OVERRIDE: Optional[bool] = None


def enabled() -> bool:
    """Is sandboxed native execution on for this process?"""
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    return os.environ.get("REPRO_NATIVE_SANDBOX") == "1"


def configure(enabled: Optional[bool]) -> None:
    """Override (or, with ``None``, un-override) sandbox enablement."""
    global _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = enabled


def get_sandbox() -> NativeSandbox:
    """The process-wide worker pool (created on first use)."""
    global _SANDBOX
    with _LOCK:
        if _SANDBOX is None:
            _SANDBOX = NativeSandbox()
            atexit.register(_SANDBOX.shutdown)
        return _SANDBOX


def get_breaker() -> CircuitBreaker:
    """The process-wide per-kernel circuit breaker."""
    global _BREAKER
    with _LOCK:
        if _BREAKER is None:
            _BREAKER = CircuitBreaker()
        return _BREAKER


def counters() -> Dict[str, int]:
    """Process-wide sandbox counters (zeros when never used)."""
    with _LOCK:
        sandbox = _SANDBOX
        breaker = _BREAKER
    stats = (
        sandbox.counters()
        if sandbox is not None
        else {
            "launches": 0,
            "crashes": 0,
            "hangs": 0,
            "restarts": 0,
            "workers": 0,
        }
    )
    stats["open_breakers"] = (
        breaker.open_count() if breaker is not None else 0
    )
    return stats


def reset() -> None:
    """Tear down the singletons (tests); leaves the override alone."""
    global _SANDBOX, _BREAKER
    with _LOCK:
        sandbox, _SANDBOX = _SANDBOX, None
        _BREAKER = None
    if sandbox is not None:
        sandbox.shutdown()


def kernel_digest(kernel) -> str:
    """Content digest keying the circuit breaker and worker memo."""
    return hashlib.sha256(kernel.to_payload()).hexdigest()


class SandboxedNativeRun:
    """Drop-in for :class:`~repro.runtime.native.NativeRun` that
    dispatches every call to the worker pool.

    Crucially the ``.so`` is **never** loaded into the parent
    process — this object only holds the kernel payload and artifact
    path. The breaker is consulted before every launch: an open
    breaker raises ``WorkerCrash`` without spawning anything, so
    callers demote exactly as they would for a real death.
    """

    sandboxed = True

    def __init__(self, kernel, so_path: str, batched: bool = False) -> None:
        self.kernel = kernel
        self.so_path = so_path
        self.batched = batched
        self.payload = kernel.to_payload()
        # Plain and batched launches of one kernel share a digest on
        # purpose: the breaker tracks the *kernel's* crash history,
        # and a batched crash should demote per-problem launches too.
        self.digest = hashlib.sha256(self.payload).hexdigest()

    def __call__(
        self,
        T: np.ndarray,
        ctx: Dict[str, object],
        part_lo: Optional[int] = None,
        part_hi: Optional[int] = None,
        fault: Optional[dict] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        from ..resilience.faults import WorkerCrash

        breaker = get_breaker()
        if not breaker.allows(self.digest):
            raise WorkerCrash(
                f"circuit open for kernel {self.digest[:12]} "
                f"({breaker.threshold} crashes; retry after "
                f"{breaker.cooldown:.0f}s cooldown)"
            )
        try:
            result = get_sandbox().launch(
                self.digest,
                self.payload,
                self.so_path,
                T,
                ctx,
                part_lo=part_lo,
                part_hi=part_hi,
                fault=fault,
                deadline=deadline,
                batched=self.batched,
            )
        except Exception as err:
            from ..resilience.faults import DeviceFault

            if isinstance(err, DeviceFault):
                breaker.record_failure(self.digest)
            raise
        breaker.record_success(self.digest)
        return result
