"""Sequence I/O and synthetic data generation.

FASTA reading/writing for the ``load`` statement, and seeded synthetic
generators standing in for the genome data the paper's evaluation uses
(see DESIGN.md §2: the algorithms' cost is data-oblivious for dense
DP, so only the size distributions matter for the figures).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, List, Optional, Sequence as Seq, Tuple

from ..lang.errors import RuntimeDslError
from .values import Alphabet, DNA, PROTEIN, Sequence


def read_fasta(
    path, alphabet: Alphabet, lowercase: Optional[bool] = None
) -> List[Sequence]:
    """Parse a FASTA file into sequences over ``alphabet``.

    ``lowercase`` forces case folding; by default the case is chosen
    to match the alphabet.
    """
    text = Path(path).read_text()
    return parse_fasta(text, alphabet, lowercase)


def parse_fasta(
    text: str, alphabet: Alphabet, lowercase: Optional[bool] = None
) -> List[Sequence]:
    """Parse FASTA text into sequences over ``alphabet``."""
    if lowercase is None:
        lowercase = alphabet.chars == alphabet.chars.lower()
    records: List[Tuple[str, List[str]]] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            records.append((line[1:].split()[0] if len(line) > 1 else "",
                            []))
        else:
            if not records:
                raise RuntimeDslError(
                    "FASTA data begins without a '>' header"
                )
            records[-1][1].append(line)
    sequences = []
    for name, chunks in records:
        body = "".join(chunks)
        body = body.lower() if lowercase else body.upper()
        sequences.append(Sequence(body, alphabet, name=name))
    return sequences


def write_fasta(path, sequences: Iterable[Sequence]) -> None:
    """Write sequences to a FASTA file (60-column wrap)."""
    lines = []
    for index, seq in enumerate(sequences):
        lines.append(f">{seq.name or f'seq{index}'}")
        for start in range(0, len(seq.text), 60):
            lines.append(seq.text[start:start + 60])
    Path(path).write_text("\n".join(lines) + "\n")


def random_sequence(
    length: int,
    alphabet: Alphabet,
    rng: random.Random,
    name: str = "",
    weights: Optional[Seq[float]] = None,
) -> Sequence:
    """One random sequence; optional per-character weights."""
    chars = rng.choices(alphabet.chars, weights=weights, k=length)
    return Sequence("".join(chars), alphabet, name=name)


def random_dna(
    length: int, seed: int = 0, gc_bias: float = 0.5, name: str = ""
) -> Sequence:
    """Synthetic DNA with a GC-content knob (default uniform)."""
    rng = random.Random(seed)
    at = (1.0 - gc_bias) / 2.0
    gc = gc_bias / 2.0
    weights = [at, gc, gc, at]  # a c g t
    return random_sequence(length, DNA, rng, name=name, weights=weights)


#: Rough Swiss-Prot background frequencies (Robinson & Robinson).
PROTEIN_BACKGROUND = {
    "A": 0.079, "R": 0.051, "N": 0.045, "D": 0.054, "C": 0.019,
    "Q": 0.043, "E": 0.063, "G": 0.074, "H": 0.022, "I": 0.051,
    "L": 0.091, "K": 0.057, "M": 0.022, "F": 0.039, "P": 0.052,
    "S": 0.071, "T": 0.058, "W": 0.013, "Y": 0.032, "V": 0.064,
}


def random_protein(length: int, seed: int = 0, name: str = "") -> Sequence:
    """Synthetic protein with Swiss-Prot-like residue frequencies."""
    rng = random.Random(seed)
    weights = [PROTEIN_BACKGROUND[c] for c in PROTEIN.chars]
    return random_sequence(
        length, PROTEIN, rng, name=name, weights=weights
    )


def random_database(
    count: int,
    mean_length: int,
    alphabet: Alphabet = PROTEIN,
    seed: int = 0,
    spread: float = 0.35,
    prefix: str = "db",
) -> List[Sequence]:
    """A synthetic sequence database with varied lengths.

    Lengths are drawn from a truncated normal around ``mean_length``
    (databases like Swiss-Prot have broad, skewed length
    distributions; a spread of ~35% reproduces the load-imbalance
    behaviour that inter-task SW parallelisation is sensitive to).
    """
    rng = random.Random(seed)
    weights = None
    if alphabet is PROTEIN:
        weights = [PROTEIN_BACKGROUND[c] for c in PROTEIN.chars]
    sequences = []
    for index in range(count):
        length = max(
            8, int(rng.gauss(mean_length, spread * mean_length))
        )
        sequences.append(
            random_sequence(
                length, alphabet, rng,
                name=f"{prefix}{index}", weights=weights,
            )
        )
    return sequences
