"""Serial bottom-up tabulation — the reference CPU evaluation.

Dynamic programming "the obvious way" (Section 2): walk the domain in
schedule order (every dependence lands in an earlier partition, so the
order is safe by construction) and fill the table one cell at a time
with the interpreted cell semantics. Slow but trustworthy; the
compiled backend and the simulated device are tested against it, and
the CPU baselines price exactly this execution.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.domain import Domain
from ..lang.errors import RuntimeDslError
from ..lang.typecheck import CheckedFunction
from ..lang.types import IntType
from ..schedule.schedule import Schedule
from .interpreter import Evaluator, domain_extents
from .values import Bindings


def tabulate(
    func: CheckedFunction,
    bindings: Bindings,
    schedule: Schedule,
    domain: Optional[Domain] = None,
    initial: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Fill the whole DP table serially, in schedule order."""
    if domain is None:
        domain = Domain(
            func.dim_names, domain_extents(func, bindings, initial)
        )
    is_int = isinstance(func.return_type, IntType)
    table = np.zeros(
        domain.extents, dtype=np.int64 if is_int else np.float64
    )
    filled = np.zeros(domain.extents, dtype=bool)

    def on_call(args: Tuple[int, ...]):
        if not domain.contains_tuple(args):
            raise RuntimeDslError(
                f"recursive call {func.name}{args} leaves the domain "
                f"{domain}"
            )
        if not filled[args]:
            raise RuntimeDslError(
                f"cell {args} read before it was computed; the "
                f"schedule {schedule} is not valid for {func.name!r}"
            )
        value = table[args]
        return int(value) if is_int else float(value)

    evaluator = Evaluator(func, bindings, on_call)
    order = sorted(
        domain.points(), key=schedule.partition_of
    )
    for cell in order:
        table[cell] = evaluator.evaluate(cell)
        filled[cell] = True
    return table
