"""Runtime values for DSL programs.

The calling-type values a recursion closes over: alphabets, sequences
and (via :mod:`repro.extensions`) substitution matrices and HMMs. All
character data is encoded as raw byte codes (``ord``), with per-
alphabet index tables for the lookups that need dense indices
(matrices, emissions) — this keeps character equality meaningful
across alphabets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np

from ..lang.errors import RuntimeDslError

#: Size of the raw character code space (ASCII).
CHAR_SPACE = 128


@dataclass(frozen=True)
class Alphabet:
    """A named, finite, ordered set of characters."""

    name: str
    chars: str

    def __post_init__(self) -> None:
        if len(set(self.chars)) != len(self.chars):
            raise RuntimeDslError(
                f"alphabet {self.name!r} has duplicate characters"
            )
        for ch in self.chars:
            if ord(ch) >= CHAR_SPACE:
                raise RuntimeDslError(
                    f"alphabet {self.name!r}: non-ASCII character {ch!r}"
                )

    def __len__(self) -> int:
        return len(self.chars)

    def __contains__(self, char: str) -> bool:
        return char in self.chars

    def __iter__(self) -> Iterator[str]:
        return iter(self.chars)

    def index(self, char: str) -> int:
        """Dense index of ``char`` within this alphabet."""
        position = self.chars.find(char)
        if position < 0:
            raise RuntimeDslError(
                f"character {char!r} is not in alphabet {self.name!r}"
            )
        return position

    def index_table(self) -> np.ndarray:
        """``CHAR_SPACE``-entry map: raw code -> dense index (-1 absent)."""
        table = np.full(CHAR_SPACE, -1, dtype=np.int64)
        for position, char in enumerate(self.chars):
            table[ord(char)] = position
        return table


#: Convenience alphabets used across examples and tests.
DNA = Alphabet("dna", "acgt")
PROTEIN = Alphabet("protein", "ARNDCQEGHILKMFPSTWYV")
ENGLISH = Alphabet("en", "abcdefghijklmnopqrstuvwxyz")


@dataclass(frozen=True)
class Sequence:
    """An immutable character sequence over an alphabet (Section 3.1).

    Queried by index only. ``codes`` caches the raw byte encoding used
    by compiled kernels.
    """

    text: str
    alphabet: Alphabet
    name: str = ""
    codes: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for ch in self.text:
            if ch not in self.alphabet:
                raise RuntimeDslError(
                    f"sequence character {ch!r} is not in alphabet "
                    f"{self.alphabet.name!r}"
                )
        encoded = np.frombuffer(
            self.text.encode("ascii"), dtype=np.uint8
        ).astype(np.int64)
        object.__setattr__(self, "codes", encoded)

    def __len__(self) -> int:
        return len(self.text)

    def __getitem__(self, index: int) -> str:
        if not 0 <= index < len(self.text):
            raise RuntimeDslError(
                f"sequence index {index} out of range 0..{len(self.text) - 1}"
            )
        return self.text[index]


def make_sequences(
    texts, alphabet: Alphabet, prefix: str = "seq"
) -> Tuple[Sequence, ...]:
    """Wrap raw strings as :class:`Sequence` values."""
    return tuple(
        Sequence(text, alphabet, name=f"{prefix}{k}")
        for k, text in enumerate(texts)
    )


@dataclass
class Bindings:
    """Concrete values for the calling parameters of one run."""

    values: Dict[str, object]

    def __getitem__(self, name: str) -> object:
        if name not in self.values:
            raise RuntimeDslError(f"missing binding for parameter {name!r}")
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values
