"""Schedules: representation, validation, search, windows (Section 4)."""

from .multi import ScheduleSet, derive_schedule_set
from .mutual_rec import (
    FunctionSchedule,
    MutualSchedule,
    brute_force_mutual_valid,
    find_mutual_schedules,
)
from .schedule import (
    Schedule,
    brute_force_valid,
    validate_user_schedule,
)
from .solver import (
    DEFAULT_BOUND,
    EnumerativeSolver,
    OrthantSolver,
    find_schedule,
)
from .window import window_rows, window_size

__all__ = [
    "Schedule",
    "FunctionSchedule",
    "MutualSchedule",
    "brute_force_mutual_valid",
    "find_mutual_schedules",
    "brute_force_valid",
    "validate_user_schedule",
    "ScheduleSet",
    "derive_schedule_set",
    "DEFAULT_BOUND",
    "EnumerativeSolver",
    "OrthantSolver",
    "find_schedule",
    "window_rows",
    "window_size",
]
