"""Schedules: representation, validation, search, windows (Section 4)."""

from .multi import ScheduleSet, derive_schedule_set
from .mutual_rec import (
    FunctionSchedule,
    MutualSchedule,
    brute_force_mutual_valid,
    find_mutual_schedules,
)
from .schedule import (
    Schedule,
    brute_force_valid,
    validate_user_schedule,
)
from .solver import (
    DEFAULT_BOUND,
    EnumerativeSolver,
    OrthantSolver,
    find_schedule,
)
from .window import window_rows, window_size

# Last: the autotuner prices candidates through repro.gpu.timing,
# which itself imports repro.schedule.schedule (loaded above).
from .autotune import (  # noqa: E402
    AutotuneResult,
    AutotuneStats,
    Candidate,
    autotune_schedule,
)

__all__ = [
    "AutotuneResult",
    "AutotuneStats",
    "Candidate",
    "autotune_schedule",
    "Schedule",
    "FunctionSchedule",
    "MutualSchedule",
    "brute_force_mutual_valid",
    "find_mutual_schedules",
    "brute_force_valid",
    "validate_user_schedule",
    "ScheduleSet",
    "derive_schedule_set",
    "DEFAULT_BOUND",
    "EnumerativeSolver",
    "OrthantSolver",
    "find_schedule",
    "window_rows",
    "window_size",
]
