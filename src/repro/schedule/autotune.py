"""Cost-model-guided schedule autotuning (portfolio search).

The Section 4.6 solver minimises the *partition count* — a proxy for
runtime. The analytic device model (:mod:`repro.gpu.timing`) prices
what actually differs between valid schedules: barrier (sync) cycles
per partition, warp-granular occupancy of each partition, and — the
decisive term — whether the Section 4.8 sliding window fits shared
memory, which swaps every table read between the global and shared
rates. The minimum-partition schedule maximises the widest partition,
so on large domains it is exactly the schedule most likely to spill
the window out of shared memory; a slightly "worse" schedule (one
more partition per row) with a resident window wins by the memory
gap.

:func:`autotune_schedule` searches that trade-off:

* **enumerate** coefficient vectors inside the solver bound, depth
  first over the dimensions;
* **prune dominated subtrees**: a partial vector already fixes a
  lower bound on the span, and
  :func:`repro.gpu.timing.cost_lower_bound` turns a span into cycles
  no completion can beat — subtrees whose bound exceeds the incumbent
  (the best *complete* candidate so far) are never expanded, and
  vectors with a common factor are skipped as non-normal-form
  duplicates of their reduced form (same partition sets, strictly
  more barriers);
* **score survivors** with the full model (window size from
  :func:`repro.schedule.window.window_size`), checking the validity
  criteria *lazily* — only for vectors whose predicted cost is
  competitive, because binder criteria cost an LP each;
* optionally **measure** the top-k survivors through a caller-supplied
  ``measure_fn`` (the engine compiles and times them natively when
  ``REPRO_AUTOTUNE_MEASURE=k`` is set — off by default so tier-1
  stays compiler-free);
* **re-prove** the winner with the independent verifier
  (:func:`repro.verify.soundness.verify_schedule` certificate plus
  the :mod:`repro.verify.races` parallel-safety certificate) before
  adoption — a candidate that fails verification is discarded and the
  next-ranked one tried, falling back to the solver's default.

Ties at equal predicted cost resolve by the solvers' shared
:func:`repro.schedule.solver.tie_break_key`, so the autotuner is
deterministic across orthants, runs and Python versions — the kernel
cache and the differential fuzzer rely on that.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from math import gcd
from typing import Callable, List, Optional, Tuple

from ..analysis.criteria import schedule_criteria
from ..analysis.domain import Domain
from ..gpu.spec import DeviceSpec, GTX480
from ..gpu.timing import KernelCost, cost_lower_bound, kernel_cost
from ..lang.typecheck import CheckedFunction
from .schedule import Schedule
from .solver import DEFAULT_BOUND, find_schedule, tie_break_key
from .window import window_size

#: Environment knob: compile-and-time this many top-predicted
#: candidates for measured feedback. 0 (the default) keeps the search
#: purely analytic — no compiler in the loop, so tier-1 never builds.
MEASURE_ENV = "REPRO_AUTOTUNE_MEASURE"

#: Ranked candidates kept in the result's portfolio.
PORTFOLIO_SIZE = 8

#: With measured feedback on, candidates predicted within this factor
#: of the best stay in the portfolio — the model's ordering between
#: near-ties is exactly what measurement is there to settle.
PORTFOLIO_SLACK = 1.25


def measure_from_env() -> int:
    """The ``REPRO_AUTOTUNE_MEASURE`` top-k, 0 when unset/garbage."""
    try:
        return max(0, int(os.environ[MEASURE_ENV]))
    except (KeyError, ValueError):
        return 0


@dataclass(frozen=True)
class Candidate:
    """One valid schedule with its predicted (and measured) cost."""

    schedule: Schedule
    predicted: KernelCost
    measured_seconds: Optional[float] = None


@dataclass(frozen=True)
class AutotuneStats:
    """Diagnostics from one autotuning search."""

    #: Complete normal-form vectors priced by the cost model.
    enumerated: int
    #: Subtrees (plus dominated complete vectors) the incumbent
    #: lower-bound cut before pricing or validity checking.
    pruned: int
    #: Vectors that reached the (possibly LP-backed) validity check.
    validity_checks: int
    #: Candidates timed through ``measure_fn``.
    measured: int
    search_seconds: float
    #: The winner came from the persistent cache, not a search.
    cache_hit: bool = False


@dataclass(frozen=True)
class AutotuneResult:
    """The adopted schedule plus everything needed to defend it."""

    schedule: Schedule
    default: Schedule
    predicted: KernelCost
    default_predicted: KernelCost
    candidates: Tuple[Candidate, ...]
    stats: AutotuneStats
    #: Independent soundness certificate for the winner (None only
    #: when verification was out of scope and the default was kept).
    certificate: object = None
    #: Parallel-safety certificate for the winner's kernel (None when
    #: the analysis refused the kernel outright).
    parallelism: object = None

    @property
    def improved(self) -> bool:
        """Did the search adopt something other than the default?"""
        return self.schedule != self.default

    @property
    def predicted_speedup(self) -> float:
        """Model-predicted speedup of the winner over the default."""
        if not self.predicted.cycles:
            return 1.0
        return self.default_predicted.cycles / self.predicted.cycles


def _normal_form(coeffs: Tuple[int, ...]) -> bool:
    """Is this vector gcd-reduced? ``k*S`` partitions the domain into
    the same cell sets as ``S`` but with ``k``-fold the barriers —
    always dominated, so only reduced vectors are enumerated."""
    g = 0
    for a in coeffs:
        g = gcd(g, abs(a))
    return g <= 1


def autotune_schedule(
    func: CheckedFunction,
    domain: Domain,
    spec: DeviceSpec = GTX480,
    *,
    prob_mode: str = "direct",
    bound: int = DEFAULT_BOUND,
    solver: str = "orthant",
    mean_degree: float = 1.0,
    measure: int = 0,
    measure_fn: Optional[Callable[[Schedule], Optional[float]]] = None,
    kernel_builder=None,
    verify_winner: bool = True,
    portfolio: int = PORTFOLIO_SIZE,
) -> AutotuneResult:
    """Search for the cheapest valid schedule the model can defend.

    ``measure`` > 0 times the top-k predicted candidates through
    ``measure_fn(schedule) -> seconds | None`` (None/exception = this
    candidate stays analytic); measured candidates outrank analytic
    ones. ``kernel_builder(schedule) -> Kernel`` overrides the default
    lowering (the engine passes its own to share work); the kernel is
    built **once** for pricing — operation counts are
    schedule-independent — and once more for the winner's
    parallel-safety certificate if a non-default schedule wins.
    """
    started = time.perf_counter()
    criteria = schedule_criteria(func)
    dims = func.dim_names
    default = find_schedule(func, domain, bound=bound, solver=solver)
    if kernel_builder is None:
        from ..ir.kernel import build_kernel

        def kernel_builder(schedule):
            return build_kernel(func, schedule, prob_mode=prob_mode)

    kernel = kernel_builder(default)

    def price(schedule: Schedule) -> KernelCost:
        return kernel_cost(
            kernel,
            domain,
            spec,
            mean_degree=mean_degree,
            schedule=schedule,
            window=window_size(schedule, criteria),
        )

    default_cost = price(default)
    default_candidate = Candidate(default, default_cost)
    if not criteria:
        # No recursive calls: the all-zero schedule is one partition
        # of independent cells — the model's floor. Nothing to tune.
        return AutotuneResult(
            schedule=default,
            default=default,
            predicted=default_cost,
            default_predicted=default_cost,
            candidates=(default_candidate,),
            stats=AutotuneStats(
                0, 0, 0, 0, time.perf_counter() - started
            ),
        )

    extents = domain.extent_map()
    weights = [extents[d] - 1 for d in dims]
    rank = len(dims)
    slack = PORTFOLIO_SLACK if measure > 0 else 1.0

    # Per-dimension values in tie_break_key order (0, 1, -1, 2, ...):
    # within every pruned subtree, complete vectors appear in the
    # canonical preference order, and the final rank re-sorts by
    # (predicted, tie_break_key) anyway — determinism twice over.
    values_order = [0]
    for magnitude in range(1, bound + 1):
        values_order += [magnitude, -magnitude]

    pool = {default.coefficients: default_candidate}
    incumbent = [default_cost.cycles]
    enumerated = [0]
    pruned = [0]
    validity_checks = [0]

    def admit_bound() -> float:
        return incumbent[0] * slack

    def visit(prefix: List[int], span: int) -> None:
        floor = cost_lower_bound(
            kernel, domain, spec, span + 1, mean_degree
        )
        if floor > admit_bound():
            pruned[0] += 1
            return
        if len(prefix) == rank:
            coeffs = tuple(prefix)
            if all(a == 0 for a in coeffs):
                return
            if not _normal_form(coeffs):
                return
            if coeffs == default.coefficients:
                return  # already seeded as the incumbent
            enumerated[0] += 1
            schedule = Schedule(tuple(dims), coeffs)
            cost = price(schedule)
            if cost.cycles > admit_bound():
                pruned[0] += 1
                return
            # Validity last: binder criteria can cost an LP each, so
            # only model-competitive vectors pay for the check.
            validity_checks[0] += 1
            coeff_map = schedule.coefficient_map()
            if not all(
                c.is_satisfied(coeff_map, extents) for c in criteria
            ):
                return
            pool[coeffs] = Candidate(schedule, cost)
            if cost.cycles < incumbent[0]:
                incumbent[0] = cost.cycles
            return
        k = len(prefix)
        for value in values_order:
            prefix.append(value)
            visit(prefix, span + abs(value) * weights[k])
            prefix.pop()

    visit([], 0)

    def rank_key(candidate: Candidate):
        return (
            candidate.predicted.cycles,
            tie_break_key(candidate.schedule.coefficients),
        )

    ranked = sorted(pool.values(), key=rank_key)
    best_cycles = ranked[0].predicted.cycles
    ranked = [
        c for c in ranked if c.predicted.cycles <= best_cycles * slack
    ][:portfolio]

    measured_count = 0
    if measure > 0 and measure_fn is not None and len(ranked) > 1:
        timed: List[Candidate] = []
        for candidate in ranked[:measure]:
            try:
                seconds = measure_fn(candidate.schedule)
            except Exception:
                seconds = None
            if seconds is not None:
                measured_count += 1
            timed.append(
                Candidate(
                    candidate.schedule, candidate.predicted, seconds
                )
            )
        ranked = timed + ranked[measure:]

        def measured_key(candidate: Candidate):
            if candidate.measured_seconds is not None:
                return (
                    0,
                    candidate.measured_seconds,
                    tie_break_key(candidate.schedule.coefficients),
                )
            return (1,) + rank_key(candidate)

        ranked.sort(key=measured_key)

    winner, certificate, parallelism = _gated_winner(
        func,
        domain,
        kernel,
        kernel_builder,
        ranked,
        default_candidate,
        verify_winner,
    )
    stats = AutotuneStats(
        enumerated=enumerated[0],
        pruned=pruned[0],
        validity_checks=validity_checks[0],
        measured=measured_count,
        search_seconds=time.perf_counter() - started,
    )
    return AutotuneResult(
        schedule=winner.schedule,
        default=default,
        predicted=winner.predicted,
        default_predicted=default_cost,
        candidates=tuple(ranked),
        stats=stats,
        certificate=certificate,
        parallelism=parallelism,
    )


def _gated_winner(
    func,
    domain,
    default_kernel,
    kernel_builder,
    ranked: List[Candidate],
    default_candidate: Candidate,
    verify_winner: bool,
):
    """First ranked candidate the independent verifier will sign.

    Soundness certificate must prove every call site; parallel-safety
    diagnostics must carry no error (a *refused* axis is a warning —
    the backend simply goes serial there — matching the engine's
    ``verify="full"`` policy). Verification out of scope (mutual
    groups, non-affine descents) keeps the solver default: an
    unprovable win is not adopted.
    """
    if not verify_winner:
        winner = ranked[0] if ranked else default_candidate
        return winner, None, None
    from ..lang.errors import AnalysisError
    from ..verify.races import parallelism_certificate
    from ..verify.soundness import verify_schedule

    for candidate in ranked:
        try:
            certificate, _ = verify_schedule(
                func, candidate.schedule, domain
            )
        except AnalysisError:
            return default_candidate, None, None
        if not certificate.ok:
            continue
        kernel = (
            default_kernel
            if candidate.schedule == default_kernel.schedule
            else kernel_builder(candidate.schedule)
        )
        try:
            parallel = parallelism_certificate(
                kernel, extents=domain.extents
            )
        except AnalysisError:
            parallel = None
        if parallel is not None and any(
            d.severity == "error" for d in parallel.diagnostics()
        ):
            continue
        return candidate, certificate, parallel
    return default_candidate, None, None
