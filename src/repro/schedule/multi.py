"""Conditional parallelisation for many small problems (Section 4.7).

When ``map`` distributes problems over multiprocessors, problem sizes
differ and so may the optimal schedule: for ``f(x, y) = .. f(x-1, y-1)``
the minimal schedule is ``S = x`` when ``nx < ny`` and ``S = y``
otherwise. The single-problem search (which uses the concrete bounds)
cannot be re-run per problem cheaply, so at *compile time* we derive a
set of candidate schedules plus conditions choosing the minimal one at
run time, per problem.

The method, straight from the paper:

1. descent functions must be uniform (affine descents would need the
   runtime ranges, which are exactly what we do not have);
2. create all ``n!`` permutations of the dimensions;
3. for each permutation, find the lexicographically-first valid
   coefficient vector (minimise each dimension in turn, propagating
   the constraints); each such vector is minimal for *some* extents;
4. deduplicate. At run time, pick the candidate with the smallest
   span ``sum |a_k| * (N_k - 1)`` for the problem's extents.

Coefficients are restricted to ``0..bound`` (the paper derives "a
subset of the minimal schedules with positive coefficients").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..analysis.criteria import schedule_criteria
from ..lang.errors import ScheduleError
from ..lang.typecheck import CheckedFunction
from .schedule import Schedule
from .solver import DEFAULT_BOUND


@dataclass(frozen=True)
class ScheduleSet:
    """The compile-time product: candidate schedules for one function."""

    dims: Tuple[str, ...]
    schedules: Tuple[Schedule, ...]

    def select(self, extents: Mapping[str, int]) -> Schedule:
        """The runtime condition: smallest span wins (ties: first)."""
        return min(self.schedules, key=lambda s: s.span(extents))

    def selection_index(self, extents: Mapping[str, int]) -> int:
        """Index of the schedule chosen for ``extents``."""
        chosen = self.select(extents)
        return self.schedules.index(chosen)

    def __len__(self) -> int:
        return len(self.schedules)

    def __iter__(self):
        return iter(self.schedules)


def derive_schedule_set(
    func: CheckedFunction, bound: int = DEFAULT_BOUND
) -> ScheduleSet:
    """Derive the candidate schedules of ``func`` at compile time."""
    criteria = schedule_criteria(func)
    for criterion in criteria:
        if not criterion.is_uniform:
            raise ScheduleError(
                f"conditional parallelisation requires uniform descent "
                f"functions (Section 4.7), but call "
                f"{criterion.descent.call} is not uniform",
                criterion.descent.call.span,
            )
    dims = func.dim_names
    offsets = [c.descent.uniform_offsets() for c in criteria]
    found: List[Schedule] = []
    for permutation in itertools.permutations(range(len(dims))):
        vector = _lex_minimal(permutation, len(dims), offsets, bound)
        if vector is None:
            continue
        schedule = Schedule(dims, vector)
        if schedule not in found:
            found.append(schedule)
    if not found:
        raise ScheduleError(
            f"no valid schedule with coefficients in 0..{bound} for "
            f"dimensions {dims}"
        )
    return ScheduleSet(dims, tuple(found))


def _lex_minimal(
    permutation: Sequence[int],
    rank: int,
    offsets: Sequence[Tuple[int, ...]],
    bound: int,
) -> Optional[Tuple[int, ...]]:
    """The lexicographically-first valid vector for one permutation.

    Minimises ``a[permutation[0]]`` first, then ``a[permutation[1]]``
    under that choice, and so on — each choice kept only if the
    remaining coefficients can still satisfy every criterion
    (constraint propagation via an optimistic bound, exact on full
    assignments).
    """
    chosen: List[Optional[int]] = [None] * rank

    def feasible() -> bool:
        for offset in offsets:
            total = 0
            for k in range(rank):
                contrib = -offset[k]
                if chosen[k] is not None:
                    total += chosen[k] * contrib
                elif contrib > 0:
                    total += bound * contrib  # best case for a_k in 0..bound
            if total < 1:
                return False
        return True

    def assign(position: int) -> bool:
        if position == rank:
            return feasible()
        dim = permutation[position]
        for value in range(0, bound + 1):
            chosen[dim] = value
            if feasible() and assign(position + 1):
                return True
        chosen[dim] = None
        return False

    if not assign(0):
        return None
    return tuple(chosen)  # type: ignore[arg-type]
