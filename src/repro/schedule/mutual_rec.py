"""Mutual recursion: multiple compatible schedules (Section 9).

The paper's future-work sketch, implemented: for a group of mutually
recursive functions, derive one scheduling function per function,

    ``S_f = a_f . x + o_f``

whose partition time-steps are *compatible*: "if S_f(x) < S_g(y) then
f(x) must be computed before g(y)". Each call site ``f -> g`` with
descent ``r`` contributes the cross criterion

    ``S_f(x) - S_g(r(x)) > 0   for all x in f's domain``

— affine in the caller's dimensions once the coefficient vectors and
offsets are fixed, so the single-function machinery (box minimisation,
range-binder constraints, free worst cases) carries over directly.

The search enumerates the joint space of coefficient vectors (bounded,
like Section 4.6/4.7) and integer offsets (the first function's offset
is pinned to 0), ordered by the *global* partition count, so the first
valid assignment is optimal.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..analysis.criteria import min_affine_over_box
from ..analysis.cross import CrossDescent, extract_cross_descents
from ..analysis.affine import Affine
from ..analysis.domain import Domain
from ..lang.errors import ScheduleError
from ..lang.typecheck import CheckedFunction
from .schedule import Schedule

#: Default coefficient bound for the joint search (tighter than the
#: single-function bound: the joint space is a product).
DEFAULT_MUTUAL_BOUND = 2
#: Default bound on |offset|.
DEFAULT_OFFSET_BOUND = 2
#: Guard against combinatorial blow-up of the joint enumeration.
MAX_CANDIDATES = 3_000_000


@dataclass(frozen=True)
class FunctionSchedule:
    """One function's schedule within a mutual group."""

    schedule: Schedule
    offset: int

    def partition_of(self, point) -> int:
        """Global partition of one domain point."""
        return self.schedule.partition_of(point) + self.offset

    def min_partition(self, domain: Domain) -> int:
        """Smallest global partition over ``domain``."""
        return self.schedule.min_partition(domain) + self.offset

    def max_partition(self, domain: Domain) -> int:
        """Largest global partition over ``domain``."""
        return self.schedule.max_partition(domain) + self.offset

    def __str__(self) -> str:
        base = str(self.schedule)
        if self.offset > 0:
            return f"{base} + {self.offset}"
        if self.offset < 0:
            return f"{base} - {-self.offset}"
        return base


@dataclass(frozen=True)
class MutualSchedule:
    """Compatible schedules for a whole group."""

    schedules: Mapping[str, FunctionSchedule]

    def __getitem__(self, name: str) -> FunctionSchedule:
        return self.schedules[name]

    def __iter__(self):
        return iter(self.schedules.items())

    def global_range(
        self, domains: Mapping[str, Domain]
    ) -> Tuple[int, int]:
        """(lowest, highest) global partition over all members."""
        lows = []
        highs = []
        for name, fs in self.schedules.items():
            lows.append(fs.min_partition(domains[name]))
            highs.append(fs.max_partition(domains[name]))
        return min(lows), max(highs)

    def total_partitions(self, domains: Mapping[str, Domain]) -> int:
        """Global partition count (the joint search goal)."""
        low, high = self.global_range(domains)
        return high - low + 1

    def __str__(self) -> str:
        return "; ".join(
            f"S_{name} = {fs}".replace("S = ", "")
            for name, fs in sorted(self.schedules.items())
        )


@dataclass(frozen=True)
class CrossCriterion:
    """The compatibility condition of one cross call site."""

    descent: CrossDescent

    def min_delta(
        self,
        coeffs: Mapping[str, Mapping[str, int]],
        offsets: Mapping[str, int],
        domains: Mapping[str, Domain],
    ) -> float:
        """``min over x of S_caller(x) - S_callee(r(x))``."""
        descent = self.descent
        caller_coeffs = coeffs[descent.caller]
        callee_coeffs = coeffs[descent.callee]
        callee_extents = domains[descent.callee].extent_map()
        caller_extents = domains[descent.caller].extent_map()

        delta = Affine.of(dict(caller_coeffs))
        free_min = 0.0
        for dim, comp in zip(descent.callee_dims, descent.components):
            a_k = callee_coeffs.get(dim, 0)
            if a_k == 0:
                continue
            if comp.is_free:
                top = a_k * (callee_extents[dim] - 1)
                free_min += min(0.0, -top)
                continue
            assert comp.affine is not None
            delta = delta - comp.affine.scale(a_k)

        constant = offsets[descent.caller] - offsets[descent.callee]
        delta = delta + Affine.constant(constant)

        candidates = [delta]
        constraints: List[Affine] = []
        used = [
            b for b in descent.binders
            if any(c.coefficient(b.name) for c in candidates)
        ]
        constraints = [b.hi - b.lo for b in descent.binders]
        if used:
            expanded: List[Affine] = []
            for ends in itertools.product((0, 1), repeat=len(used)):
                substitution = {
                    b.name: (b.lo if end == 0 else b.hi)
                    for b, end in zip(used, ends)
                }
                expanded.append(delta.substitute(substitution))
            candidates = expanded

        minima = [
            min_affine_over_box(c, caller_extents, constraints)
            for c in candidates
        ]
        feasible = [m for m in minima if m is not None]
        if not feasible:
            return math.inf  # the call is never reachable
        return min(feasible) + free_min

    def is_satisfied(self, coeffs, offsets, domains) -> bool:
        """Does the joint assignment satisfy this edge?"""
        return self.min_delta(coeffs, offsets, domains) > 0

    def __str__(self) -> str:
        return f"S_{self.descent.caller} > S_{self.descent.callee} o r"


def group_criteria(
    funcs: Mapping[str, CheckedFunction]
) -> Tuple[CrossCriterion, ...]:
    """All cross criteria of a mutual group (self-calls included)."""
    criteria: List[CrossCriterion] = []
    for func in funcs.values():
        for descent in extract_cross_descents(func, funcs):
            criteria.append(CrossCriterion(descent))
    return tuple(criteria)


def find_mutual_schedules(
    funcs: Mapping[str, CheckedFunction],
    domains: Mapping[str, Domain],
    coeff_bound: int = DEFAULT_MUTUAL_BOUND,
    offset_bound: int = DEFAULT_OFFSET_BOUND,
) -> MutualSchedule:
    """Derive compatible minimal schedules for a mutual group.

    Candidates are ordered by the global partition count, so the first
    valid joint assignment is optimal (within the bounds).
    """
    names = sorted(funcs)
    criteria = group_criteria(funcs)

    coeff_space: List[List[Tuple[int, ...]]] = []
    for name in names:
        rank = len(funcs[name].dim_names)
        coeff_space.append(
            list(itertools.product(
                range(-coeff_bound, coeff_bound + 1), repeat=rank
            ))
        )
    offset_space = [
        (0,) if k == 0 else tuple(
            range(-offset_bound, offset_bound + 1)
        )
        for k in range(len(names))
    ]

    total = 1
    for space in coeff_space:
        total *= len(space)
    for space in offset_space:
        total *= len(space)
    if total > MAX_CANDIDATES:
        raise ScheduleError(
            f"mutual schedule search space has {total} candidates; "
            f"reduce coeff_bound/offset_bound or split the group"
        )

    # Precompute each vector's partition range per function, so the
    # span key is a cheap lookup (the joint space can reach ~1e6).
    ranges: List[Dict[Tuple[int, ...], Tuple[int, int]]] = []
    for name, space in zip(names, coeff_space):
        table: Dict[Tuple[int, ...], Tuple[int, int]] = {}
        for vector in space:
            schedule = Schedule(funcs[name].dim_names, vector)
            domain = domains[name]
            table[vector] = (
                schedule.min_partition(domain),
                schedule.max_partition(domain),
            )
        ranges.append(table)

    def candidate_key(assignment):
        coeff_vectors, offset_vector = assignment
        lows, highs = [], []
        for table, vector, offset in zip(
            ranges, coeff_vectors, offset_vector
        ):
            lo, hi = table[vector]
            lows.append(lo + offset)
            highs.append(hi + offset)
        span = max(highs) - min(lows)
        tie = tuple(
            (abs(a), a < 0)
            for vector in coeff_vectors
            for a in vector
        ) + tuple(abs(o) for o in offset_vector)
        return (span, tie)

    assignments = sorted(
        itertools.product(
            itertools.product(*coeff_space),
            itertools.product(*offset_space),
        ),
        key=candidate_key,
    )

    # min_delta decomposes as base(vectors) + (o_caller - o_callee):
    # cache the expensive base per (criterion, caller vec, callee vec)
    # so offset enumeration costs a dictionary lookup.
    zero_offsets = {name: 0 for name in names}
    index_of = {name: k for k, name in enumerate(names)}
    base_cache: List[Dict[Tuple, float]] = [
        {} for _ in criteria
    ]

    def satisfied(ci, criterion, coeff_vectors, coeffs, offsets):
        caller = criterion.descent.caller
        callee = criterion.descent.callee
        key = (
            coeff_vectors[index_of[caller]],
            coeff_vectors[index_of[callee]],
        )
        base = base_cache[ci].get(key)
        if base is None:
            base = criterion.min_delta(coeffs, zero_offsets, domains)
            base_cache[ci][key] = base
        return base + offsets[caller] - offsets[callee] > 0

    for coeff_vectors, offset_vector in assignments:
        if all(
            all(a == 0 for a in vector) for vector in coeff_vectors
        ):
            continue
        coeffs = {
            name: dict(zip(funcs[name].dim_names, vector))
            for name, vector in zip(names, coeff_vectors)
        }
        offsets = dict(zip(names, offset_vector))
        if all(
            satisfied(ci, criterion, coeff_vectors, coeffs, offsets)
            for ci, criterion in enumerate(criteria)
        ):
            return MutualSchedule(
                {
                    name: FunctionSchedule(
                        Schedule(funcs[name].dim_names, vector),
                        offset,
                    )
                    for name, vector, offset in zip(
                        names, coeff_vectors, offset_vector
                    )
                }
            )
    raise ScheduleError(
        f"no compatible schedules with |coefficients| <= {coeff_bound} "
        f"and |offsets| <= {offset_bound} for group {tuple(names)}"
    )


def brute_force_mutual_valid(
    mutual: MutualSchedule,
    funcs: Mapping[str, CheckedFunction],
    domains: Mapping[str, Domain],
) -> bool:
    """Enumerate every call edge and check the partition ordering."""
    for name, func in funcs.items():
        domain = domains[name]
        caller_sched = mutual[name]
        for descent in extract_cross_descents(func, funcs):
            callee_sched = mutual[descent.callee]
            callee_domain = domains[descent.callee]
            for point in domain.points():
                values = dict(zip(domain.dims, point))
                here = caller_sched.partition_of(point)
                for target in _cross_targets(
                    descent, values, callee_domain
                ):
                    if not callee_domain.contains_tuple(target):
                        continue
                    if not here > callee_sched.partition_of(target):
                        return False
    return True


def _cross_targets(descent: CrossDescent, values, callee_domain):
    binder_ranges = []
    for bound in descent.binders:
        lo = bound.lo.evaluate(values)
        hi = bound.hi.evaluate(values)
        binder_ranges.append((bound.name, range(lo, hi + 1)))
    names = [n for n, _ in binder_ranges]
    for combo in itertools.product(*(r for _, r in binder_ranges)):
        env = dict(values)
        env.update(zip(names, combo))
        fixed = []
        free_dims = []
        for dim, comp in zip(descent.callee_dims, descent.components):
            if comp.is_free:
                fixed.append(None)
                free_dims.append(dim)
            else:
                fixed.append(comp.affine.evaluate(env))
        if not free_dims:
            yield tuple(fixed)
            continue
        extents = callee_domain.extent_map()
        for free_combo in itertools.product(
            *(range(extents[d]) for d in free_dims)
        ):
            result = []
            it = iter(free_combo)
            for value in fixed:
                result.append(next(it) if value is None else value)
            yield tuple(result)
