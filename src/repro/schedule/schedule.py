"""Scheduling functions (Section 4.2) and their validation (4.5).

A schedule for ``f`` is an affine function with integer coefficients

    ``S_f = a1*x1 + ... + an*xn``

mapping each cell of the recursion domain to an integer partition
(time-step). Cells in the same partition are independent and may be
computed concurrently; partitions execute in increasing order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..analysis.affine import Affine, vector_to_affine
from ..analysis.criteria import Criterion, schedule_criteria
from ..analysis.domain import Domain
from ..lang import ast
from ..lang.errors import ScheduleError
from ..lang.typecheck import CheckedFunction


@dataclass(frozen=True)
class Schedule:
    """An affine schedule over the recursion dimensions ``dims``."""

    dims: Tuple[str, ...]
    coefficients: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.coefficients):
            raise ValueError("dims and coefficients must match in length")

    # -- construction -------------------------------------------------------

    @staticmethod
    def of(**coefficients: int) -> "Schedule":
        """Build from keyword coefficients (insertion ordered)."""
        return Schedule(tuple(coefficients), tuple(coefficients.values()))

    @staticmethod
    def from_affine(affine: Affine, dims: Sequence[str]) -> "Schedule":
        """Build from an affine function over ``dims``."""
        if affine.const != 0:
            raise ScheduleError(
                f"schedules have no constant term (got {affine})"
            )
        known = set(dims)
        for dim in affine.dims():
            if dim not in known:
                raise ScheduleError(
                    f"schedule mentions {dim!r}, which is not a recursion "
                    f"dimension of {sorted(known)}"
                )
        table = affine.as_dict()
        return Schedule(
            tuple(dims), tuple(table.get(d, 0) for d in dims)
        )

    @staticmethod
    def from_expr(expr: ast.Expr, dims: Sequence[str]) -> "Schedule":
        """Build a schedule from a user expression (``schedule f : ...``)."""
        from ..analysis.affine import affine_from_expr
        from ..lang.errors import AnalysisError

        try:
            affine = affine_from_expr(expr, dims)
        except AnalysisError as err:
            raise ScheduleError(err.message, err.span) from err
        if affine is None:
            raise ScheduleError(
                f"schedule expression is not affine: {expr}", expr.span
            )
        return Schedule.from_affine(affine, dims)

    # -- serialisation -------------------------------------------------------

    def to_json(self) -> Dict[str, list]:
        """A JSON-safe representation (dims + coefficients)."""
        return {
            "dims": list(self.dims),
            "coefficients": list(self.coefficients),
        }

    @staticmethod
    def from_json(data: Mapping[str, Sequence]) -> "Schedule":
        """Rebuild a schedule from :meth:`to_json` output."""
        try:
            dims = tuple(str(d) for d in data["dims"])
            coefficients = tuple(int(c) for c in data["coefficients"])
        except (KeyError, TypeError, ValueError) as err:
            raise ScheduleError(
                f"malformed serialized schedule: {data!r}"
            ) from err
        return Schedule(dims, coefficients)

    # -- basic queries -------------------------------------------------------

    @property
    def affine(self) -> Affine:
        """The schedule as an affine function."""
        return vector_to_affine(self.dims, self.coefficients)

    def coefficient_map(self) -> Dict[str, int]:
        """Dimension name -> coefficient, as a dict."""
        return dict(zip(self.dims, self.coefficients))

    @property
    def is_zero(self) -> bool:
        """Is every coefficient zero (a single partition)?"""
        return all(c == 0 for c in self.coefficients)

    def partition_of(self, point: Sequence[int]) -> int:
        """The partition (time-step) of a domain point."""
        return sum(a * x for a, x in zip(self.coefficients, point))

    def min_partition(self, domain: Domain) -> int:
        """Smallest partition over ``domain``."""
        return self.affine.min_over_box(domain.extent_map())

    def max_partition(self, domain: Domain) -> int:
        """Largest partition over ``domain``."""
        return self.affine.max_over_box(domain.extent_map())

    def num_partitions(self, domain: Domain) -> int:
        """The schedule-search goal (Section 4.6): fewer is better."""
        return self.max_partition(domain) - self.min_partition(domain) + 1

    def span(self, extents: Mapping[str, int]) -> int:
        """``max(S) - min(S)`` over a box given as an extent map."""
        return sum(
            abs(a) * (extents[d] - 1)
            for d, a in zip(self.dims, self.coefficients)
        )

    # -- validation (Section 4.5) -------------------------------------------

    def validate(
        self,
        criteria: Iterable[Criterion],
        domain: Optional[Domain] = None,
    ) -> None:
        """Raise :class:`ScheduleError` unless valid for all criteria."""
        coeffs = self.coefficient_map()
        extents = domain.extent_map() if domain is not None else None
        for criterion in criteria:
            if not criterion.is_satisfied(coeffs, extents):
                raise ScheduleError(
                    f"schedule {self} violates the dependence of call "
                    f"{criterion.descent.call}: need {criterion}, but the "
                    f"minimum of the left-hand side is "
                    f"{criterion.min_delta(coeffs, extents)}",
                    criterion.descent.call.span,
                )

    def is_valid(
        self,
        criteria: Iterable[Criterion],
        domain: Optional[Domain] = None,
    ) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(criteria, domain)
        except ScheduleError:
            return False
        return True

    def partitions(self, domain: Domain) -> Dict[int, list]:
        """Group all domain points by partition. For small domains."""
        result: Dict[int, list] = {}
        for point in domain.points():
            result.setdefault(self.partition_of(point), []).append(point)
        return dict(sorted(result.items()))

    def __str__(self) -> str:
        if self.is_zero:
            return "S = 0"
        return f"S = {self.affine}"


def validate_user_schedule(
    func: CheckedFunction,
    expr: ast.Expr,
    domain: Optional[Domain] = None,
) -> Schedule:
    """Check a user-provided schedule against ``func``'s dependencies.

    This is the user-verification path of Section 4.5: derive the
    criteria from the recursion and confirm the given schedule
    satisfies every one of them.
    """
    schedule = Schedule.from_expr(expr, func.dim_names)
    schedule.validate(schedule_criteria(func), domain)
    return schedule


def brute_force_valid(
    schedule: Schedule,
    func: CheckedFunction,
    domain: Domain,
) -> bool:
    """Check validity by enumerating the call graph (testing oracle).

    Walks every domain point and every descent, and confirms
    ``S(c1) > S(c2)`` whenever ``c1 -> c2`` with ``c2`` in-domain —
    the partition ordering condition (1) applied to direct edges,
    which by induction implies it for the transitive closure.
    Exponentially slower than the algebraic criteria; small domains
    only.
    """
    from ..analysis.descent import extract_descents

    descents = extract_descents(func)
    extent = domain.extent_map()
    for point in domain.points():
        values = dict(zip(domain.dims, point))
        here = schedule.partition_of(point)
        for descent in descents:
            for target in _descent_targets(descent, values, extent):
                if not domain.contains_tuple(target):
                    continue
                if not here > schedule.partition_of(target):
                    return False
    return True


def _descent_targets(descent, values, extents):
    """All concrete callee points of a descent at ``values``.

    Free components range over their whole dimension; range binders
    range over their (evaluated) bounds.
    """
    import itertools

    binder_ranges = []
    for bound in descent.binders:
        lo = bound.lo.evaluate(values)
        hi = bound.hi.evaluate(values)
        binder_ranges.append((bound.name, range(lo, hi + 1)))
    binder_combos = itertools.product(
        *(r for _, r in binder_ranges)
    )
    binder_names = [name for name, _ in binder_ranges]

    for combo in binder_combos:
        env = dict(values)
        env.update(zip(binder_names, combo))
        fixed = []
        free_dims = []
        for comp in descent.components:
            if comp.is_free:
                fixed.append(None)
                free_dims.append(comp.dim)
            else:
                fixed.append(comp.affine.evaluate(env))
        if not free_dims:
            yield tuple(fixed)
            continue
        ranges = [range(extents[d]) for d in free_dims]
        for free_combo in itertools.product(*ranges):
            result = []
            it = iter(free_combo)
            for value in fixed:
                result.append(next(it) if value is None else value)
            yield tuple(result)
