"""Automatic schedule derivation (Section 4.6).

The search for the coefficients ``a1..an`` is a constraint
satisfaction problem: the per-call-site criteria enforce validity,
and the goal

    ``min over a of  max_x(S_f(x)) - min_x(S_f(x))``

selects the schedule with the fewest partitions, maximising the
average partition size. The goal is non-linear in ``a`` (because of
the max/min over the box), which the paper resolves by observing that
a linear function is extremised component-wise: fixing the *sign* of
each ``a_k`` fixes which corner of the box maximises/minimises it,
giving up to ``2^n`` linear sub-problems (Section 4.6).

Two solvers are provided and cross-checked in the test suite:

* :class:`EnumerativeSolver` — exhaustive search over the bounded
  coefficient box, in order of increasing partition count, so the
  first valid vector found is optimal. Handles every criterion kind.
* :class:`OrthantSolver` — the paper's sign-orthant CSP decomposition,
  solved per orthant with a bounded integer linear program. Restricted
  to uniform criteria (general affine criteria make the constraint
  matrix sign-dependent on ``a`` beyond the orthant pattern; the
  solver falls back to enumeration for those).

Coefficients are bounded (default 10, customisable — Section 4.7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..analysis.criteria import Criterion, schedule_criteria
from ..analysis.domain import Domain
from ..lang.errors import ScheduleError
from ..lang.typecheck import CheckedFunction
from .schedule import Schedule

#: Default bound on |coefficient| (Section 4.7 uses "a small fixed
#: number (10) that is customisable by the end user").
DEFAULT_BOUND = 10


def tie_break_key(vector: Tuple[int, ...]) -> Tuple:
    """The canonical preference among equal-goal coefficient vectors.

    Smaller absolute values win, then positive signs, compared
    lexicographically over the dimensions — the paper's preference for
    the "first set of solution coefficients" made total and explicit.
    Both solvers order ties by this key, so for any (criteria, domain)
    they return the *same* schedule; tests and the kernel cache rely
    on that determinism.
    """
    return tuple((abs(a), a < 0) for a in vector)


@dataclass(frozen=True)
class SearchStats:
    """Diagnostics from a schedule search."""

    candidates_checked: int
    orthants_solved: int
    partitions: int


class EnumerativeSolver:
    """Exhaustive bounded search; the reference solver.

    Candidates are generated in order of increasing goal value
    (partition count for the given domain), so the first valid
    candidate is optimal — and ties break towards small, positive
    coefficients, matching the paper's preference for the "first set
    of solution coefficients".
    """

    def __init__(self, bound: int = DEFAULT_BOUND) -> None:
        if bound < 1:
            raise ValueError("coefficient bound must be >= 1")
        self.bound = bound
        self.last_stats: Optional[SearchStats] = None

    def solve(
        self,
        dims: Sequence[str],
        criteria: Iterable[Criterion],
        domain: Domain,
    ) -> Schedule:
        """Find the partition-minimal valid schedule."""
        criteria = tuple(criteria)
        extents = domain.extent_map()
        weights = [extents[d] - 1 for d in dims]
        checked = 0
        for coeffs in self._candidates(len(dims), weights):
            checked += 1
            schedule = Schedule(tuple(dims), coeffs)
            if schedule.is_zero:
                continue
            if all(
                c.is_satisfied(schedule.coefficient_map(), extents)
                for c in criteria
            ):
                self.last_stats = SearchStats(
                    checked, 0, schedule.num_partitions(domain)
                )
                return schedule
        raise ScheduleError(
            f"no valid schedule with |coefficients| <= {self.bound} for "
            f"dimensions {tuple(dims)}; the recursion admits no affine "
            f"parallelisation in this bound"
        )

    def _candidates(
        self, rank: int, weights: Sequence[int]
    ) -> Iterable[Tuple[int, ...]]:
        """All coefficient vectors, sorted by goal then tie-break.

        Ties order by :func:`tie_break_key` (small absolute values,
        then positive signs, lexicographically over the dimensions).
        """
        values = range(-self.bound, self.bound + 1)
        vectors = itertools.product(values, repeat=rank)

        def key(vector: Tuple[int, ...]):
            goal = sum(abs(a) * w for a, w in zip(vector, weights))
            return (goal, tie_break_key(vector))

        return sorted(vectors, key=key)


class OrthantSolver:
    """The paper's 2^n sign-orthant CSP decomposition (Section 4.6).

    Within one orthant (a fixed sign pattern ``s``), the goal becomes
    the linear function ``sum s_k * a_k * (N_k - 1)`` and uniform
    criteria are linear constraints ``sum(-c_k * a_k) >= 1``, so each
    sub-problem is a small bounded ILP. Orthants whose sign pattern is
    already inconsistent with a criterion are skipped — the pruning
    the paper describes.
    """

    def __init__(self, bound: int = DEFAULT_BOUND) -> None:
        if bound < 1:
            raise ValueError("coefficient bound must be >= 1")
        self.bound = bound
        self.last_stats: Optional[SearchStats] = None

    def solve(
        self,
        dims: Sequence[str],
        criteria: Iterable[Criterion],
        domain: Domain,
    ) -> Schedule:
        """Find the partition-minimal valid schedule."""
        criteria = tuple(criteria)
        if any(not c.is_uniform for c in criteria):
            fallback = EnumerativeSolver(self.bound)
            schedule = fallback.solve(dims, criteria, domain)
            self.last_stats = fallback.last_stats
            return schedule

        extents = domain.extent_map()
        weights = [extents[d] - 1 for d in dims]
        offsets = [c.descent.uniform_offsets() for c in criteria]

        # Cross-orthant ties are ordered by the same key the
        # enumerative solver sorts with, not by orthant iteration
        # order — both solvers must return identical schedules.
        best: Optional[Tuple[Tuple, Tuple[int, ...]]] = None
        orthants = 0
        for signs in itertools.product((1, -1), repeat=len(dims)):
            orthants += 1
            solution = self._solve_orthant(signs, weights, offsets)
            if solution is None:
                continue
            goal = sum(
                abs(a) * w for a, w in zip(solution, weights)
            )
            key = (goal, tie_break_key(solution))
            if best is None or key < best[0]:
                best = (key, solution)
        if best is None:
            raise ScheduleError(
                f"no valid schedule with |coefficients| <= {self.bound} "
                f"for dimensions {tuple(dims)}"
            )
        schedule = Schedule(tuple(dims), best[1])
        self.last_stats = SearchStats(0, orthants, best[0][0] + 1)
        return schedule

    def _solve_orthant(
        self,
        signs: Sequence[int],
        weights: Sequence[int],
        offsets: Sequence[Tuple[int, ...]],
    ) -> Optional[Tuple[int, ...]]:
        """Bounded ILP in one orthant, by depth-first branch and bound.

        Variables ``a_k`` range over ``0..bound`` scaled by the
        orthant sign; the objective is separable and monotone in
        ``|a_k|``, so trying small magnitudes first and pruning on the
        incumbent is exact.
        """
        rank = len(signs)
        best_goal = [None]  # type: List[Optional[int]]
        best_vec: List[Optional[Tuple[int, ...]]] = [None]

        def feasible(prefix: Tuple[int, ...]) -> bool:
            """Optimistic check: can the remaining coefficients still
            satisfy every constraint?"""
            for offset in offsets:
                # delta = sum(-a_k * c_k); fixed part from the prefix,
                # optimistic bound for the rest.
                fixed = sum(
                    -a * c for a, c in zip(prefix, offset)
                )
                headroom = 0
                for k in range(len(prefix), rank):
                    # a_k in 0..bound * sign; choose the best case.
                    contrib = -signs[k] * offset[k]
                    if contrib > 0:
                        headroom += contrib * self.bound
                if fixed + headroom < 1:
                    return False
            return True

        def descend(prefix: Tuple[int, ...], goal: int) -> None:
            if best_goal[0] is not None and goal >= best_goal[0]:
                return
            k = len(prefix)
            if not feasible(prefix):
                return
            if k == rank:
                # feasible() on a full vector is the exact constraint
                # check (no headroom remains).
                best_goal[0] = goal
                best_vec[0] = prefix
                return
            for magnitude in range(0, self.bound + 1):
                value = signs[k] * magnitude
                descend(
                    prefix + (value,), goal + magnitude * weights[k]
                )

        descend((), 0)
        return best_vec[0]


def find_schedule(
    func: CheckedFunction,
    domain: Domain,
    bound: int = DEFAULT_BOUND,
    solver: str = "orthant",
) -> Schedule:
    """Derive a valid, partition-minimal schedule for ``func``.

    Fully automatic: the criteria come from the recursion alone
    (Section 4.6). ``solver`` picks the strategy (``"orthant"`` or
    ``"enumerative"``).
    """
    criteria = schedule_criteria(func)
    if not criteria:
        # No recursive calls: every cell is independent and a single
        # partition suffices.
        return Schedule(func.dim_names, (0,) * len(func.dim_names))
    if solver == "orthant":
        engine = OrthantSolver(bound)
    elif solver == "enumerative":
        engine = EnumerativeSolver(bound)
    else:
        raise ValueError(f"unknown solver {solver!r}")
    return engine.solve(func.dim_names, criteria, domain)
