"""The sliding-window optimisation (Section 4.8).

Partitioning bounds how far back a cell can look: with uniform descent
functions, the cell at partition ``p`` only reads cells at partitions
``p - w .. p - 1``, where

    ``w = max over call sites of (S(x) - S(r(x))) = max_c sum_k a_k*c_k``

(each call-site delta is the constant the validity criterion bounds
above zero). The generated kernel then keeps only ``w + 1`` partitions
of the table resident — small enough for on-chip shared memory on a
GPU, which eliminates most global-memory latency.

With general affine descents the look-back distance depends on the
position in the domain and no constant window exists (the paper's
restriction); :func:`window_size` returns ``None`` in that case.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..analysis.criteria import Criterion
from .schedule import Schedule


def window_size(
    schedule: Schedule, criteria: Iterable[Criterion]
) -> Optional[int]:
    """Number of previous partitions any cell may reference.

    ``None`` when a non-uniform descent makes the window unbounded
    a priori. A recursion with no recursive calls has window 0.
    """
    coeffs = schedule.coefficient_map()
    window = 0
    for criterion in criteria:
        if not criterion.is_uniform:
            return None
        # S(x) - S(r(x)) = sum(-a_k * c_k), a constant for uniform
        # descents: exactly the criterion's min_delta.
        window = max(window, criterion.min_delta(coeffs))
    return window


def window_rows(
    schedule: Schedule, criteria: Iterable[Criterion]
) -> Optional[int]:
    """Table rows the kernel must keep resident (window + current)."""
    size = window_size(schedule, criteria)
    if size is None:
        return None
    return size + 1
