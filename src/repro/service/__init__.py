"""Batch compile-and-execute service (the serving layer).

The paper's amortisation bet — synthesise a kernel once, then throw
thousands of independent problems at it via ``map`` (Sections 4.7,
6) — only pays off operationally with a layer that (a) keeps
compilation products beyond one process and (b) packs concurrent
one-off requests into batched runs. This package provides it:

* :mod:`repro.service.cache` — content-addressed kernel caches
  (bounded in-memory LRU + persistent disk tier);
* :mod:`repro.service.programs` — parse/check/declare DSL programs
  once, bind per-request arguments;
* :mod:`repro.service.queue` — bounded job queue with admission
  control and per-job handles;
* :mod:`repro.service.batcher` — coalesce concurrent requests against
  the same compiled function into one ``map``-style batch;
* :mod:`repro.service.workers` — worker threads (one engine each,
  shared kernel cache) with timeout, bounded retry and graceful drain;
* :mod:`repro.service.stats` — service counters and latency
  percentiles;
* :mod:`repro.service.server` — the :class:`ComputeService` facade,
  a stdlib HTTP front end, and a small client.

Submodules are resolved lazily so that
``repro.runtime.engine -> repro.service.cache`` never cycles through
the heavier service modules (which import the engine).
"""

from __future__ import annotations

_EXPORTS = {
    "CacheInfo": ("cache", "CacheInfo"),
    "LRUKernelCache": ("cache", "LRUKernelCache"),
    "PersistentKernelCache": ("cache", "PersistentKernelCache"),
    "kernel_cache_key": ("cache", "kernel_cache_key"),
    "ServiceProgram": ("programs", "ServiceProgram"),
    "ProgramRegistry": ("programs", "ProgramRegistry"),
    "Job": ("queue", "Job"),
    "JobHandle": ("queue", "JobHandle"),
    "JobState": ("queue", "JobState"),
    "JobQueue": ("queue", "JobQueue"),
    "AdmissionError": ("queue", "AdmissionError"),
    "JobTimeoutError": ("queue", "JobTimeoutError"),
    "Batch": ("batcher", "Batch"),
    "Batcher": ("batcher", "Batcher"),
    "WorkerPool": ("workers", "WorkerPool"),
    "ServiceStats": ("stats", "ServiceStats"),
    "StatsRegistry": ("stats", "StatsRegistry"),
    "classify_failure": ("workers", "classify_failure"),
    "ComputeService": ("server", "ComputeService"),
    "chaos_plan_from_env": ("server", "chaos_plan_from_env"),
    "make_http_server": ("server", "make_http_server"),
    "submit_remote": ("server", "submit_remote"),
    "fetch_remote_stats": ("server", "fetch_remote_stats"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)


def __dir__():
    return __all__
