"""Coalesce concurrent single-problem requests into ``map`` batches.

The paper's conditional-parallelisation machinery (Section 4.7) packs
many independent problems into one launch; serially executing one-off
requests would waste it. The batcher buckets admitted jobs by their
:attr:`~repro.service.queue.Job.group_key` (same program, function
and extraction coordinates) and flushes a bucket when it reaches
``max_batch`` jobs or when its oldest job has waited ``window``
seconds — the classic size-or-time trigger.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .queue import DeadlineError, GroupKey, Job, JobQueue, JobState


@dataclass
class Batch:
    """Jobs that will run as one batched ``map`` launch."""

    key: GroupKey
    jobs: List[Job] = field(default_factory=list)

    @property
    def program_sha(self) -> str:
        """The shared program hash."""
        return self.key[0]

    @property
    def function(self) -> str:
        """The shared function name."""
        return self.key[1]

    def __len__(self) -> int:
        return len(self.jobs)


class Batcher(threading.Thread):
    """Pulls jobs off the admission queue into keyed buckets.

    Runs as a daemon thread; :meth:`stop` drains every open bucket so
    no admitted job is lost on shutdown.
    """

    def __init__(
        self,
        jobs: JobQueue,
        batches: "_queue.Queue[Optional[Batch]]",
        window: float = 0.01,
        max_batch: int = 32,
        stats=None,
    ) -> None:
        super().__init__(name="repro-batcher", daemon=True)
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.jobs = jobs
        self.batches = batches
        self.window = max(0.0, window)
        self.max_batch = max_batch
        self.stats = stats
        self._buckets: Dict[GroupKey, List[Job]] = {}
        self._opened: Dict[GroupKey, float] = {}
        self._stop = threading.Event()
        self._drained = threading.Event()

    # -- thread body ---------------------------------------------------------

    def run(self) -> None:
        # Poll at half the window but never slower than 20 Hz, so a
        # stop() request (or a size-triggered flush for another key)
        # is noticed promptly even under long windows.
        poll = min(max(self.window / 2.0, 0.001), 0.05)
        while True:
            job = self.jobs.pop(timeout=poll)
            now = time.monotonic()
            if job is not None:
                self._add(job, now)
            self._flush_due(now)
            if self._stop.is_set() and job is None:
                # Stop requested and the queue stayed empty for one
                # poll: flush the stragglers and leave.
                if self.jobs.depth() == 0:
                    self._flush_all()
                    self._drained.set()
                    return

    def _add(self, job: Job, now: float) -> None:
        if job.expired(now):
            # Dequeue-time deadline check: a job whose budget was
            # eaten by queue wait is *shed* here — it never reaches a
            # bucket, so no launch is ever attempted on its behalf.
            job.handle.reject(
                DeadlineError(
                    f"job {job.job_id} deadline expired after "
                    f"{job.age(now):.3f}s in the queue "
                    f"(timeout {job.timeout}s); shed before launch"
                ),
                state=JobState.TIMED_OUT,
                latency=job.age(now),
            )
            if self.stats is not None:
                self.stats.job_shed()
            return
        key = job.group_key
        bucket = self._buckets.setdefault(key, [])
        if not bucket:
            self._opened[key] = now
        bucket.append(job)
        if len(bucket) >= self.max_batch:
            self._flush(key)

    def _flush_due(self, now: float) -> None:
        due = [
            key
            for key, opened in self._opened.items()
            if now - opened >= self.window
        ]
        for key in due:
            self._flush(key)

    def _flush_all(self) -> None:
        for key in list(self._buckets):
            self._flush(key)

    def _flush(self, key: GroupKey) -> None:
        bucket = self._buckets.pop(key, None)
        self._opened.pop(key, None)
        if bucket:
            self.batches.put(Batch(key, bucket))

    # -- shutdown ------------------------------------------------------------

    def stop(self, drain_timeout: float = 5.0) -> bool:
        """Flush everything and stop; True if fully drained."""
        self._stop.set()
        if not self.is_alive():
            self._flush_all()
            return True
        return self._drained.wait(drain_timeout)

    def open_jobs(self) -> int:
        """Jobs currently buffered in buckets (approximate)."""
        return sum(len(b) for b in self._buckets.values())
