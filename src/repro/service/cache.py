"""Content-addressed kernel caches: in-memory LRU + persistent disk.

The paper's economics (Section 6) hinge on compiling once per
function (~1 s of CLooG overhead) and running thousands of problems
against the product. This module makes that amortisation survive the
process: compilation products are keyed by a canonical content hash
of everything that determines the generated code —

    (checked function source form, schedule dims + coefficients,
     probability mode, backend, serial format version)

— and stored in two tiers:

* :class:`LRUKernelCache` — a bounded, thread-safe in-memory tier with
  hit/miss/eviction counters (the :class:`~repro.runtime.engine.Engine`
  default);
* :class:`PersistentKernelCache` — the same memory tier backed by a
  directory of pickled kernel plans. Writes are atomic (temp file +
  ``os.replace``); loads are corruption-tolerant (a bad entry is
  evicted and counted, never fatal); the executable callable is
  rebuilt by re-exec'ing the backend's generated source.

Nothing here imports the runtime at module level, so the engine can
depend on this module without a cycle.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Tuple

#: Bump when the cache key derivation or the serialized record schema
#: changes; old on-disk entries then simply miss instead of colliding.
#: v2: kernels accept partition-range arguments (``part_lo`` /
#: ``part_hi``) and records carry the producing backend.
#: v3: records carry an artifact ``kind`` — ``"python-src"`` rebuilds
#: by re-exec'ing generated source, ``"native-so"`` additionally
#: embeds the compiled shared object (sha256-verified before it is
#: ever ``dlopen``'d).
#: v4: adds the ``"autotune-schedule"`` kind — the autotuner's winner
#: persisted per (kernel digest, domain-size bucket) so warm
#: processes and service replicas skip the search. Old-schema
#: entries are evicted by the MAGIC check as before.
KEY_FORMAT = 4

#: Leading magic of every on-disk record. Checked *before* the pickle
#: payload is touched: entries written by an older (or entirely
#: foreign) schema are evicted without ever being unpickled.
MAGIC = b"repro-kernel-cache:%d\n" % KEY_FORMAT


class CacheInfo(NamedTuple):
    """A ``functools.lru_cache``-style counter snapshot, extended with
    the disk tier's counters (all zero for memory-only caches).

    ``backends`` breaks the resident entries down by the code
    generator that produced them (``(("vector", 3), ("scalar", 1))``),
    so operators can see at a glance which kernels took the vector
    path — the per-kernel eligibility *reason* lives on
    ``CompiledKernel.eligibility``.
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int
    evictions: int
    disk_hits: int
    disk_stores: int
    corrupt_evictions: int
    backends: Tuple[Tuple[str, int], ...] = ()
    #: Filled by ``Engine.cache_info()``: schedules the independent
    #: verifier confirmed / rejected for this engine.
    verified: int = 0
    verify_failures: int = 0
    #: Filled by ``Engine.cache_info()`` in autotune mode: full
    #: portfolio searches run vs winners reused from a memo or the
    #: persistent (kernel digest, size bucket) record.
    autotune_searches: int = 0
    autotune_hits: int = 0


def function_source_form(func) -> str:
    """The checked function's canonical source text (memoised).

    ``str(func.definition)`` is the function's source form (return
    type, parameter types, body) — everything compilation reads from
    the function. Alphabet contents, matrices and models are
    *runtime* context (the generated code reads them from ``ctx``)
    and are deliberately absent. Memoised on the function object —
    ``map`` workloads derive a key per problem.
    """
    form = getattr(func, "_cache_source_form", None)
    if form is None:
        form = str(func.definition)
        try:
            func._cache_source_form = form
        except AttributeError:  # frozen/slotted functions: recompute
            pass
    return form


def canonical_kernel_form(
    func, schedule, prob_mode: str, backend: str
) -> str:
    """The canonical text a cache key hashes."""
    form = function_source_form(func)
    return "\n".join(
        (
            f"v{KEY_FORMAT}",
            form,
            ",".join(schedule.dims),
            ",".join(str(c) for c in schedule.coefficients),
            prob_mode,
            backend,
        )
    )


def kernel_cache_key(
    func, schedule, prob_mode: str, backend: str
) -> str:
    """Content-addressed cache key: sha256 of the canonical form."""
    text = canonical_kernel_form(func, schedule, prob_mode, backend)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def domain_bucket(extents) -> Tuple[int, ...]:
    """Round each extent up to a power of two.

    Autotune decisions are cached per bucket, not per exact extent:
    the winning schedule is a shared-memory-fit question, stable
    within a factor-of-two size band, and exact-extent keys would
    re-search for every database sequence length in a ``map``.
    """
    return tuple(
        1 if e <= 1 else 1 << (int(e) - 1).bit_length()
        for e in extents
    )


def autotune_cache_key(
    func, prob_mode: str, bound: int, spec_name: str, bucket
) -> str:
    """Key of a persisted autotune decision.

    Hashes the kernel-determining inputs (function source form,
    probability mode), the search parameters (coefficient bound,
    device spec), and the domain-size bucket — everything that can
    change which schedule wins. Deliberately *not* the schedule
    itself: the schedule is the cached value.
    """
    text = "\n".join(
        (
            f"v{KEY_FORMAT}",
            "autotune",
            function_source_form(func),
            prob_mode,
            str(int(bound)),
            spec_name,
            ",".join(str(int(b)) for b in bucket),
        )
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ScheduleRecord:
    """A persisted autotuner decision (record kind
    ``"autotune-schedule"``).

    Stores the winning :class:`~repro.schedule.schedule.Schedule`
    plus free-form provenance ``meta`` (predicted cycles, default
    coefficients, search stats). Quacks enough like a compilation
    product for both cache tiers: ``record_kind`` routes
    serialisation, ``backend`` shows up in the
    :meth:`LRUKernelCache.cache_info` breakdown.
    """

    record_kind = "autotune-schedule"
    backend = "autotune"

    def __init__(self, schedule, meta: Optional[dict] = None) -> None:
        self.schedule = schedule
        self.meta = dict(meta or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScheduleRecord({self.schedule}, meta={self.meta!r})"


def encode_compiled(compiled) -> bytes:
    """Serialize a ``CompiledKernel`` for the disk tier.

    The record is the :data:`MAGIC` header followed by a pickled
    payload; the header carries the schema version in cleartext so
    readers can reject stale entries without unpickling them.

    Native products embed the compiled shared object itself (kind
    ``"native-so"``) with its sha256, so a warm process on the same
    platform skips the C compiler entirely; the digest is re-verified
    at decode time before the bytes go anywhere near ``dlopen``.

    :class:`ScheduleRecord` values (autotuner decisions) serialise as
    kind ``"autotune-schedule"`` — no source, no artifact, just the
    winning schedule's JSON form and its provenance.
    """
    if getattr(compiled, "record_kind", None) == "autotune-schedule":
        record = {
            "format": KEY_FORMAT,
            "kind": "autotune-schedule",
            "schedule": compiled.schedule.to_json(),
            "meta": compiled.meta,
        }
        return MAGIC + pickle.dumps(
            record, protocol=pickle.HIGHEST_PROTOCOL
        )
    record = {
        "format": KEY_FORMAT,
        "kind": "python-src",
        "payload": compiled.kernel.to_payload(),
        "source": compiled.source,
        "compile_seconds": compiled.compile_seconds,
        "backend": getattr(compiled, "backend", "scalar"),
    }
    so_path = getattr(compiled, "so_path", None)
    if getattr(compiled, "backend", "scalar") == "native":
        from ..runtime import native

        if native.sanitize_active():
            # Instrumented (REPRO_NATIVE_SANITIZE) artifacts are a
            # diagnostic build: embedding one would hand every warm
            # process an ASan/UBSan-linked library it cannot dlopen
            # in-process. Memory tier only; the disk tier misses.
            raise ValueError(
                "refusing to embed a sanitizer-instrumented shared "
                "object in a cache record"
            )
        if not so_path:
            raise ValueError(
                "native compilation product has no shared object path"
            )
        with open(so_path, "rb") as handle:
            so_bytes = handle.read()
        if not so_bytes:
            # A torn build artifact (e.g. a concurrent compile racing
            # the publish) must not be immortalised as a cache record.
            raise ValueError(
                f"refusing to embed empty shared object {so_path}"
            )
        record["kind"] = "native-so"
        record["so"] = so_bytes
        record["so_sha256"] = hashlib.sha256(so_bytes).hexdigest()
    return MAGIC + pickle.dumps(
        record, protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_compiled(data: bytes, so_dir: Optional[str] = None):
    """Rebuild a ``CompiledKernel`` from :func:`encode_compiled` bytes.

    The :data:`MAGIC` header is verified *before* any unpickling: an
    entry from an older schema (or not written by this cache at all)
    raises ``ValueError`` immediately — callers evict it as corrupt —
    rather than being fed to ``pickle.loads`` and trusted to fail.
    Python products are reconstructed by re-exec'ing the generated
    source (the backends emit a self-contained module defining
    ``kernel(T, ctx, part_lo=None, part_hi=None)``).

    ``"native-so"`` records are reconstructed by materialising the
    embedded shared object as ``<sha256>.so`` under ``so_dir`` (the
    cache directory; the native build dir when None) — but only after
    the recorded digest matches the embedded bytes. A bit-flipped
    record is evicted as corrupt; it is **never** handed to
    ``dlopen``, where damage would be undefined behaviour instead of
    a checksum error. The restored object still passes the native
    runtime's segfault-guarded subprocess probe before any in-process
    load.
    """
    from ..ir.kernel import Kernel
    from ..runtime.engine import CompiledKernel

    if not data.startswith(MAGIC):
        head = bytes(data[:32])
        raise ValueError(
            f"cache record header {head!r} does not match "
            f"format {KEY_FORMAT} — stale or foreign entry"
        )
    try:
        record = pickle.loads(data[len(MAGIC):])
        if record["format"] != KEY_FORMAT:
            raise ValueError(
                f"cache record format {record['format']!r} != {KEY_FORMAT}"
            )
        if record.get("kind") == "autotune-schedule":
            from ..schedule.schedule import Schedule

            return ScheduleRecord(
                Schedule.from_json(record["schedule"]),
                record.get("meta", {}),
            )
        kernel = Kernel.from_payload(record["payload"])
        source = record["source"]
        kind = record.get("kind", "python-src")
        so_path = None
        if kind == "native-so":
            run, so_path = _decode_native(record, kernel, so_dir)
        elif kind == "python-src":
            namespace: Dict[str, object] = {}
            exec(  # noqa: S102 - our own generated code
                compile(
                    source, f"<cached-kernel:{kernel.name}>", "exec"
                ),
                namespace,
            )
            run = namespace["kernel"]
        else:
            raise ValueError(f"unknown cache record kind {kind!r}")
    except ValueError:
        raise
    except Exception as err:
        raise ValueError(f"corrupt cache record: {err}") from err
    return CompiledKernel(
        kernel,
        run,
        source,
        float(record.get("compile_seconds", 0.0)),
        backend=str(record.get("backend", "scalar")),
        so_path=so_path,
    )


def _decode_native(record, kernel, so_dir: Optional[str]):
    """Verify and materialise an embedded shared object.

    Returns ``(run, so_path)``. Raises ``ValueError`` on digest
    mismatch — before the bytes touch the filesystem, let alone
    ``dlopen`` — and converts a
    :class:`~repro.lang.errors.NativeBuildError` (probe death, no
    loader on this host) into ``ValueError`` so the caller evicts
    the record as corrupt and recompiles.
    """
    so_bytes = record["so"]
    recorded = record["so_sha256"]
    actual = hashlib.sha256(so_bytes).hexdigest()
    if actual != recorded:
        raise ValueError(
            f"native cache record digest mismatch "
            f"({actual[:12]} != {recorded[:12]}) — refusing to load "
            f"the shared object"
        )
    if so_dir is None:
        from ..runtime import native

        so_dir = native.build_dir()
    os.makedirs(so_dir, exist_ok=True)
    so_path = os.path.join(so_dir, recorded + ".so")
    if not os.path.exists(so_path):
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".so", dir=so_dir
        )
        with os.fdopen(fd, "wb") as handle:
            handle.write(so_bytes)
        os.replace(tmp_path, so_path)
    from ..lang.errors import NativeBuildError
    from ..runtime import native

    try:
        run = native.load_compiled(kernel, so_path)
    except NativeBuildError as err:
        raise ValueError(
            f"cached shared object failed the load probe: {err}"
        ) from err
    return run, so_path


class LRUKernelCache:
    """Bounded in-memory tier: least-recently-used eviction, counters.

    Thread-safe; also speaks enough of the mapping protocol
    (``values``/``__len__``/``__contains__``/``__getitem__``) for the
    existing callers that iterate the engine's cache.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_stores = 0
        self.corrupt_evictions = 0

    # -- core protocol -------------------------------------------------------

    def lookup(self, key: str):
        """The cached product for ``key``, or None (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
            return None

    def store(self, key: str, compiled) -> None:
        """Insert (or refresh) ``key``, evicting the LRU overflow."""
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def cache_info(self) -> CacheInfo:
        """Counter snapshot."""
        with self._lock:
            by_backend: Dict[str, int] = {}
            for entry in self._entries.values():
                backend = getattr(entry, "backend", "scalar")
                by_backend[backend] = by_backend.get(backend, 0) + 1
            return CacheInfo(
                self.hits,
                self.misses,
                self.capacity,
                len(self._entries),
                self.evictions,
                self.disk_hits,
                self.disk_stores,
                self.corrupt_evictions,
                tuple(sorted(by_backend.items())),
            )

    def clear(self) -> None:
        """Drop every in-memory entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # -- mapping compatibility ----------------------------------------------

    def values(self) -> List[object]:
        """The cached products, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def keys(self) -> List[str]:
        """The cached keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __getitem__(self, key: str):
        with self._lock:
            return self._entries[key]


class PersistentKernelCache(LRUKernelCache):
    """Memory tier + content-addressed directory of kernel plans.

    One file per key (``<sha256>.kpkl``) under ``directory``. The
    directory is **multi-process safe**: every record lands via
    atomic temp-file + ``os.replace`` (readers only ever observe
    complete entries), writers and the prune pass serialise on a
    cross-process :class:`~repro.service.locking.FileLock`
    (``.lock`` sidecar), and a crash-recovery sweep at start-up
    quarantines torn or foreign entries into ``.quarantine/`` —
    preserved for post-mortem, never re-read, never fatal — and
    clears stale temp files left by crashed writers. A load that
    fails for any reason likewise quarantines the file and counts a
    ``corrupt_eviction`` — a damaged cache degrades to
    recompilation, never to a crash. ``disk_capacity`` (entries)
    bounds the directory by evicting the oldest files (mtime order).
    """

    SUFFIX = ".kpkl"
    QUARANTINE = ".quarantine"
    #: A ``.tmp-*`` file older than this is a crashed writer's
    #: leftover, not a write in flight, and is swept.
    STALE_TMP_SECONDS = 60.0

    def __init__(
        self,
        directory: str,
        capacity: int = 256,
        disk_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(capacity)
        if disk_capacity is not None and disk_capacity < 1:
            raise ValueError(
                f"disk_capacity must be >= 1, got {disk_capacity}"
            )
        self.directory = str(directory)
        self.disk_capacity = disk_capacity
        os.makedirs(self.directory, exist_ok=True)
        from .locking import FileLock

        self._file_lock = FileLock(
            os.path.join(self.directory, ".lock")
        )
        self._recover_sweep()

    # -- tiered lookup -------------------------------------------------------

    def lookup(self, key: str):
        """Memory first, then disk (promoting into memory)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        compiled = self._load_from_disk(key)
        with self._lock:
            if compiled is not None:
                self.hits += 1
                self.disk_hits += 1
                self._store_memory(key, compiled)
                return compiled
            self.misses += 1
            return None

    def store(self, key: str, compiled) -> None:
        """Insert into both tiers; disk errors degrade to memory-only.

        The disk write and the prune pass hold the cross-process file
        lock, so two processes storing the same digest concurrently
        serialise instead of racing the prune against each other's
        fresh records. A lock timeout is just another disk error:
        memory-only, never fatal.
        """
        with self._lock:
            self._store_memory(key, compiled)
        try:
            with self._file_lock:
                self._write_to_disk(key, compiled)
                with self._lock:
                    self.disk_stores += 1
                self._prune_disk()
        except (OSError, ValueError):
            pass  # a read-only / full / contended disk (or an
            # unencodable product, e.g. a torn .so) never fails
            # compilation — the disk tier just misses next time

    def _store_memory(self, key: str, compiled) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- disk tier -----------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + self.SUFFIX)

    def _load_from_disk(self, key: str):
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        try:
            return decode_compiled(data, so_dir=self.directory)
        except ValueError:
            self._quarantine(path)
            with self._lock:
                self.corrupt_evictions += 1
            return None

    def _write_to_disk(self, key: str, compiled) -> None:
        data = encode_compiled(compiled)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=self.SUFFIX, dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_path, self._path(key))
        except OSError:
            self._evict_file(tmp_path)
            raise

    def _prune_disk(self) -> None:
        if self.disk_capacity is None:
            return
        try:
            entries = [
                os.path.join(self.directory, name)
                for name in os.listdir(self.directory)
                if name.endswith(self.SUFFIX)
                and not name.startswith(".tmp-")
            ]
            if len(entries) <= self.disk_capacity:
                return
            entries.sort(key=lambda p: os.path.getmtime(p))
            for path in entries[: len(entries) - self.disk_capacity]:
                self._evict_file(path)
        except OSError:
            pass

    @staticmethod
    def _evict_file(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _quarantine(self, path: str) -> None:
        """Move a torn/foreign record into ``.quarantine/``.

        Quarantined entries are kept for post-mortem instead of
        silently deleted, and — crucially for multi-process safety —
        the atomic rename means two processes discovering the same
        torn record race benignly: exactly one wins the move, the
        loser's rename fails on the vanished source and is ignored.
        """
        quarantine_dir = os.path.join(self.directory, self.QUARANTINE)
        try:
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(
                path,
                os.path.join(
                    quarantine_dir,
                    f"{os.path.basename(path)}.{os.getpid()}",
                ),
            )
        except OSError:
            self._evict_file(path)

    def _recover_sweep(self) -> None:
        """Crash recovery at start-up: clear wreckage, keep evidence.

        Quarantines every record whose :data:`MAGIC` header does not
        match (a torn write, a schema change, or a foreign file) and
        removes ``.tmp-*`` files older than
        :data:`STALE_TMP_SECONDS` — the leftovers of writers that
        died between ``mkstemp`` and ``os.replace``. Young temp
        files are left alone: they may be a live sibling's write in
        flight. Best-effort throughout; a contended or read-only
        directory never blocks construction.
        """
        import time

        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        now = time.time()
        for name in names:
            path = os.path.join(self.directory, name)
            if name.startswith(".tmp-"):
                try:
                    age = now - os.path.getmtime(path)
                except OSError:
                    continue
                if age > self.STALE_TMP_SECONDS:
                    self._evict_file(path)
                continue
            if not name.endswith(self.SUFFIX):
                continue
            try:
                with open(path, "rb") as handle:
                    head = handle.read(len(MAGIC))
            except OSError:
                continue
            if head != MAGIC:
                self._quarantine(path)
                with self._lock:
                    self.corrupt_evictions += 1

    def disk_keys(self) -> Tuple[str, ...]:
        """The keys currently present on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return ()
        return tuple(
            name[: -len(self.SUFFIX)]
            for name in sorted(names)
            if name.endswith(self.SUFFIX) and not name.startswith(".tmp-")
        )
