"""A small portable cross-process file lock.

:class:`FileLock` guards multi-process critical sections — the
persistent kernel cache's store/prune paths — with an exclusive OS
advisory lock on a sidecar lock file: ``fcntl.flock`` on POSIX,
``msvcrt.locking`` on Windows, and a clean no-op where neither
exists (single-process semantics are then unchanged). A process
crash releases the OS lock automatically, so a holder dying
mid-write can never deadlock its siblings — torn records are the
reader's problem and are handled by the cache's quarantine sweep.

The lock is also reentrant-unsafe by design (tiny, honest): one
:class:`FileLock` instance serialises its own process's threads with
an internal ``threading.Lock`` and everyone else with the OS lock.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - windows
    fcntl = None

try:  # Windows
    import msvcrt
except ImportError:
    msvcrt = None  # pragma: no cover - posix


class LockTimeout(OSError):
    """The lock could not be acquired before the timeout."""


class FileLock:
    """Exclusive advisory lock on ``path`` (created on first use).

    Use as a context manager::

        lock = FileLock(os.path.join(cache_dir, ".lock"))
        with lock:
            ...  # cross-process critical section

    ``timeout`` bounds the acquire wait (seconds); ``None`` waits
    forever. Acquisition polls with a short sleep rather than using
    blocking mode, so a timeout can be honoured portably.
    """

    def __init__(
        self, path: str, timeout: Optional[float] = 30.0
    ) -> None:
        self.path = path
        self.timeout = timeout
        self._thread_lock = threading.Lock()
        self._fd: Optional[int] = None

    @property
    def supported(self) -> bool:
        """Does this platform have a real cross-process lock?"""
        return fcntl is not None or msvcrt is not None

    def _try_lock(self, fd: int) -> bool:
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return True
            except OSError:
                return False
        if msvcrt is not None:  # pragma: no cover - windows
            try:
                msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)
                return True
            except OSError:
                return False
        return True  # no OS lock available: degrade to thread lock

    def _unlock(self, fd: int) -> None:
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
        elif msvcrt is not None:  # pragma: no cover - windows
            try:
                os.lseek(fd, 0, os.SEEK_SET)
                msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)
            except OSError:
                pass

    def acquire(self) -> None:
        """Take the lock; :class:`LockTimeout` after ``timeout`` seconds."""
        self._thread_lock.acquire()
        try:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            deadline = (
                None
                if self.timeout is None
                else time.monotonic() + self.timeout
            )
            while not self._try_lock(fd):
                if (
                    deadline is not None
                    and time.monotonic() >= deadline
                ):
                    os.close(fd)
                    raise LockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout}s"
                    )
                time.sleep(0.01)
            self._fd = fd
        except BaseException:
            self._thread_lock.release()
            raise

    def release(self) -> None:
        """Release the OS lock and the in-process mutex."""
        fd, self._fd = self._fd, None
        try:
            if fd is not None:
                self._unlock(fd)
                os.close(fd)
        finally:
            self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
