"""Service-side DSL programs: check once, bind per request.

A service job names a *program* (DSL declarations: alphabets,
matrices, models, functions, schedules, plus constant ``let``s), a
*function* in it, and JSON-able *arguments*. Programs are parsed and
type-checked once per distinct source text (sha256-keyed registry) so
the per-request work is just argument binding — the compile cache
then takes care of the kernels.

Service programs are declaration-only: ``print``/``map``/``load``
statements are imperative script actions and are rejected, keeping a
submitted program free of side effects.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Mapping, Optional, Tuple

from ..extensions.hmm import Hmm
from ..extensions.submatrix import SubstitutionMatrix
from ..lang import ast
from ..lang.errors import RuntimeDslError
from ..lang.parser import parse_program
from ..lang.typecheck import CheckedFunction, check_program
from ..lang.types import IntType, SeqType
from ..runtime.values import Alphabet, Sequence


def program_sha(text: str) -> str:
    """The registry key of a program source text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ServiceProgram:
    """One checked, declaration-only program plus its bound globals.

    ``lint=True`` (the default) is the service's admission control:
    the independent verifier and access analysis run once at
    registration, and any error-severity diagnostic rejects the
    program with :class:`~repro.lang.errors.VerificationError` — the
    HTTP layer renders it as a 400 with the caret diagnostics, so a
    racy schedule or out-of-bounds recurrence never reaches a worker.
    """

    def __init__(self, text: str, lint: bool = True) -> None:
        self.text = text
        self.sha = program_sha(text)
        self.checked = check_program(parse_program(text))
        if lint:
            self._admission_lint()
        self.alphabets: Dict[str, Alphabet] = {
            name: Alphabet(name, chars)
            for name, chars in self.checked.alphabets.items()
        }
        self.globals: Dict[str, object] = {}
        for name, decl in self.checked.matrices.items():
            self.globals[name] = SubstitutionMatrix.from_decl(
                decl, self.alphabets
            )
        for name, decl in self.checked.hmms.items():
            self.globals[name] = Hmm.from_decl(decl, self.alphabets)
        for stmt in self.checked.program.statements:
            if isinstance(stmt, ast.LetStmt):
                self.globals[stmt.name] = self._eval_const(stmt.value)
            elif isinstance(
                stmt, (ast.PrintStmt, ast.MapStmt, ast.LoadStmt)
            ):
                raise RuntimeDslError(
                    "service programs are declaration-only: "
                    f"remove the {type(stmt).__name__} statement",
                    stmt.span,
                )

    def _admission_lint(self) -> None:
        """Reject programs the static verifier finds errors in."""
        from ..lang.errors import VerificationError
        from ..lang.source import SourceText
        from ..verify import lint_checked
        from ..verify.diagnostics import Severity

        source = SourceText(self.text, "<program>")
        result = lint_checked(self.checked, source=source)
        errors = result.report.by_severity(Severity.ERROR)
        if errors:
            raise VerificationError(
                "program rejected by admission control:\n"
                + "\n".join(d.render(source) for d in errors)
            )

    # -- declaration-time evaluation ----------------------------------------

    def _eval_const(self, expr: ast.Expr) -> object:
        """Evaluate a ``let`` right-hand side (constants only)."""
        if isinstance(
            expr,
            (ast.StrLit, ast.IntLit, ast.FloatLit, ast.BoolLit,
             ast.CharLit),
        ):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name in self.globals:
                return self.globals[expr.name]
            raise RuntimeDslError(
                f"unknown name {expr.name!r} in let", expr.span
            )
        raise RuntimeDslError(
            f"service lets must be constants, got {expr}", expr.span
        )

    # -- lookup & binding ----------------------------------------------------

    def function(self, name: str) -> CheckedFunction:
        """Look a checked function up by name."""
        return self.checked.function(name)

    def user_schedule(self, name: str) -> Optional[ast.Expr]:
        """The program's ``schedule`` declaration for ``name``, if any."""
        return self.checked.schedules.get(name)

    def bind(
        self,
        function: str,
        args: Mapping[str, object],
    ) -> Tuple[Dict[str, object], Dict[str, int], Dict[str, int]]:
        """Bind request arguments to ``function``'s parameters.

        Returns ``(bindings, at, initial)`` in the engine's terms:
        values for calling parameters, explicit coordinates for
        recursive ones (absent recursive arguments default per
        problem, exactly like ``map``'s ``_`` holes).

        Argument forms: plain JSON scalars; strings coerce to
        sequences for ``seq`` parameters (alphabet from the parameter
        type, else first covering declared alphabet);
        ``{"ref": name}`` picks a declared global (model, matrix,
        let). A calling parameter with no argument auto-binds to the
        declared global of the same name when one exists.
        """
        func = self.function(function)
        known = {p.name for p in func.params}
        for name in args:
            if name not in known:
                raise RuntimeDslError(
                    f"{function} has no parameter {name!r} "
                    f"(parameters: {', '.join(sorted(known))})"
                )
        bindings: Dict[str, object] = {}
        at: Dict[str, int] = {}
        initial: Dict[str, int] = {}
        for param in func.params:
            if param.name in args:
                value = self._resolve(args[param.name], param)
            elif not param.is_recursive and param.name in self.globals:
                value = self.globals[param.name]
            else:
                continue  # recursive: default per problem
            if param.is_recursive:
                coordinate = int(value)
                at[param.name] = coordinate
                if isinstance(param.type, IntType):
                    initial[param.name] = coordinate
            else:
                bindings[param.name] = self._coerce(param, value)
        missing = [
            p.name
            for p in func.calling_params
            if p.name not in bindings
        ]
        if missing:
            raise RuntimeDslError(
                f"missing value(s) for parameter(s) "
                f"{', '.join(missing)} of {function}"
            )
        return bindings, at, initial

    def _resolve(self, value: object, param) -> object:
        if isinstance(value, dict):
            ref = value.get("ref")
            if not isinstance(ref, str) or set(value) != {"ref"}:
                raise RuntimeDslError(
                    f"argument for {param.name!r} must be a scalar, "
                    f"a string, or {{'ref': name}}; got {value!r}"
                )
            if ref not in self.globals:
                raise RuntimeDslError(
                    f"{{'ref': {ref!r}}}: no declared global of "
                    f"that name"
                )
            return self.globals[ref]
        return value

    def _coerce(self, param, value: object) -> object:
        """Adapt request values to parameter types (str -> Sequence)."""
        if isinstance(param.type, SeqType) and isinstance(value, str):
            if param.type.alphabet is not None:
                alphabet = self.alphabets.get(param.type.alphabet)
                if alphabet is not None:
                    return Sequence(value, alphabet)
            for alphabet in self.alphabets.values():
                if all(ch in alphabet.chars for ch in set(value)):
                    return Sequence(value, alphabet)
            raise RuntimeDslError(
                f"no declared alphabet covers the string for "
                f"parameter {param.name!r}"
            )
        return value


class ProgramRegistry:
    """Thread-safe sha256-keyed cache of checked service programs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._programs: Dict[str, ServiceProgram] = {}

    def register(self, text: str) -> ServiceProgram:
        """Check ``text`` (once per distinct source) and return it."""
        sha = program_sha(text)
        with self._lock:
            program = self._programs.get(sha)
        if program is not None:
            return program
        program = ServiceProgram(text)  # may raise DslError
        with self._lock:
            return self._programs.setdefault(sha, program)

    def get(self, sha: str) -> ServiceProgram:
        """The registered program for ``sha`` (KeyError if absent)."""
        with self._lock:
            return self._programs[sha]

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)
