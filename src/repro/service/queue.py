"""Jobs, handles and the bounded submission queue.

Admission control happens at the front door: a full queue (or a
draining service) rejects the submission synchronously with a reason,
instead of buffering without bound — under overload the caller learns
immediately and can back off.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, Optional, Tuple


class AdmissionError(RuntimeError):
    """The queue refused a submission; ``reason`` says why."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class JobTimeoutError(RuntimeError):
    """The job missed its deadline before (or while) executing."""


class DeadlineError(JobTimeoutError):
    """The job's deadline expired before it was ever launched.

    Raised by the dequeue-time and pre-launch deadline checks: the
    work was *shed* — no launch was attempted on its behalf — which
    the stats count separately from jobs that timed out mid-retry.
    The HTTP layer maps it (like any ``JobTimeoutError``) to 504.
    """


class JobState(Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


class JobHandle:
    """The caller's side of one job: wait, then read value or error."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.state = JobState.PENDING
        self.latency_seconds: Optional[float] = None
        self._done = threading.Event()
        self._value: object = None
        self._error: Optional[BaseException] = None

    # -- worker side ---------------------------------------------------------

    def resolve(self, value: object, latency: float) -> None:
        """Deliver a successful result."""
        self._value = value
        self.latency_seconds = latency
        self.state = JobState.COMPLETED
        self._done.set()

    def reject(
        self,
        error: BaseException,
        state: JobState = JobState.FAILED,
        latency: Optional[float] = None,
    ) -> None:
        """Deliver a failure (or timeout)."""
        self._error = error
        self.latency_seconds = latency
        self.state = state
        self._done.set()

    # -- caller side ---------------------------------------------------------

    def done(self) -> bool:
        """Has the job finished (either way)?"""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until done; False if ``timeout`` elapsed first."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> object:
        """The job's value; raises its error, or ``JobTimeoutError``
        if it is not done within ``timeout`` seconds."""
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"job {self.job_id} not done after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        """The delivered error, if any (None while pending)."""
        return self._error


#: Everything jobs must share to ride in one batched ``map`` run.
GroupKey = Tuple[str, str, Tuple[Tuple[str, int], ...],
                 Tuple[Tuple[str, int], ...], Optional[str]]

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One bound, admitted unit of work."""

    program_sha: str
    function: str
    bindings: Dict[str, object]
    at: Dict[str, int]
    initial: Dict[str, int]
    reduce: Optional[str] = None
    timeout: Optional[float] = None
    retries_left: int = 0
    job_id: str = field(
        default_factory=lambda: f"job-{next(_job_ids)}"
    )
    submitted_at: float = field(default_factory=time.monotonic)
    handle: JobHandle = field(init=False)

    def __post_init__(self) -> None:
        self.handle = JobHandle(self.job_id)

    @property
    def deadline(self) -> Optional[float]:
        """Monotonic deadline, or None for no per-job timeout."""
        if self.timeout is None:
            return None
        return self.submitted_at + self.timeout

    def expired(self, now: Optional[float] = None) -> bool:
        """Has the per-job timeout passed?"""
        deadline = self.deadline
        if deadline is None:
            return False
        return (now if now is not None else time.monotonic()) > deadline

    @property
    def group_key(self) -> GroupKey:
        """Batching key: jobs with equal keys coalesce into one
        ``map`` run (same program, function and result-extraction
        coordinates)."""
        return (
            self.program_sha,
            self.function,
            tuple(sorted(self.at.items())),
            tuple(sorted(self.initial.items())),
            self.reduce,
        )

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since submission."""
        return (
            now if now is not None else time.monotonic()
        ) - self.submitted_at


class JobQueue:
    """Bounded FIFO of admitted jobs, with reject-with-reason."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._jobs: Deque[Job] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def submit(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`AdmissionError`."""
        with self._lock:
            if self._closed:
                raise AdmissionError("service is shutting down")
            if len(self._jobs) >= self.capacity:
                raise AdmissionError(
                    f"queue full ({self.capacity} jobs waiting); "
                    f"retry later"
                )
            self._jobs.append(job)
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job, or None after ``timeout`` seconds of emptiness."""
        with self._not_empty:
            if not self._jobs:
                self._not_empty.wait(timeout)
            if not self._jobs:
                return None
            return self._jobs.popleft()

    def depth(self) -> int:
        """Jobs currently waiting."""
        with self._lock:
            return len(self._jobs)

    def close(self) -> None:
        """Stop admitting; queued jobs still drain."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        """Is the queue refusing new submissions?"""
        with self._lock:
            return self._closed
